#!/usr/bin/env python3
"""Docstring-coverage gate: every public API in ``src/repro/`` is documented.

Walks the source tree with :mod:`ast` (no imports, no dependencies) and
fails when any *public* module, class, or function lacks a docstring.
Public means: not underscore-prefixed, not nested inside a function, and
not inside an underscore-private class.  Overloaded dunder methods are
exempt except the documented-by-convention ones are simply ignored —
dunders inherit well-known semantics and documenting ``__repr__`` adds
noise, not signal.

CI runs this as a build gate::

    python tools/check_docstrings.py            # gate src/repro
    python tools/check_docstrings.py --verbose  # also print the totals

Exit code 0 means full coverage; 1 lists every undocumented definition
as ``path:line: kind name``.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys

DEFAULT_ROOT = os.path.join(os.path.dirname(__file__), "..", "src", "repro")


def is_public(name: str) -> bool:
    """Whether ``name`` is part of the public surface (not ``_private``)."""
    return not name.startswith("_")


def walk_definitions(tree: ast.Module):
    """Yield ``(node, kind, qualified_name)`` for every public def/class.

    Recurses into public classes (methods are public API too) but not
    into functions — helpers defined inside a function body are
    implementation detail by construction.
    """

    def recurse(body, prefix: str):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if is_public(node.name):
                    yield node, "function", prefix + node.name
            elif isinstance(node, ast.ClassDef):
                if is_public(node.name):
                    yield node, "class", prefix + node.name
                    yield from recurse(node.body, prefix + node.name + ".")

    yield from recurse(tree.body, "")


def missing_docstrings(root: str) -> tuple[list[str], int]:
    """Return (problem lines, number of definitions checked)."""
    problems: list[str] = []
    checked = 0
    for directory, _, files in sorted(os.walk(root)):
        for filename in sorted(files):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(directory, filename)
            relative = os.path.relpath(path)
            with open(path, encoding="utf-8") as handle:
                tree = ast.parse(handle.read(), filename=path)
            module_public = is_public(
                "" if filename == "__init__.py" else filename[: -len(".py")]
            )
            if module_public:
                checked += 1
                if ast.get_docstring(tree) is None:
                    problems.append(f"{relative}:1: module docstring missing")
            for node, kind, name in walk_definitions(tree):
                checked += 1
                if ast.get_docstring(node) is None:
                    problems.append(
                        f"{relative}:{node.lineno}: {kind} {name} has no docstring"
                    )
    return problems, checked


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "root", nargs="?", default=DEFAULT_ROOT, help="package root to gate"
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print totals even on success"
    )
    args = parser.parse_args(argv)
    problems, checked = missing_docstrings(os.path.normpath(args.root))
    if problems:
        print(f"docstring gate: {len(problems)} undocumented definition(s):")
        for line in problems:
            print(f"  {line}")
        return 1
    if args.verbose:
        print(f"docstring gate: {checked} public definitions, all documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
