#!/usr/bin/env python3
"""Execute the ``python`` code blocks of a markdown document, in order.

The anti-drift harness behind ``docs/API.md`` and ``docs/TUTORIAL.md``:
every fenced ```` ```python ```` block is executed sequentially in one
shared namespace (so later blocks build on earlier ones, exactly as a
reader follows the document), and any exception fails the run with the
block's line number.  CI executes both documents on every push; the
integration test suite (``tests/test_integration/test_doc_examples.py``)
runs them in tier-1, so the documentation cannot silently rot.

Blocks fenced as ```` ```python no-run ```` are skipped (for fragments
that illustrate syntax without being executable on their own); everything
else must run.  ``bash``/``console``/untagged fences are prose, not code.

Usage::

    PYTHONPATH=src python tools/run_doc_examples.py docs/TUTORIAL.md
    PYTHONPATH=src python tools/run_doc_examples.py docs/API.md --quiet
"""

from __future__ import annotations

import argparse
import sys


def extract_blocks(text: str) -> list[tuple[int, str]]:
    """Return ``(start_line, source)`` for each runnable python block."""
    blocks: list[tuple[int, str]] = []
    lines = text.splitlines()
    inside = False
    start = 0
    collected: list[str] = []
    for index, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not inside and stripped.startswith("```python"):
            if stripped == "```python no-run":
                continue
            inside = True
            start = index + 1
            collected = []
        elif inside and stripped == "```":
            inside = False
            blocks.append((start, "\n".join(collected)))
        elif inside:
            collected.append(line)
    if inside:
        raise SystemExit(f"error: unterminated ```python fence at line {start - 1}")
    return blocks


def run_document(path: str, quiet: bool = False) -> int:
    """Execute every runnable block of ``path`` in one namespace."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    blocks = extract_blocks(text)
    if not blocks:
        print(f"error: {path} has no runnable ```python blocks", file=sys.stderr)
        return 1
    namespace: dict = {"__name__": "__doc_examples__"}
    for number, (line, source) in enumerate(blocks, start=1):
        if not quiet:
            print(f"[{path}] block {number}/{len(blocks)} (line {line}) ...")
        try:
            code = compile(source, f"{path}:block-{number}", "exec")
            exec(code, namespace)  # noqa: S102 - executing our own docs is the point
        except Exception as error:  # noqa: BLE001 - report and fail the gate
            print(
                f"error: {path} block {number} (line {line}) raised "
                f"{type(error).__name__}: {error}",
                file=sys.stderr,
            )
            return 1
    print(f"{path}: {len(blocks)} block(s) executed OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("document", help="markdown file to execute")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-block progress"
    )
    args = parser.parse_args(argv)
    return run_document(args.document, quiet=args.quiet)


if __name__ == "__main__":
    sys.exit(main())
