"""Legacy shim: the environment lacks the `wheel` package, so editable
installs go through `python setup.py develop`. All metadata lives in
pyproject.toml."""
from setuptools import setup

setup()
