"""The core exchange engine: settings, solutions, existence, certain answers.

This package implements the paper's central definitions and decision
problems on top of the substrates:

* :class:`~repro.core.setting.DataExchangeSetting` — Ω = (R, Σ, M_st, M_t)
  (Definition 2.1), with fragment classification used to pick algorithms;
* :mod:`repro.core.solution` — the solution predicate: ``G ∈ Sol_Ω(I)`` iff
  ``(I, G) ⊨ M_st`` and ``G ⊨ M_t``;
* :mod:`repro.core.search` — bounded enumeration of candidate solutions by
  instantiating the chased pattern (witness choices × null quotients);
* :mod:`repro.core.existence` — the existence-of-solutions problem, solved
  by a strategy stack: trivial cases, the sameAs constructive algorithm, the
  adapted chase (sound failure), loop-collapse refutation, the complete
  SAT-based bounded-model procedure for the Theorem 4.1 fragment, and the
  candidate search;
* :mod:`~repro.core.certain` — certain answers ``cert_Ω(Q, I)`` via
  minimal-solution intersection, with a counterexample API;
* :mod:`~repro.core.universal` — universal representatives: why bare graph
  patterns fail under egds (Proposition 5.3, with an executable
  counterexample constructor) and the (pattern, constraints) pairs the paper
  proposes instead.
"""

from repro.core.setting import DataExchangeSetting, SettingFragment
from repro.core.solution import is_solution, solution_violations
from repro.core.search import candidate_solutions, CandidateSearchConfig
from repro.core.existence import (
    ExistenceResult,
    ExistenceStatus,
    decide_existence,
    loop_collapse_refutation,
)
from repro.core.certain import (
    CertainAnswers,
    certain_answers_nre,
    certain_answers_cnre,
    is_certain_answer,
    find_counterexample_solution,
)
from repro.core.tractable import (
    certain_answers_tractable,
    in_tractable_fragment,
)
from repro.core.universal import (
    UniversalRepresentative,
    adapted_chase,
    non_universality_counterexample,
    universal_representative,
)

__all__ = [
    "DataExchangeSetting",
    "SettingFragment",
    "is_solution",
    "solution_violations",
    "candidate_solutions",
    "CandidateSearchConfig",
    "ExistenceResult",
    "ExistenceStatus",
    "decide_existence",
    "loop_collapse_refutation",
    "CertainAnswers",
    "certain_answers_nre",
    "certain_answers_cnre",
    "is_certain_answer",
    "find_counterexample_solution",
    "certain_answers_tractable",
    "in_tractable_fragment",
    "UniversalRepresentative",
    "adapted_chase",
    "non_universality_counterexample",
    "universal_representative",
]
