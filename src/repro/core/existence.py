"""The existence-of-solutions problem.

The paper proves the problem NP-hard for egd settings (Theorem 4.1) and
trivial for sameAs settings (Section 4.2).  Accordingly,
:func:`decide_existence` runs a *strategy stack*, from cheap-and-sound to
expensive-and-bounded, and reports which strategy decided:

1. **no target constraints** — a solution always exists: chase the pattern
   and instantiate it canonically (Section 3.2);
2. **sameAs (± nothing else)** — always exists: the Section 4.2
   constructive algorithm (chase, instantiate, saturate);
3. **egds present** —
   a. for the Theorem 4.1 fragment (union-of-symbols heads, word egd
      bodies): the *loop-collapse refutation* (cheap, keeps Example 5.2's
      exact diagnosis), then the **complete SAT decision** on the
      persistent incremental solver (:mod:`repro.core.satpipeline`) —
      bounded-model search over the chased pattern's node set, complete by
      the induced-subgraph argument in :mod:`repro.solver.encode`.  The
      adapted chase is *skipped* here: the SAT decision subsumes its
      verdict, and the chase fixpoint was the single largest cost of the
      Theorem 4.1 scaling benchmark;
   b. otherwise the Section 5 *adapted chase*: failure proves
      non-existence (sound, incomplete — Example 5.2), followed by the
      loop-collapse refutation;
   c. the bounded candidate search (:mod:`repro.core.search`): a found
      candidate is a verified solution (sound EXISTS); exhausting the
      bounds without one yields UNKNOWN, never a non-existence claim;
4. **general target tgds** — bounded chase repair on the canonical
   instantiation; success is a verified solution, failure is UNKNOWN.

Every EXISTS result carries a *witness graph* that has passed
:func:`repro.core.solution.is_solution` — no strategy is trusted blindly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.chase.egd_chase import chase_with_egds
from repro.chase.pattern_chase import chase_pattern
from repro.chase.relational_chase import chase_relational
from repro.chase.sameas_chase import solve_with_sameas
from repro.core.satpipeline import pipeline_for
from repro.core.search import CandidateSearchConfig, candidate_solutions
from repro.core.setting import DataExchangeSetting
from repro.core.solution import is_solution
from repro.errors import NotSupportedError
from repro.graph.database import GraphDatabase
from repro.graph.nre import Label, Union as NREUnion
from repro.patterns.rep import canonical_instantiation
from repro.relational.instance import RelationalInstance
from repro.relational.query import is_variable


class ExistenceStatus(enum.Enum):
    """Outcome of the existence decision."""

    EXISTS = "exists"
    NOT_EXISTS = "not-exists"
    UNKNOWN = "unknown"


@dataclass
class ExistenceResult:
    """The decision, the deciding strategy, and a verified witness if any."""

    status: ExistenceStatus
    method: str
    witness: GraphDatabase | None = None
    detail: str = ""

    @property
    def exists(self) -> bool:
        """Convenience: whether the status is EXISTS."""
        return self.status is ExistenceStatus.EXISTS


def _verified(
    graph: GraphDatabase,
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    method: str,
) -> ExistenceResult:
    if not is_solution(instance, graph, setting):
        raise AssertionError(
            f"strategy {method!r} produced a non-solution witness — "
            "this is a bug in the library, please report it"
        )
    return ExistenceResult(ExistenceStatus.EXISTS, method, witness=graph)


def collapsing_labels(setting: DataExchangeSetting) -> frozenset[str]:
    """Return the labels ``a`` with an egd forcing every ``a``-edge to loop.

    An egd collapses ``a`` when its body is the single atom
    ``(x, a₁ + … + aₖ, y)`` with ``{x, y}`` exactly the equated pair and
    ``a`` among the symbols: any ``a``-edge between distinct nodes then
    matches the body and violates the equality.
    """
    collapsed: set[str] = set()
    for egd in setting.egds():
        if len(egd.body.atoms) != 1:
            continue
        atom = egd.body.atoms[0]
        endpoints = {atom.subject, atom.object}
        if endpoints != {egd.left, egd.right}:
            continue
        symbols = _union_symbols(atom.nre)
        if symbols is not None:
            collapsed.update(symbols)
    return frozenset(collapsed)


def _union_symbols(expr) -> list[str] | None:
    if isinstance(expr, Label):
        return [expr.name]
    if isinstance(expr, NREUnion):
        left = _union_symbols(expr.left)
        right = _union_symbols(expr.right)
        if left is None or right is None:
            return None
        return left + right
    return None


def loop_collapse_refutation(
    setting: DataExchangeSetting, instance: RelationalInstance
) -> str | None:
    """Refute existence when egds force all edges to be self-loops.

    If every symbol of Σ has a collapsing egd, then in any solution every
    edge is a self-loop, so any NRE path stays at its node; head atoms then
    require their endpoint images to be *equal*.  Unifying each trigger's
    head endpoints (frontier variables pinned to constants) therefore must
    not equate two distinct constants — if it does, no solution exists.

    Returns a human-readable refutation, or ``None`` when inconclusive.
    This is precisely the argument deciding Example 5.2.
    """
    if not setting.alphabet <= collapsing_labels(setting):
        return None
    for tgd in setting.st_tgds:
        for match in tgd.body_matches(instance):
            parent: dict[object, object] = {}

            def find(x: object) -> object:
                parent.setdefault(x, x)
                while parent[x] != x:
                    parent[x] = parent[parent[x]]
                    x = parent[x]
                return x

            def value(term: object) -> object:
                if is_variable(term):
                    if term in match:
                        return ("const", match[term])  # type: ignore[index]
                    return ("var", term)
                return ("const", term)

            conflict = None
            for atom in tgd.head.atoms:
                left, right = find(value(atom.subject)), find(value(atom.object))
                if left == right:
                    continue
                if left[0] == "const" and right[0] == "const":
                    conflict = (left[1], right[1])
                    break
                # Prefer constants as class representatives.
                if left[0] == "const":
                    parent[right] = left
                else:
                    parent[left] = right
            if conflict is not None:
                return (
                    "all alphabet symbols have collapsing egds, so every edge "
                    "of a solution is a self-loop; but the trigger "
                    f"{ {v.name: match[v] for v in tgd.body.variables()} } of "
                    f"s-t tgd {tgd} forces constants {conflict[0]!r} and "
                    f"{conflict[1]!r} to coincide"
                )
    return None


def _complete_sat_decision(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    solver: str | None,
) -> ExistenceResult | None:
    """The complete Theorem 4.1 decision on the persistent SAT pipeline.

    A stateless entry point (all state lives in the value-keyed pipeline
    registry, shared safely across re-entrant callers — the serving
    layer's workers call this once per request): returns the decided
    :class:`ExistenceResult`, or ``None`` when the pipeline is
    inapplicable (or its decode self-check tripped) and the caller must
    fall back to the sound chase/enumeration strategies.  An UNSAT verdict
    is refined through :func:`loop_collapse_refutation` so Example 5.2
    keeps its exact diagnosis; loop-collapse is *not* consulted on the
    EXISTS path (it is a refutation — it can never fire on a satisfiable
    setting, so checking it up front would be pure overhead).
    """
    pipeline = pipeline_for(setting, instance, solver)
    if pipeline is None:
        return None
    try:
        witness = pipeline.existence_witness()
    except NotSupportedError:
        return None  # decode self-check tripped: fall back to the chase
    if witness is None:
        refutation = loop_collapse_refutation(setting, instance)
        if refutation is not None:
            return ExistenceResult(
                ExistenceStatus.NOT_EXISTS, "loop-collapse", detail=refutation
            )
        return ExistenceResult(
            ExistenceStatus.NOT_EXISTS,
            "sat-bounded-complete",
            detail=(
                f"UNSAT over the {len(pipeline.nodes)}-node "
                "universe; complete for union-of-symbols heads "
                "with word egds"
            ),
        )
    # The pipeline verified the witness through the fragment-exact
    # solution check already.
    return ExistenceResult(
        ExistenceStatus.EXISTS, "sat-bounded-complete", witness=witness
    )


def decide_existence(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    search_config: CandidateSearchConfig | None = None,
    star_bound: int = 2,
    engine=None,
    solver: str | None = None,
) -> ExistenceResult:
    """Decide whether ``Sol_Ω(I) ≠ ∅`` (see the module docstring).

    The result's ``method`` names the deciding strategy; UNKNOWN results
    mean every applicable bounded strategy was exhausted inconclusively.
    ``engine`` is the query engine forwarded to the bounded candidate
    search (strategy 3/4); witness verification and the other strategies
    use the shared default engine through the trigger matcher.  ``solver``
    selects the SAT back-end for the complete decision (``cdcl``/``dpll``,
    default per :func:`repro.solver.resolve_solver_name`).
    """
    fragment = setting.fragment()

    # 1. No target constraints: solutions always exist (Section 3.2).
    if not fragment.has_target_constraints:
        pattern = chase_pattern(
            setting.st_tgds, instance, alphabet=setting.alphabet
        ).expect_pattern()
        witness = canonical_instantiation(pattern, star_bound=star_bound).graph
        return _verified(witness, setting, instance, "pattern-instantiation")

    # 2. sameAs only: the Section 4.2 constructive algorithm.
    if fragment.has_sameas and not fragment.has_egds and not fragment.has_general_tgds:
        result = solve_with_sameas(
            setting.st_tgds,
            setting.sameas_constraints(),
            instance,
            alphabet=setting.alphabet,
            star_bound=star_bound,
        )
        return _verified(result.expect_graph(), setting, instance, "sameas-construction")

    # 3. egds present.
    if fragment.has_egds:
        # 3a. Single-symbol fragment: the relational chase is itself a
        # complete decision procedure (Section 3.1) — it either
        # materialises a concrete solution or proves none exists by trying
        # to equate two constants.  It runs near-linearly in the instance,
        # so it decides *before* the bounded SAT universe (whose encoding
        # is super-cubic in the pattern's node count): the scale workloads
        # (10^5+ source nodes) are decidable only through this path.
        if (
            fragment.heads_single_symbols
            and not fragment.has_general_tgds
            and not fragment.has_sameas
        ):
            chase_result = chase_relational(
                setting.st_tgds, setting.egds(), instance, alphabet=setting.alphabet
            )
            if chase_result.failed:
                left, right = chase_result.failure_witness  # type: ignore[misc]
                return ExistenceResult(
                    ExistenceStatus.NOT_EXISTS,
                    "chase-failure",
                    detail=(
                        f"egd chase tried to equate constants {left!r} and {right!r}"
                    ),
                )
            return _verified(
                chase_result.graph, setting, instance, "relational-chase"
            )
        sat_attempted = False
        if fragment.sat_encodable:
            # Complete fragment: the persistent incremental SAT decision
            # runs first.  The adapted chase is *not* run — SAT completeness
            # subsumes its verdict, and the chase fixpoint was the single
            # largest cost of the Theorem 4.1 benchmark.
            sat_attempted = True
            decided = _complete_sat_decision(setting, instance, solver)
            if decided is not None:
                return decided
            refutation = loop_collapse_refutation(setting, instance)
            if refutation is not None:
                return ExistenceResult(
                    ExistenceStatus.NOT_EXISTS, "loop-collapse", detail=refutation
                )
        # Non-encodable settings (or an inapplicable pipeline): the adapted
        # chase refutes soundly, then loop-collapse (unless already tried).
        chase_result = chase_with_egds(
            setting.st_tgds, setting.egds(), instance, alphabet=setting.alphabet
        )
        if chase_result.failed:
            left, right = chase_result.failure_witness  # type: ignore[misc]
            return ExistenceResult(
                ExistenceStatus.NOT_EXISTS,
                "chase-failure",
                detail=f"egd chase tried to equate constants {left!r} and {right!r}",
            )
        if not sat_attempted:
            refutation = loop_collapse_refutation(setting, instance)
            if refutation is not None:
                return ExistenceResult(
                    ExistenceStatus.NOT_EXISTS, "loop-collapse", detail=refutation
                )

    # 3d / 4. Bounded candidate search (also repairs general target tgds).
    config = search_config if search_config is not None else CandidateSearchConfig(
        star_bound=star_bound
    )
    for candidate in candidate_solutions(
        setting, instance, config, engine=engine, solver=solver
    ):
        return _verified(candidate, setting, instance, "candidate-search")

    return ExistenceResult(
        ExistenceStatus.UNKNOWN,
        "bounds-exhausted",
        detail=(
            "no sound refutation applied and the bounded candidate search "
            f"(star_bound={config.star_bound}) found no solution"
        ),
    )
