"""Certain answers: ``cert_Ω(Q, I) = ⋂ {⟦Q⟧_G | G ∈ Sol_Ω(I)}``.

The engine exploits one structural fact, stated and used throughout the
module: **NRE and CNRE queries are monotone** — they contain no negation, so
extending a graph with nodes or edges can only add answers (every operator
of the NRE grammar — ε, a, a⁻, +, ·, *, [·] — denotes a monotone operation
on the edge relation, and conjunction preserves monotonicity).  Hence for a
monotone Q:

* if ``G ⊆ G′`` are both solutions, ``⟦Q⟧_G ⊆ ⟦Q⟧_G′``, so the intersection
  over all solutions equals the intersection over the ⊆-minimal ones;
* a tuple is certain iff **no** solution avoids it, and the most effective
  counterexamples are exactly the minimal solutions.

Minimal solutions are enumerated by :mod:`repro.core.search` (witness
choices for the chased pattern's NRE edges × null quotients), bounded by
``star_bound``.  Every candidate is validated through the constraint
``violations`` checks, which run on the shared indexed
:class:`~repro.engine.matcher.TriggerMatcher` — the enumeration examines
many candidate graphs, so the indexed fast path compounds here.  On the
paper's families the bounds are exact:

* Example 2.2 under Ω and Ω′ — the printed certain-answer sets are
  reproduced with ``star_bound = 2`` (tests pin both sets);
* the Corollary 4.2 / Proposition 4.3 reduction families — the minimal
  solutions are exactly the valuation graphs over the two constants, with
  no stars in any witness, so any ``star_bound ≥ 0`` is exact.

In general the result is *sound up to the bound*: every reported
counterexample is a genuine solution (so "not certain" verdicts are always
correct), while "certain" verdicts quantify over the solutions within the
bounds — increase ``star_bound``/quotient budgets to tighten.  When the
paper's query Q has a star, answers that survive all unrollings up to the
query automaton's state count survive all longer ones too (pigeonhole on
the product automaton), which is why small bounds settle these families.

By convention (matching the paper's usage in Corollary 4.2), when **no
solution exists** every tuple is certain: ``CertainAnswers.no_solution`` is
set and :meth:`CertainAnswers.is_certain` returns ``True`` for all tuples.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.core.search import CandidateSearchConfig, candidate_solutions
from repro.core.setting import DataExchangeSetting
from repro.core.existence import ExistenceStatus, decide_existence
from repro.engine.query import default_engine
from repro.errors import BoundExceeded
from repro.graph.database import GraphDatabase
from repro.graph.nre import NRE
from repro.relational.instance import RelationalInstance
from repro.telemetry import span

Node = Hashable
Pair = tuple[Node, Node]


@dataclass
class CertainAnswers:
    """The result of a certain-answer computation for a binary NRE query."""

    answers: frozenset[Pair]
    """The certain pairs over the source constants (empty if ``no_solution``)."""

    no_solution: bool
    """Whether ``Sol_Ω(I) = ∅`` — then *every* tuple is (vacuously) certain."""

    solutions_examined: int
    """How many distinct minimal solutions entered the intersection."""

    method: str
    """Which strategy produced the result, with its bounds."""

    def is_certain(self, pair: Pair) -> bool:
        """Whether ``pair`` is a certain answer (vacuously true if no solution)."""
        return self.no_solution or pair in self.answers


def certain_answers_nre(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    query: NRE,
    config: CandidateSearchConfig | None = None,
    engine=None,
    solver: str | None = None,
) -> CertainAnswers:
    """Compute the certain answers of the binary NRE ``query``.

    Only pairs over the source active domain are reported (the paper's
    query answering problem asks about tuples of constants) — so each
    solution is probed with one single-source engine query per domain
    constant instead of a full all-pairs materialisation.  ``engine``
    selects the evaluation back-end (default: the shared compiled
    :class:`~repro.engine.query.QueryEngine`; pass a
    :class:`~repro.engine.query.ReferenceEngine` to run the oracle path,
    or ``QueryEngine(backend="csr")`` to have every candidate solution of
    the enumeration frozen to the interned-CSR storage backend on first
    sight — identical answers, bulk-traversal evaluation).
    ``solver`` picks the SAT back-end for the fast path (``cdcl``/``dpll``,
    default per :func:`repro.solver.resolve_solver_name`).

    On the Theorem 4.1 fragment with union-of-words queries the whole set
    is decided by one persistent incremental SAT solver — one assumption
    probe per domain pair, complete for the fragment
    (:mod:`repro.core.satpipeline`) — and the minimal-solution enumeration
    below never runs.

    Raises :class:`~repro.errors.BoundExceeded` when existence could not be
    settled and no candidate solution was found — then nothing sound can be
    said within the bounds.
    """
    eng = engine if engine is not None else default_engine()
    cfg = config if config is not None else CandidateSearchConfig(star_bound=2)
    # The reference engine deliberately runs the full enumeration pipeline
    # (it is the differential-testing oracle for these fast paths).
    if getattr(eng, "name", "") != "reference":
        # Section 3.1 fragment: certain answers are the null-free answers
        # on the chased universal solution — polynomial, and the only
        # route that stays feasible on the scale workloads (the SAT
        # universe and the minimal-solution enumeration are both
        # exponential-ish in the instance).  Local import: tractable
        # imports CertainAnswers from this module.
        from repro.core.tractable import (
            certain_answers_tractable,
            in_tractable_fragment,
        )

        if in_tractable_fragment(setting):
            return certain_answers_tractable(setting, instance, query, engine=eng)
        sat_result = _sat_certain_answers(setting, instance, query, eng, solver)
        if sat_result is not _INAPPLICABLE:
            return sat_result
    existence = decide_existence(
        setting, instance, search_config=cfg, engine=eng, solver=solver
    )
    if existence.status is ExistenceStatus.NOT_EXISTS:
        return CertainAnswers(
            answers=frozenset(),
            no_solution=True,
            solutions_examined=0,
            method=f"no-solution({existence.method})",
        )

    domain = instance.active_domain()
    intersection: set[Pair] | None = None
    examined = 0
    with span("engine.enumerate", queries=1):
        for solution in _solutions_for_intersection(
            setting, instance, cfg, existence, eng
        ):
            answers = set(eng.answers_over(solution, query, domain))
            intersection = (
                answers if intersection is None else intersection & answers
            )
            examined += 1
            if not intersection:
                break

    if intersection is None:
        raise BoundExceeded(
            "no solution found within the search bounds although existence "
            f"was {existence.status.value}; raise the bounds"
        )
    return CertainAnswers(
        answers=frozenset(intersection),
        no_solution=False,
        solutions_examined=examined,
        method=f"minimal-solutions(star_bound={cfg.star_bound}, n={examined})",
    )


def certain_answers_batch(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    queries: Iterable[NRE],
    config: CandidateSearchConfig | None = None,
    engine=None,
    solver: str | None = None,
) -> list[CertainAnswers]:
    """Certain answers of *many* NRE queries over one (setting, instance).

    The batched evaluation shares everything the queries have in common:

    * queries on the Theorem 4.1 fast path share the one persistent
      per-universe SAT solver (and each probe's learnt clauses benefit
      every later probe of the batch);
    * queries that need the minimal-solution enumeration share **one**
      pass over the candidate solutions — existence is decided once, each
      enumerated solution is evaluated against every still-live query, and
      a query drops out of the pass as soon as its intersection empties.

    Answer sets are exactly those of per-query :func:`certain_answers_nre`
    calls (the enumeration visits the same solutions in the same order;
    only the reported ``method``/``solutions_examined`` bookkeeping
    differs, since the shared pass cannot stop early for one query while
    another is still live).  This is the engine behind the service's
    ``evaluate_batch`` operation.
    """
    eng = engine if engine is not None else default_engine()
    cfg = config if config is not None else CandidateSearchConfig(star_bound=2)
    query_list = list(queries)
    results: list[CertainAnswers | None] = [None] * len(query_list)

    pending: list[int] = []
    if getattr(eng, "name", "") != "reference":
        from repro.core.tractable import (  # local import: cycle guard
            certain_answers_tractable_batch,
            in_tractable_fragment,
        )

        if in_tractable_fragment(setting):
            # One chase, every query naively evaluated on the universal
            # solution (see certain_answers_nre) — the fragment's batched
            # fast path.
            return certain_answers_tractable_batch(
                setting, instance, query_list, engine=eng
            )
        for index, query in enumerate(query_list):
            sat_result = _sat_certain_answers(setting, instance, query, eng, solver)
            if sat_result is _INAPPLICABLE:
                pending.append(index)
            else:
                results[index] = sat_result
    else:
        pending = list(range(len(query_list)))

    if pending:
        existence = decide_existence(
            setting, instance, search_config=cfg, engine=eng, solver=solver
        )
        if existence.status is ExistenceStatus.NOT_EXISTS:
            for index in pending:
                results[index] = CertainAnswers(
                    answers=frozenset(),
                    no_solution=True,
                    solutions_examined=0,
                    method=f"no-solution({existence.method})",
                )
        else:
            domain = instance.active_domain()
            intersections: dict[int, set[Pair] | None] = {
                index: None for index in pending
            }
            live = set(pending)
            examined = 0
            with span("engine.enumerate", queries=len(pending)):
                for solution in _solutions_for_intersection(
                    setting, instance, cfg, existence, eng
                ):
                    if not live:
                        break
                    examined += 1
                    for index in sorted(live):
                        answers = set(
                            eng.answers_over(solution, query_list[index], domain)
                        )
                        current = intersections[index]
                        current = (
                            answers if current is None else current & answers
                        )
                        intersections[index] = current
                        if not current:
                            live.discard(index)
            for index in pending:
                intersection = intersections[index]
                if intersection is None:
                    raise BoundExceeded(
                        "no solution found within the search bounds although "
                        f"existence was {existence.status.value}; raise the bounds"
                    )
                results[index] = CertainAnswers(
                    answers=frozenset(intersection),
                    no_solution=False,
                    solutions_examined=examined,
                    method=(
                        f"batched-minimal-solutions(star_bound={cfg.star_bound}, "
                        f"n={examined})"
                    ),
                )
    return results  # type: ignore[return-value]


def _solutions_for_intersection(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    cfg: CandidateSearchConfig,
    existence,
    engine=None,
) -> Iterable[GraphDatabase]:
    """The existence witness first (guaranteed), then the minimal family."""
    seen: set[frozenset] = set()
    if existence.witness is not None:
        seen.add(frozenset(existence.witness.edges()))
        yield existence.witness
    for candidate in candidate_solutions(setting, instance, cfg, engine=engine):
        signature = frozenset(candidate.edges())
        if signature in seen:
            continue
        seen.add(signature)
        yield candidate


def certain_answers_cnre(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    query,
    config: CandidateSearchConfig | None = None,
    engine=None,
) -> CertainAnswers:
    """Certain answers of a full CNRE query (arbitrary arity).

    Same machinery as :func:`certain_answers_nre` — CNRE queries are
    conjunctions of monotone atoms, hence monotone, so the minimal-solution
    intersection argument carries over verbatim.  Answers are projections
    onto the query's output variables, restricted to tuples over the
    source active domain.
    """
    from repro.graph.cnre import evaluate_cnre

    eng = engine if engine is not None else default_engine()
    cfg = config if config is not None else CandidateSearchConfig(star_bound=2)
    existence = decide_existence(setting, instance, search_config=cfg, engine=eng)
    if existence.status is ExistenceStatus.NOT_EXISTS:
        return CertainAnswers(
            answers=frozenset(),
            no_solution=True,
            solutions_examined=0,
            method=f"no-solution({existence.method})",
        )
    domain = instance.active_domain()
    intersection: set[tuple] | None = None
    examined = 0
    for solution in _solutions_for_intersection(
        setting, instance, cfg, existence, eng
    ):
        answers = {
            row
            for row in evaluate_cnre(query, solution, engine=eng)
            if all(value in domain for value in row)
        }
        intersection = answers if intersection is None else intersection & answers
        examined += 1
        if not intersection:
            break
    if intersection is None:
        raise BoundExceeded(
            "no solution found within the search bounds although existence "
            f"was {existence.status.value}; raise the bounds"
        )
    return CertainAnswers(
        answers=frozenset(intersection),
        no_solution=False,
        solutions_examined=examined,
        method=f"minimal-solutions-cnre(star_bound={cfg.star_bound}, n={examined})",
    )


def is_certain_answer(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    query: NRE,
    pair: Pair,
    config: CandidateSearchConfig | None = None,
    engine=None,
    solver: str | None = None,
) -> bool:
    """Decide whether ``pair ∈ cert_Ω(query, I)`` (bounded, see module doc).

    Equivalent to ``certain_answers_nre(...).is_certain(pair)`` but stops at
    the first counterexample solution.
    """
    counterexample = find_counterexample_solution(
        setting, instance, query, pair, config, engine=engine, solver=solver
    )
    return counterexample is None


def find_counterexample_solution(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    query: NRE,
    pair: Pair,
    config: CandidateSearchConfig | None = None,
    engine=None,
    solver: str | None = None,
) -> GraphDatabase | None:
    """Return a solution G with ``pair ∉ ⟦query⟧_G``, or ``None``.

    A returned graph is a machine-checked solution, so it *proves* the pair
    is not certain.  ``None`` means no counterexample exists within the
    bounds (and existence settled): the pair is certain up to the bounds,
    exactly on the paper's families.

    Each solution is probed with the engine's single-pair mode — an
    early-exit product BFS — so deciding one tuple never materialises a
    full all-pairs relation.  On the Theorem 4.1 fragment with
    union-of-words queries the decision short-circuits to one *complete*
    incremental SAT probe (:func:`_sat_counterexample`) on the persistent
    per-universe solver and skips the enumeration entirely.
    """
    eng = engine if engine is not None else default_engine()
    cfg = config if config is not None else CandidateSearchConfig(star_bound=2)
    # The reference engine deliberately runs the full enumeration pipeline
    # (it is the differential-testing oracle for this fast path).
    if getattr(eng, "name", "") != "reference":
        sat_verdict = _sat_counterexample(
            setting, instance, query, pair, eng, solver
        )
        if sat_verdict is not _INAPPLICABLE:
            return sat_verdict
    existence = decide_existence(
        setting, instance, search_config=cfg, engine=eng, solver=solver
    )
    if existence.status is ExistenceStatus.NOT_EXISTS:
        return None  # vacuously certain: there is no solution at all
    found_any = existence.witness is not None
    for solution in _solutions_for_intersection(
        setting, instance, cfg, existence, eng
    ):
        found_any = True
        if not eng.holds(solution, query, pair[0], pair[1]):
            return solution
    if not found_any:
        raise BoundExceeded(
            "existence unsettled and no candidate solutions within bounds"
        )
    return None


_INAPPLICABLE = object()


def _sat_counterexample(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    query: NRE,
    pair: Pair,
    engine,
    solver: str | None = None,
):
    """Complete incremental SAT decision of ``pair ∈ cert_Ω(query, I)``.

    Applicable when the setting is SAT-encodable (Theorem 4.1 fragment:
    union-of-symbols heads, word egds) *and* the query is a union of words.
    Then "some solution misses the pair" is one bounded-model SAT question,
    answered by the persistent per-universe solver
    (:func:`repro.core.satpipeline.pipeline_for`): the base encoding and
    everything learnt from earlier probes are reused, and the pair's
    blocking clauses enter once, guarded by an assumption literal.  A model
    decodes to a machine-checked counterexample solution; UNSAT means
    either no solution at all or every bounded solution has the pair — in
    both cases the pair is certain, matching the enumeration's verdict (the
    bounded universe is complete for this fragment, see
    :mod:`repro.solver.encode`).

    Returns the counterexample graph, ``None`` (certain), or the sentinel
    :data:`_INAPPLICABLE` when the fragment/query shape does not apply —
    the caller then falls back to the minimal-solution enumeration.
    """
    from repro.core.satpipeline import pipeline_for
    from repro.errors import NotSupportedError

    pipeline = pipeline_for(setting, instance, solver)
    if pipeline is None:
        return _INAPPLICABLE
    try:
        witness = pipeline.probe_pair(query, pair[0], pair[1])
    except NotSupportedError:
        return _INAPPLICABLE
    if witness is None:
        return None  # no bounded solution misses the pair: certain
    if engine.holds(
        witness, query, pair[0], pair[1]
    ):  # pragma: no cover - decode/encode disagreement would be a bug;
        # fall back to the sound enumeration rather than trust it
        return _INAPPLICABLE
    return witness


def _sat_certain_answers(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    query: NRE,
    engine,
    solver: str | None = None,
):
    """Whole-set certain answers through the persistent SAT pipeline.

    One assumption-guarded probe per domain pair on a single incremental
    solver (learnt clauses shared across the entire enumeration), complete
    for the fragment by the same argument as :func:`_sat_counterexample`.
    Returns a :class:`CertainAnswers` or :data:`_INAPPLICABLE`.
    """
    from repro.core.satpipeline import pipeline_for
    from repro.errors import NotSupportedError

    pipeline = pipeline_for(setting, instance, solver)
    if pipeline is None:
        return _INAPPLICABLE
    try:
        if not pipeline.has_solution():
            return CertainAnswers(
                answers=frozenset(),
                no_solution=True,
                solutions_examined=0,
                method="no-solution(sat-incremental)",
            )
        domain = sorted(instance.active_domain(), key=repr)
        answers: set[Pair] = set()
        counterexamples: set[frozenset] = set()
        for u in domain:
            for v in domain:
                witness = pipeline.probe_pair(query, u, v)
                if witness is None:
                    answers.add((u, v))
                elif not engine.holds(witness, query, u, v):
                    counterexamples.add(frozenset(witness.edges()))
                else:  # pragma: no cover - decode/encode disagreement
                    raise NotSupportedError(
                        "SAT counterexample fails the engine cross-check"
                    )
    except NotSupportedError:
        return _INAPPLICABLE
    return CertainAnswers(
        answers=frozenset(answers),
        no_solution=False,
        solutions_examined=len(counterexamples),
        method=(
            f"sat-incremental(pairs={len(domain) ** 2}, "
            f"solver={pipeline.solver_name})"
        ),
    )


# --------------------------------------------------------------------- #
# Live incremental-chase states (the apply_updates serving path)
# --------------------------------------------------------------------- #

# (setting key, instance fingerprint) → IncrementalChase.  Entries are
# *checked out* (popped under the lock) rather than shared: an incremental
# state is mutable and single-threaded, so two concurrent update streams
# over the same universe must not interleave on one object — the second
# caller simply bootstraps a fresh state.  Bounded like the SAT-pipeline
# registry: wholesale clear past the limit.
_INCREMENTAL_STATES: dict = {}
_INCREMENTAL_LIMIT = 16
_INCREMENTAL_LOCK = threading.Lock()
_INCREMENTAL_COUNTERS = {"hits": 0, "misses": 0}


def checkout_incremental_state(
    setting: DataExchangeSetting, instance: RelationalInstance, engine=None
):
    """Pop (or bootstrap) the live incremental chase for this universe.

    A warm state whose instance fingerprint matches ``instance`` resumes
    with all three layers (triggers, merged quotient, answer cache) intact
    — applying an update batch then costs O(affected).  On a miss the
    state is chased from scratch once.  Callers own the returned object
    and should hand it back through :func:`checkin_incremental_state`
    after mutating it.  Raises
    :class:`~repro.errors.NotSupportedError` outside the relational-chase
    fragment, exactly like
    :class:`~repro.engine.incremental.IncrementalChase`.
    """
    from repro.core.satpipeline import _setting_key
    from repro.engine.incremental import IncrementalChase

    key = (_setting_key(setting), instance.fingerprint())
    with _INCREMENTAL_LOCK:
        state = _INCREMENTAL_STATES.pop(key, None)
        if state is not None:
            _INCREMENTAL_COUNTERS["hits"] += 1
            return state
        _INCREMENTAL_COUNTERS["misses"] += 1
    return IncrementalChase(setting, instance, engine=engine)


def checkin_incremental_state(state) -> None:
    """Return a checked-out incremental state to the registry.

    The state is re-keyed by its *current* instance fingerprint, so the
    next request carrying the updated document resumes it warm.
    """
    from repro.core.satpipeline import _setting_key

    key = (_setting_key(state.setting), state.instance.fingerprint())
    with _INCREMENTAL_LOCK:
        if len(_INCREMENTAL_STATES) >= _INCREMENTAL_LIMIT:
            _INCREMENTAL_STATES.clear()
        _INCREMENTAL_STATES[key] = state


def incremental_state_stats() -> dict:
    """Return registry telemetry: live entries and hit/miss counts."""
    with _INCREMENTAL_LOCK:
        return {
            "entries": len(_INCREMENTAL_STATES),
            "hits": _INCREMENTAL_COUNTERS["hits"],
            "misses": _INCREMENTAL_COUNTERS["misses"],
        }


def clear_incremental_states() -> None:
    """Drop every cached incremental state (tests, long-running processes)."""
    with _INCREMENTAL_LOCK:
        _INCREMENTAL_STATES.clear()
        _INCREMENTAL_COUNTERS["hits"] = 0
        _INCREMENTAL_COUNTERS["misses"] = 0
