"""Universal representatives under target constraints (Section 5).

Without target constraints, the chased pattern π is a universal
representative: ``Sol_Ω(I) = Rep_Σ(π)`` [5].  With egds this breaks down in
two independent ways, both made executable here:

* a *successful* adapted chase does not imply a solution exists
  (Example 5.2 — see :mod:`repro.core.existence` for the decision
  procedures that close the gap);
* **no** graph pattern can capture exactly the solutions
  (Proposition 5.3): ``Rep_Σ`` is closed under adding nodes/edges to a
  graph (homomorphisms survive extension), while satisfaction of a
  non-trivially-firing egd is not.  :func:`non_universality_counterexample`
  constructs, from any solution, an extension that stays in ``Rep_Σ(π)``
  but violates an egd — the generic form of the paper's Figure 7.

The fix the paper proposes — representing solutions as a *pair*
(pattern, target constraints) — is :class:`UniversalRepresentative`:
``G`` is represented iff π → G **and** G satisfies the constraints.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from repro.chase.egd_chase import chase_with_egds
from repro.chase.result import ChaseResult
from repro.core.setting import DataExchangeSetting, TargetConstraint
from repro.graph.database import GraphDatabase
from repro.graph.witness import materialize_witness, witness_tree
from repro.mappings.egd import TargetEgd
from repro.patterns.homomorphism import has_homomorphism
from repro.patterns.pattern import GraphPattern
from repro.relational.instance import RelationalInstance
from repro.relational.query import is_variable


@dataclass
class UniversalRepresentative:
    """The (pattern, constraints) pair of Section 5's closing discussion.

    Membership combines the homomorphism test with constraint satisfaction;
    for settings whose egd chase succeeds, the adapted-chase pattern paired
    with the setting's target constraints represents exactly the solutions
    on the paper's examples (the general completeness question is the open
    problem the paper states in its conclusions).
    """

    pattern: GraphPattern
    constraints: tuple[TargetConstraint, ...]

    def contains(self, graph: GraphDatabase) -> bool:
        """Whether ``graph`` is represented: π → G and G ⊨ constraints."""
        if not has_homomorphism(self.pattern, graph):
            return False
        return all(constraint.is_satisfied(graph) for constraint in self.constraints)


def adapted_chase(
    setting: DataExchangeSetting, instance: RelationalInstance
) -> ChaseResult:
    """Run the Section 5 adapted chase for ``setting`` (egds applied).

    Convenience wrapper over :func:`repro.chase.egd_chase.chase_with_egds`
    using the setting's s-t tgds and egds.  The run executes on the
    indexed delta engine (:mod:`repro.engine`): egd violations are
    maintained incrementally across merge steps, and the returned
    :class:`~repro.chase.result.ChaseResult` carries the engine's
    ``index_hits`` / ``triggers_fired`` counters in ``result.stats``.
    """
    return chase_with_egds(
        setting.st_tgds, setting.egds(), instance, alphabet=setting.alphabet
    )


def universal_representative(
    setting: DataExchangeSetting, instance: RelationalInstance
) -> UniversalRepresentative | None:
    """Build the (pattern, constraints) representative, or ``None`` on failure.

    ``None`` means the adapted chase failed, i.e. no solution exists.
    """
    result = adapted_chase(setting, instance)
    if result.failed:
        return None
    return UniversalRepresentative(
        pattern=result.expect_pattern(),
        constraints=setting.target_constraints,
    )


def non_universality_counterexample(
    solution: GraphDatabase,
    egds: Sequence[TargetEgd],
) -> GraphDatabase | None:
    """Extend a solution into a hom-preserving egd violator (Prop. 5.3).

    Given a solution ``G`` and a non-empty set of egds, returns ``G′ ⊇ G``
    that violates some egd.  Since ``G ⊆ G′``, any homomorphism (from any
    pattern) into G survives into G′; therefore no pattern π can satisfy
    ``Sol_Ω(I) = Rep_Σ(π)`` — G′ would be in ``Rep_Σ(π)`` but is not a
    solution.

    The construction instantiates one egd's body with *fresh, pairwise
    distinct* nodes (one per body variable; word witnesses get fresh
    intermediates), so the equated pair lands on two distinct fresh nodes.
    Returns ``None`` only when every egd's body forces its equated variables
    to coincide syntactically (a trivial egd that cannot be violated).
    """
    fresh_ids = itertools.count()

    def allocate() -> str:
        return f"_x{next(fresh_ids)}"

    for egd in egds:
        extended = solution.copy()
        assignment = {
            variable: f"_x{next(fresh_ids)}" for variable in egd.body.variables()
        }
        if assignment[egd.left] == assignment[egd.right]:
            continue
        feasible = True
        planned: list[tuple[object, str, object]] = []
        for atom in egd.body.atoms:
            source = (
                assignment[atom.subject] if is_variable(atom.subject) else atom.subject
            )
            target = (
                assignment[atom.object] if is_variable(atom.object) else atom.object
            )
            witness = witness_tree(atom.nre, source, target, fresh=allocate)
            edges, canonical = materialize_witness(witness)
            # The witness must not identify the two equated endpoints (e.g.
            # an egd whose body admits only ε between them is unviolatable).
            left_rep = canonical.get(assignment[egd.left])
            right_rep = canonical.get(assignment[egd.right])
            if left_rep is not None and left_rep == right_rep:
                feasible = False
                break
            planned.extend(edges)
        if not feasible:
            continue
        for source, lab, target in planned:
            extended.add_edge(source, lab, target)
        if not egd.is_satisfied(extended):
            return extended
    return None
