"""A tractable fragment for certain answers (the paper's future work).

The paper closes by asking for *tractable fragments* (Section 6).  This
module delivers one: the **Section 3.1 fragment** — s-t tgd heads that are
single symbols, target constraints that are egds — admits a polynomial
certain-answer algorithm for NRE queries.

The argument, in full:

1. In this fragment the relational chase (:mod:`repro.chase.relational_chase`)
   either fails — then no solution exists and every tuple is vacuously
   certain — or produces a graph ``U`` with labeled nulls that is a
   *universal solution*: ``U`` is itself a solution, and for every solution
   ``G`` there is a homomorphism ``h : U → G`` that is the identity on
   constants.  (Classical data exchange [11], inherited by the fragment
   because the target behaves as binary relations.)

2. NRE queries are **preserved under homomorphisms**: if ``(u, v) ∈ ⟦r⟧_U``
   and ``h : U → G`` is a homomorphism, then ``(h(u), h(v)) ∈ ⟦r⟧_G``.
   Proof sketch by induction on ``r``: edges map to edges (forward and
   backward), ε maps to ε, unions/concatenations/stars compose path images,
   and a nest witness maps to a nest witness.  (No negation, no
   inequalities — the same monotonicity that powers
   :mod:`repro.core.certain`.)

3. Hence for constants ``u, v``:  ``(u, v) ∈ cert_Ω(r, I)``  ⇔
   ``(u, v) ∈ ⟦r⟧_U``.  The ⇒ direction holds because ``U`` is a solution;
   the ⇐ direction because the homomorphism into any solution fixes ``u``
   and ``v``.  So certain answers are the *null-free* answers of the query
   on the chased universal solution — "naive evaluation", computable in
   PTIME (chase is polynomial here, NRE evaluation is polynomial).

The module cross-checks its verdicts against the general (exponential)
engine in the test suite.
"""

from __future__ import annotations

from typing import Hashable

from repro.chase.relational_chase import chase_relational
from repro.core.certain import CertainAnswers
from repro.core.setting import DataExchangeSetting
from repro.engine.query import default_engine
from repro.errors import NotSupportedError
from repro.graph.nre import NRE
from repro.patterns.pattern import is_null
from repro.relational.instance import RelationalInstance
from repro.telemetry import span

Node = Hashable


def in_tractable_fragment(setting: DataExchangeSetting) -> bool:
    """Whether the polynomial algorithm applies to ``setting``.

    Requires single-symbol s-t tgd heads and egd-only target constraints
    (the Section 3.1 fragment).
    """
    fragment = setting.fragment()
    return (
        fragment.heads_single_symbols
        and not fragment.has_sameas
        and not fragment.has_general_tgds
    )


def certain_answers_tractable(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    query: NRE,
    engine=None,
) -> CertainAnswers:
    """Certain answers by naive evaluation on the universal solution.

    Polynomial in the instance size (query complexity: the setting and
    query are fixed).  Raises :class:`~repro.errors.NotSupportedError`
    outside the fragment — use :func:`repro.core.certain.certain_answers_nre`
    there.  ``query`` is evaluated once, on the chased universal solution,
    through ``engine`` (default: the shared compiled engine).
    """
    return certain_answers_tractable_batch(setting, instance, [query], engine)[0]


def certain_answers_tractable_batch(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    queries,
    engine=None,
) -> list[CertainAnswers]:
    """Batched :func:`certain_answers_tractable`: one chase, many queries.

    The universal solution is chased once and every query is naively
    evaluated against it — the batched shape behind the service's
    ``evaluate_batch`` on fragment settings.  Answer sets equal per-query
    calls exactly (each is an independent evaluation on the same graph).
    """
    if not in_tractable_fragment(setting):
        raise NotSupportedError(
            "certain_answers_tractable requires the Section 3.1 fragment "
            "(single-symbol heads, egds only)"
        )
    query_list = list(queries)
    if not query_list:
        return []
    eng = engine if engine is not None else default_engine()
    chase = chase_relational(
        setting.st_tgds, setting.egds(), instance, alphabet=setting.alphabet
    )
    if chase.failed:
        return [
            CertainAnswers(
                answers=frozenset(),
                no_solution=True,
                solutions_examined=0,
                method="naive-evaluation(chase-failed)",
            )
            for _ in query_list
        ]
    universal = chase.expect_graph()
    results: list[CertainAnswers] = []
    with span("engine.evaluate", queries=len(query_list)):
        for query in query_list:
            answers = frozenset(
                (u, v)
                for u, v in eng.pairs(universal, query)
                if not is_null(u) and not is_null(v)
            )
            results.append(
                CertainAnswers(
                    answers=answers,
                    no_solution=False,
                    solutions_examined=1,
                    method="naive-evaluation(universal-solution)",
                )
            )
    return results
