"""The solution predicate: ``G ∈ Sol_Ω(I)``.

Per the paper (Section 2, "Solutions"): given Ω = (R, Σ, M_st, M_t), an
instance I of R and a graph G over Σ, G is a solution for I under Ω iff
``(I, G)`` satisfies M_st and ``G`` satisfies M_t.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.setting import DataExchangeSetting
from repro.graph.database import GraphDatabase
from repro.relational.instance import RelationalInstance


@dataclass
class SolutionReport:
    """An itemised account of which dependencies a graph violates."""

    st_tgd_violations: list[tuple[object, dict]] = field(default_factory=list)
    """Pairs (tgd, body homomorphism) whose head has no extension in G."""

    egd_violations: list[tuple[object, tuple]] = field(default_factory=list)
    """Pairs (egd, (u, v)) with u ≠ v both matched by the egd's equality."""

    sameas_violations: list[tuple[object, tuple]] = field(default_factory=list)
    """Pairs (constraint, (u, v)) lacking the required sameAs edge."""

    tgd_violations: list[tuple[object, dict]] = field(default_factory=list)
    """Pairs (target tgd, body homomorphism) with no head extension."""

    @property
    def ok(self) -> bool:
        """Whether no violation of any kind was recorded."""
        return not (
            self.st_tgd_violations
            or self.egd_violations
            or self.sameas_violations
            or self.tgd_violations
        )

    def summary(self) -> str:
        """Return a one-line human-readable account."""
        if self.ok:
            return "solution: all dependencies satisfied"
        parts = []
        if self.st_tgd_violations:
            parts.append(f"{len(self.st_tgd_violations)} s-t tgd violation(s)")
        if self.egd_violations:
            parts.append(f"{len(self.egd_violations)} egd violation(s)")
        if self.sameas_violations:
            parts.append(f"{len(self.sameas_violations)} sameAs violation(s)")
        if self.tgd_violations:
            parts.append(f"{len(self.tgd_violations)} target tgd violation(s)")
        return "not a solution: " + ", ".join(parts)


def solution_violations(
    instance: RelationalInstance,
    graph: GraphDatabase,
    setting: DataExchangeSetting,
    first_only: bool = False,
) -> SolutionReport:
    """Collect every dependency violation of ``graph`` w.r.t. the setting.

    With ``first_only=True`` the scan stops at the first violation found —
    the fast path behind :func:`is_solution`.
    """
    report = SolutionReport()
    for tgd in setting.st_tgds:
        for violation in tgd.violations(instance, graph):
            report.st_tgd_violations.append((tgd, violation))
            if first_only:
                return report
    for egd in setting.egds():
        for pair in egd.violations(graph):
            report.egd_violations.append((egd, pair))
            if first_only:
                return report
    for constraint in setting.sameas_constraints():
        for pair in constraint.violations(graph):
            report.sameas_violations.append((constraint, pair))
            if first_only:
                return report
    for tgd in setting.general_target_tgds():
        for violation in tgd.violations(graph):
            report.tgd_violations.append((tgd, violation))
            if first_only:
                return report
    return report


def is_solution(
    instance: RelationalInstance,
    graph: GraphDatabase,
    setting: DataExchangeSetting,
) -> bool:
    """Return whether ``graph`` is a solution for ``instance`` under the setting.

    >>> # See tests/test_core/test_solution.py and the Figure 1 benchmark
    >>> # for the paper's G1/G2/G3 checks.
    """
    return solution_violations(instance, graph, setting, first_only=True).ok
