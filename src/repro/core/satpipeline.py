"""The persistent incremental SAT pipeline for the Theorem 4.1 fragment.

Before this module existed, every certain-answer probe and every existence
decision on a SAT-encodable setting re-encoded the bounded-model CNF and
re-ran the solver from scratch — although consecutive probes share the
whole base encoding (s-t tgd clauses + egd blocking clauses) and differ
only in which query pair is being blocked.  A :class:`SatPipeline` keeps
**one solver per (setting, instance) universe** and makes the differences
incremental:

* the base encoding (:func:`~repro.solver.encode.encode_bounded_existence`)
  is built once and ingested into one
  :class:`~repro.solver.cdcl.CDCLSolver` (or the DPLL oracle adapter,
  under ``--solver dpll``);
* each probed pair gets a fresh **guard variable**; its blocking clauses
  are added once, extended with ``¬guard``, and activated per solve with
  ``solve(assumptions=[guard])`` — so *candidate selection is an
  assumption literal*, not a new formula;
* everything the CDCL solver learns while probing one pair is implied by
  the clause database alone and therefore **carries over to every later
  probe** of the same universe, instead of being thrown away per call;
* decoded witnesses are verified through the fragment-exact
  :func:`~repro.solver.encode.check_fragment_solution` and memoised by
  edge signature (deterministic phase saving makes the solver reproduce
  the same model across probes, so verification usually runs once).

Soundness is inherited from the encode module's completeness argument: a
guarded blocking clause is satisfiable with its guard false, so adding
pair constraints never changes the satisfiability of the base encoding —
which is why the existence verdict can be decided once and cached.

Pipelines are cached by **value** (setting fingerprint + instance
fingerprint + solver name, see :func:`pipeline_for`), which is what makes
the serving model fast: a steady stream of requests over the same exchange
setting hits one warm solver no matter how the request objects were
constructed.
"""

from __future__ import annotations

import threading
from typing import Hashable

from repro.chase.pattern_chase import chase_pattern
from repro.core.setting import DataExchangeSetting
from repro.errors import NotSupportedError
from repro.graph.database import GraphDatabase
from repro.graph.nre import NRE
from repro.relational.instance import RelationalInstance
from repro.solver import make_solver, resolve_solver_name
from repro.solver.encode import (
    add_pair_blocking_clauses,
    check_fragment_solution,
    decode_edge_model,
    encode_bounded_existence,
)
from repro.telemetry import fold_stats, span

Node = Hashable

_UNSET = object()
_INAPPLICABLE = object()


class SatPipeline:
    """One persistent incremental solver for one (setting, instance) universe.

    Raises :class:`~repro.errors.NotSupportedError` at construction when
    the setting cannot be encoded (use :func:`pipeline_for`, which screens
    by fragment and caches the outcome).
    """

    def __init__(
        self,
        setting: DataExchangeSetting,
        instance: RelationalInstance,
        solver: str | None = None,
    ):
        self.setting = setting
        # Snapshot the (mutable) instance: the pipeline is cached by value
        # fingerprint, so later mutations of the caller's object must not
        # leak into a pipeline that fingerprint-equal requests still hit —
        # witness verification would otherwise run against foreign facts.
        self.instance = instance.copy()
        instance = self.instance
        self.solver_name = resolve_solver_name(solver)
        with span("solver.build", solver=self.solver_name):
            pattern = chase_pattern(
                setting.st_tgds, instance, alphabet=setting.alphabet
            ).expect_pattern()
            self.nodes: list[Node] = sorted(pattern.nodes(), key=repr)
            self._members = set(self.nodes)
            self.cnf = encode_bounded_existence(setting, instance, self.nodes)
            self.solver = make_solver(self.cnf, self.solver_name)
        self.probes = 0
        """SAT solves issued through :meth:`probe_pair` (telemetry)."""
        self._guards: dict[tuple[NRE, Node, Node], int | None] = {}
        self._witnesses: dict[frozenset, GraphDatabase] = {}
        self._existence: object = _UNSET

    # ------------------------------------------------------------------ #

    def existence_witness(self) -> GraphDatabase | None:
        """A verified bounded solution, or ``None`` when none exists.

        Decided once per pipeline: guarded pair clauses never change the
        satisfiability of the base encoding (each is satisfiable with its
        guard false), so the verdict cannot go stale.
        """
        if self._existence is _UNSET:
            with span("solver.solve", kind="existence", solver=self.solver_name):
                model = self.solver.solve()
            self._fold_solver_stats()
            self._existence = None if model is None else self._witness(model)
        return self._existence  # type: ignore[return-value]

    def has_solution(self) -> bool:
        """Whether any bounded solution exists (complete for the fragment)."""
        return self.existence_witness() is not None

    def probe_pair(
        self, query: NRE, source: Node, target: Node
    ) -> GraphDatabase | None:
        """Find a solution missing ``(source, target) ∈ ⟦query⟧``, or ``None``.

        ``None`` covers both "every bounded solution contains the pair"
        and "no solution at all" — in either case the pair is certain (the
        latter vacuously).  The returned graph is a verified solution.
        Raises :class:`~repro.errors.NotSupportedError` when ``query`` is
        not a union of words.
        """
        key = (query, source, target)
        guard = self._guards.get(key, _UNSET)
        if guard is _UNSET:
            guard = self._install_guard(query, source, target)
            self._guards[key] = guard
        self.probes += 1
        if guard is None:
            # The pair has no realisation over the universe: any solution
            # is a counterexample, and the existence answer is cached.
            return self.existence_witness()
        with span("solver.solve", kind="probe", solver=self.solver_name):
            model = self.solver.solve((guard,))
        self._fold_solver_stats()
        if model is None:
            return None
        return self._witness(model)

    def guard_keys(self) -> tuple:
        """The ``(query, source, target)`` pairs probed so far, sorted.

        The working set a warm pipeline has accumulated — exactly what
        :func:`advance_pipeline` replays into the successor pipeline after
        an instance update, so the first post-update probe of a hot pair
        finds its blocking clauses already installed.
        """
        return tuple(sorted(self._guards, key=repr))

    def prewarm_pairs(self, keys) -> int:
        """Install blocking clauses for ``keys`` without solving.

        Each key is a ``(query, source, target)`` triple (typically another
        pipeline's :meth:`guard_keys`).  Keys whose query shape the encoder
        rejects are skipped — prewarming is best-effort by design.  Returns
        how many guards were newly installed.
        """
        installed = 0
        for key in keys:
            if key in self._guards:
                continue
            query, source, target = key
            try:
                self._guards[key] = self._install_guard(query, source, target)
            except NotSupportedError:
                continue
            installed += 1
        return installed

    # ------------------------------------------------------------------ #

    def _fold_solver_stats(self) -> None:
        """Fold the solver's cumulative counters into the telemetry registry.

        Called after every solve; :func:`~repro.telemetry.fold_stats` folds
        by delta, so repeated calls ship only the new work.
        """
        stats = getattr(self.solver, "stats", None)
        if stats is not None:
            fold_stats("solver", stats)

    def _install_guard(self, query: NRE, source: Node, target: Node) -> int | None:
        if source not in self._members or target not in self._members:
            return None
        guard = self.cnf.new_variable()
        added = add_pair_blocking_clauses(
            self.cnf, query, source, target, self.nodes, guard=guard
        )
        if not added:  # no path variables exist: the pair is unrealisable
            return None
        solver_add = self.solver.add_clause
        for clause in added:
            solver_add(clause)
        return guard

    def _witness(self, model: dict[int, bool]) -> GraphDatabase:
        witness = decode_edge_model(
            self.cnf, model, self.setting.alphabet, self.nodes
        )
        signature = frozenset(witness.edges()) | frozenset(
            ("node", n) for n in witness.nodes()
        )
        cached = self._witnesses.get(signature)
        if cached is not None:
            return cached
        if not check_fragment_solution(self.instance, witness, self.setting):
            # A decode/encode disagreement would be a bug; surface it as
            # "not supported" so callers fall back to the sound enumeration
            # instead of trusting a broken fast path.
            raise NotSupportedError(
                "decoded SAT model failed the fragment solution check"
            )
        self._witnesses[signature] = witness
        return witness


# (setting key, instance fingerprint, solver name) → SatPipeline, so a
# steady stream of value-equal requests — the serving model — reuses one
# warm solver with everything it has learnt.  Bounded like the encode
# module's path cache: wholesale clear past the limit.  The registry is
# lock-protected for re-entrant multi-threaded callers (the service's
# inline worker lane runs beside the server's event-loop thread); the
# pipelines *themselves* are single-threaded — callers must not probe one
# pipeline from two threads at once (the service serialises all library
# work per worker, so this never arises in the serving deployment).
_PIPELINES: dict = {}
_PIPELINE_LIMIT = 64
_PIPELINES_LOCK = threading.Lock()


def _setting_key(setting: DataExchangeSetting):
    key = getattr(setting, "_satpipeline_key", None)
    if key is None:
        key = (setting.alphabet, setting.st_tgds, setting.target_constraints)
        setting._satpipeline_key = key  # settings are immutable after init
    return key


def pipeline_for(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    solver: str | None = None,
) -> SatPipeline | None:
    """Return the shared pipeline for this universe, or ``None`` if inapplicable.

    Screens by :attr:`~repro.core.setting.SettingFragment.sat_encodable`
    first; construction failures (encode raising ``NotSupportedError`` on
    shapes the syntactic fragment check over-approximates) are cached as
    inapplicable so they are not retried per probe.
    """
    if not setting.fragment().sat_encodable:
        return None
    name = resolve_solver_name(solver)
    key = (_setting_key(setting), instance.fingerprint(), name)
    # Get-or-create under the registry lock: concurrent value-equal
    # requests must converge on ONE pipeline, not race to build two and
    # hand different solvers to different callers.
    with _PIPELINES_LOCK:
        entry = _PIPELINES.get(key)
        if entry is None:
            try:
                entry = SatPipeline(setting, instance, name)
            except NotSupportedError:
                entry = _INAPPLICABLE
            if len(_PIPELINES) >= _PIPELINE_LIMIT:
                _PIPELINES.clear()
            _PIPELINES[key] = entry
    return None if entry is _INAPPLICABLE else entry


def advance_pipeline(
    setting: DataExchangeSetting,
    old_instance: RelationalInstance,
    new_instance: RelationalInstance,
    solver: str | None = None,
) -> SatPipeline | None:
    """Roll a warm pipeline forward across an instance update.

    A clause database encodes one concrete universe (the chase pattern's
    node set), so the old solver cannot be patched in place when the
    instance changes — but its *working set* can move: the successor
    pipeline for ``new_instance`` is built (or fetched) through
    :func:`pipeline_for`, and every pair the old pipeline had installed
    guards for is pre-warmed into it, so hot pairs keep answering from
    incremental assumptions instead of paying first-probe setup again.
    The old entry is evicted.  Returns the successor pipeline, or ``None``
    when the setting is not SAT-encodable.
    """
    if not setting.fragment().sat_encodable:
        return None
    name = resolve_solver_name(solver)
    old_key = (_setting_key(setting), old_instance.fingerprint(), name)
    with _PIPELINES_LOCK:
        prior = _PIPELINES.pop(old_key, None)
    successor = pipeline_for(setting, new_instance, name)
    if successor is not None and isinstance(prior, SatPipeline):
        successor.prewarm_pairs(prior.guard_keys())
    return successor


def live_pipelines() -> list[SatPipeline]:
    """Every pipeline currently warm in this process's registry.

    The introspection hook worker processes use to flush accumulated
    solver counters into the telemetry registry at response time.
    """
    with _PIPELINES_LOCK:
        return [p for p in _PIPELINES.values() if isinstance(p, SatPipeline)]


def clear_pipelines() -> None:
    """Drop every cached pipeline (tests and long-running processes)."""
    with _PIPELINES_LOCK:
        _PIPELINES.clear()
