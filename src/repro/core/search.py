"""Bounded enumeration of candidate solutions.

Every solution G contains a homomorphic image of the chased pattern π
(that is what makes π a universal representative for the constraint-free
part of the setting).  The *minimal* solutions — the only ones that matter
for certain answers of monotone queries, and sufficient witnesses for
existence — are therefore obtained by:

1. choosing, for every NRE edge of π, a concrete witness (union branches,
   star unrollings up to ``star_bound`` — :mod:`repro.graph.witness`);
2. choosing a *quotient*: which nulls collapse with each other or with
   constants (egds force such identifications in solutions; the choices are
   enumerated as set partitions of the nulls with an optional constant per
   block);
3. repairing constraint kinds that are always repairable: sameAs constraints
   by saturation, general target tgds by a bounded chase;
4. filtering by the full solution predicate.

The enumeration is exponential (witness choices × partitions), which is the
expected shape: the paper proves existence NP-hard (Theorem 4.1) and
certain answers coNP-hard (Corollary 4.2), so *some* exponential lives here
by necessity.  All knobs are explicit in :class:`CandidateSearchConfig`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterator

from repro.chase.egd_chase import chase_with_egds
from repro.chase.pattern_chase import chase_pattern
from repro.chase.sameas_chase import saturate_sameas
from repro.chase.target_tgd_chase import chase_target_tgds
from repro.core.setting import DataExchangeSetting
from repro.core.solution import is_solution
from repro.errors import BoundExceeded
from repro.graph.database import GraphDatabase
from repro.patterns.pattern import GraphPattern
from repro.patterns.rep import enumerate_instantiations
from repro.relational.instance import RelationalInstance

Node = Hashable


@dataclass(frozen=True)
class CandidateSearchConfig:
    """Bounds for the candidate-solution enumeration."""

    star_bound: int = 1
    """Maximum star unrollings per star occurrence in edge witnesses."""

    max_candidates: int | None = None
    """Stop after yielding this many solutions (``None`` = unbounded)."""

    max_instantiations: int | None = 512
    """Cap on witness-choice combinations examined."""

    max_quotients: int | None = 512
    """Cap on null quotients examined per instantiation."""

    tgd_rounds: int = 10
    """Round budget for repairing general target tgds."""

    quotient_nulls: bool = True
    """Whether to enumerate null identifications at all (needed under egds)."""

    prune_coarser: bool = True
    """Skip quotients coarsening an accepted solution quotient.

    Sound for certain answers and existence: the skipped solution is a
    homomorphic image (identity on constants) of an accepted one, so its
    answer set on constant tuples is a superset (monotonicity of NREs).
    Automatically disabled when general target tgds are present.
    """


def _partitions(items: list[Node]) -> Iterator[list[list[Node]]]:
    """Yield all set partitions of ``items`` (restricted-growth strings)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _partitions(rest):
        for i, block in enumerate(partition):
            yield partition[:i] + [[first] + block] + partition[i + 1 :]
        yield [[first]] + partition


def _quotient_maps(
    null_nodes: list[Node],
    constants: list[Node],
    limit: int | None,
) -> list[dict[Node, Node]]:
    """Return maps sending each null-derived node to its representative.

    Each set partition of the nulls becomes several maps: every block maps
    either to its own first element (stays null-like) or to one constant.
    The list is ordered from finest (identity) to coarsest, measured by the
    number of identifications performed; the coarsening-pruning in
    :func:`candidate_solutions` relies on this order.
    """

    def rank(mapping: dict[Node, Node]) -> int:
        merged_away = sum(1 for node, target in mapping.items() if node != target)
        into_constants = sum(1 for target in mapping.values() if target in constant_set)
        return merged_away + into_constants

    constant_set = set(constants)
    maps: list[dict[Node, Node]] = []
    for partition in _partitions(null_nodes):
        per_block_choices = [[block[0]] + constants for block in partition]
        for targets in itertools.product(*per_block_choices):
            mapping: dict[Node, Node] = {}
            for block, target in zip(partition, targets):
                for member in block:
                    mapping[member] = target
            maps.append(mapping)
            if limit is not None and len(maps) >= limit:
                maps.sort(key=rank)
                return maps
    maps.sort(key=rank)
    return maps


def _coarsens(
    finer: dict[Node, Node],
    candidate: dict[Node, Node],
    null_nodes: list[Node],
    constants: set[Node],
) -> bool:
    """Whether ``candidate`` factors through ``finer`` (identifies at least
    as much, and agrees on every constant ``finer`` already pinned).

    When it does, the candidate's solution is a homomorphic image of the
    finer one (identity on constants), so by monotonicity of NREs its
    answer set on constant tuples is a superset — useless for certain-answer
    intersections and redundant as an existence witness.
    """
    image: dict[Node, Node] = {}
    for node in null_nodes:
        finer_value = finer.get(node, node)
        candidate_value = candidate.get(node, node)
        if finer_value in constants:
            if candidate_value != finer_value:
                return False
            continue
        pinned = image.get(finer_value)
        if pinned is None:
            image[finer_value] = candidate_value
        elif pinned != candidate_value:
            return False
    return True


def _apply_quotient(graph: GraphDatabase, mapping: dict[Node, Node]) -> GraphDatabase:
    result = GraphDatabase(alphabet=graph.alphabet)
    for node in graph.nodes():
        result.add_node(mapping.get(node, node))
    for edge in graph.edges():
        result.add_edge(
            mapping.get(edge.source, edge.source),
            edge.label,
            mapping.get(edge.target, edge.target),
        )
    return result


def chased_pattern_for(
    setting: DataExchangeSetting, instance: RelationalInstance
) -> GraphPattern | None:
    """Chase the pattern (with egd steps when egds are present).

    Returns ``None`` when the egd chase fails — then no solution exists and
    the search space is empty.
    """
    if setting.egds():
        result = chase_with_egds(
            setting.st_tgds, setting.egds(), instance, alphabet=setting.alphabet
        )
        if result.failed:
            return None
        return result.expect_pattern()
    return chase_pattern(
        setting.st_tgds, instance, alphabet=setting.alphabet
    ).expect_pattern()


def candidate_solutions(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    config: CandidateSearchConfig | None = None,
) -> Iterator[GraphDatabase]:
    """Yield distinct (bounded-)minimal solutions for ``instance`` under Ω.

    Every yielded graph passes the full :func:`repro.core.solution.is_solution`
    check, so consumers may rely on them being genuine solutions.
    """
    cfg = config if config is not None else CandidateSearchConfig()
    pattern = chased_pattern_for(setting, instance)
    if pattern is None:
        return

    sigma = setting.effective_alphabet()
    constants = sorted(
        (n for n in pattern.constants()), key=repr
    )
    seen: set[frozenset] = set()
    solution_signatures: set[frozenset] = set()
    yielded = 0
    examined_instantiations = 0

    for instantiation in enumerate_instantiations(
        pattern, star_bound=cfg.star_bound, alphabet=sigma
    ):
        examined_instantiations += 1
        if (
            cfg.max_instantiations is not None
            and examined_instantiations > cfg.max_instantiations
        ):
            return
        null_nodes = sorted(
            {
                instantiation.assignment[null]
                for null in pattern.nulls()
            },
            key=repr,
        )
        if cfg.quotient_nulls:
            quotients = _quotient_maps(null_nodes, constants, cfg.max_quotients)
        else:
            quotients = [{}]
        constant_set = set(constants)
        # Pruning: once a quotient yields a solution, every coarser quotient
        # of the same instantiation is a homomorphic image of it (identity
        # on constants), hence answer-superset by monotonicity — skip it.
        # Disabled when general target tgds are present (their bounded-chase
        # repair does not commute with homomorphisms in general).
        prune = cfg.prune_coarser and not setting.general_target_tgds()
        accepted: list[dict[Node, Node]] = []
        for mapping in quotients:
            if prune and any(
                _coarsens(done, mapping, null_nodes, constant_set)
                for done in accepted
            ):
                continue
            graph = _apply_quotient(instantiation.graph, mapping)
            graph = _repair(graph, setting, cfg)
            if graph is None:
                continue
            signature = frozenset(graph.edges()) | frozenset(
                ("node", n) for n in graph.nodes()
            )
            if signature in seen:
                if signature in solution_signatures:
                    accepted.append(mapping)
                continue
            seen.add(signature)
            if is_solution(instance, graph, setting):
                solution_signatures.add(signature)
                accepted.append(mapping)
                yield graph
                yielded += 1
                if cfg.max_candidates is not None and yielded >= cfg.max_candidates:
                    return


def _repair(
    graph: GraphDatabase,
    setting: DataExchangeSetting,
    cfg: CandidateSearchConfig,
) -> GraphDatabase | None:
    """Apply the always-repairable constraint kinds; ``None`` if repair fails."""
    if setting.sameas_constraints():
        graph = saturate_sameas(graph, list(setting.sameas_constraints()))
    general = setting.general_target_tgds()
    if general:
        try:
            result = chase_target_tgds(
                graph, general, max_rounds=cfg.tgd_rounds, strict=True
            )
        except BoundExceeded:
            return None
        graph = result.expect_graph()
        if setting.sameas_constraints():
            graph = saturate_sameas(graph, list(setting.sameas_constraints()))
    return graph
