"""Bounded enumeration of candidate solutions.

Every solution G contains a homomorphic image of the chased pattern π
(that is what makes π a universal representative for the constraint-free
part of the setting).  The *minimal* solutions — the only ones that matter
for certain answers of monotone queries, and sufficient witnesses for
existence — are therefore obtained by:

1. choosing, for every NRE edge of π, a concrete witness (union branches,
   star unrollings up to ``star_bound`` — :mod:`repro.graph.witness`);
2. choosing a *quotient*: which nulls collapse with each other or with
   constants (egds force such identifications in solutions; the choices are
   enumerated as set partitions of the nulls with an optional constant per
   block);
3. repairing constraint kinds that are always repairable: sameAs constraints
   by saturation, general target tgds by a bounded chase;
4. filtering by the full solution predicate.

The enumeration is exponential (witness choices × partitions), which is the
expected shape: the paper proves existence NP-hard (Theorem 4.1) and
certain answers coNP-hard (Corollary 4.2), so *some* exponential lives here
by necessity.  All knobs are explicit in :class:`CandidateSearchConfig`.

Step 1 is a *pruned backtracking* search rather than a blind product: a
partial witness combination whose partial graph already violates an egd
between two **distinct constants** can never complete to a solution —
adding the remaining witnesses only adds edges (NRE bodies are monotone,
so the violating match survives), quotients rename nulls but fix constants
(the match's image still violates), and the repair steps of step 3 only add
edges too.  Cutting those subtrees early is what makes the
``max_instantiations`` budget meaningful on settings whose witness-choice
space is large but mostly inconsistent — the seed code enumerated the raw
product and routinely burned its entire budget inside a fully-conflicted
region (Hypothesis seed 2781 was the canonical failure: a verified SAT
witness existed while the first 512 product combinations all violated the
``l2·l1`` egd, so ``candidate_solutions`` reported nothing).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterator

from repro.chase.egd_chase import chase_with_egds
from repro.chase.pattern_chase import chase_pattern
from repro.chase.sameas_chase import saturate_sameas
from repro.chase.target_tgd_chase import chase_target_tgds
from repro.core.setting import DataExchangeSetting
from repro.core.solution import is_solution
from repro.engine.matcher import TriggerMatcher
from repro.errors import BoundExceeded, NotSupportedError
from repro.graph.database import GraphDatabase
from repro.graph.witness import default_fresh_factory, enumerate_witnesses
from repro.patterns.pattern import GraphPattern, PatternEdge
from repro.patterns.rep import Instantiation, assemble_witnesses
from repro.relational.instance import RelationalInstance

Node = Hashable


@dataclass(frozen=True)
class CandidateSearchConfig:
    """Bounds for the candidate-solution enumeration."""

    star_bound: int = 1
    """Maximum star unrollings per star occurrence in edge witnesses."""

    max_candidates: int | None = None
    """Stop after yielding this many solutions (``None`` = unbounded)."""

    max_instantiations: int | None = 512
    """Cap on witness-choice combinations examined."""

    max_quotients: int | None = 512
    """Cap on null quotients examined per instantiation."""

    tgd_rounds: int = 10
    """Round budget for repairing general target tgds."""

    quotient_nulls: bool = True
    """Whether to enumerate null identifications at all (needed under egds)."""

    prune_coarser: bool = True
    """Skip quotients coarsening an accepted solution quotient.

    Sound for certain answers and existence: the skipped solution is a
    homomorphic image (identity on constants) of an accepted one, so its
    answer set on constant tuples is a superset (monotonicity of NREs).
    Automatically disabled when general target tgds are present.
    """


def _partitions(items: list[Node]) -> Iterator[list[list[Node]]]:
    """Yield all set partitions of ``items`` (restricted-growth strings)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _partitions(rest):
        for i, block in enumerate(partition):
            yield partition[:i] + [[first] + block] + partition[i + 1 :]
        yield [[first]] + partition


def _quotient_maps(
    null_nodes: list[Node],
    constants: list[Node],
    limit: int | None,
) -> list[dict[Node, Node]]:
    """Return maps sending each null-derived node to its representative.

    Each set partition of the nulls becomes several maps: every block maps
    either to its own first element (stays null-like) or to one constant.
    The list is ordered from finest (identity) to coarsest, measured by the
    number of identifications performed; the coarsening-pruning in
    :func:`candidate_solutions` relies on this order.
    """

    def rank(mapping: dict[Node, Node]) -> int:
        merged_away = sum(1 for node, target in mapping.items() if node != target)
        into_constants = sum(1 for target in mapping.values() if target in constant_set)
        return merged_away + into_constants

    constant_set = set(constants)
    maps: list[dict[Node, Node]] = []
    for partition in _partitions(null_nodes):
        per_block_choices = [[block[0]] + constants for block in partition]
        for targets in itertools.product(*per_block_choices):
            mapping: dict[Node, Node] = {}
            for block, target in zip(partition, targets):
                for member in block:
                    mapping[member] = target
            maps.append(mapping)
            if limit is not None and len(maps) >= limit:
                maps.sort(key=rank)
                return maps
    maps.sort(key=rank)
    return maps


def _coarsens(
    finer: dict[Node, Node],
    candidate: dict[Node, Node],
    null_nodes: list[Node],
    constants: set[Node],
) -> bool:
    """Whether ``candidate`` factors through ``finer`` (identifies at least
    as much, and agrees on every constant ``finer`` already pinned).

    When it does, the candidate's solution is a homomorphic image of the
    finer one (identity on constants), so by monotonicity of NREs its
    answer set on constant tuples is a superset — useless for certain-answer
    intersections and redundant as an existence witness.
    """
    image: dict[Node, Node] = {}
    for node in null_nodes:
        finer_value = finer.get(node, node)
        candidate_value = candidate.get(node, node)
        if finer_value in constants:
            if candidate_value != finer_value:
                return False
            continue
        pinned = image.get(finer_value)
        if pinned is None:
            image[finer_value] = candidate_value
        elif pinned != candidate_value:
            return False
    return True


def _apply_quotient(graph: GraphDatabase, mapping: dict[Node, Node]) -> GraphDatabase:
    result = GraphDatabase(alphabet=graph.alphabet)
    for node in graph.nodes():
        result.add_node(mapping.get(node, node))
    for edge in graph.edges():
        result.add_edge(
            mapping.get(edge.source, edge.source),
            edge.label,
            mapping.get(edge.target, edge.target),
        )
    return result


def chased_pattern_for(
    setting: DataExchangeSetting, instance: RelationalInstance
) -> GraphPattern | None:
    """Chase the pattern (with egd steps when egds are present).

    Returns ``None`` when the egd chase fails — then no solution exists and
    the search space is empty.
    """
    if setting.egds():
        result = chase_with_egds(
            setting.st_tgds, setting.egds(), instance, alphabet=setting.alphabet
        )
        if result.failed:
            return None
        return result.expect_pattern()
    return chase_pattern(
        setting.st_tgds, instance, alphabet=setting.alphabet
    ).expect_pattern()


def _has_constant_egd_conflict(
    graph: GraphDatabase,
    egds,
    constants: set[Node],
    engine,
) -> bool:
    """Whether ``graph`` violates some egd between two distinct constants.

    Such a violation is *permanent*: witnesses still to be chosen only add
    edges, quotients only rename nulls, and the repair chases only add edges
    — none of which can retract an NRE match between two constants.  Used
    by the backtracking enumeration to cut conflicted subtrees early.
    """
    for egd in egds:
        matcher = TriggerMatcher(graph, engine=engine)
        for hom in matcher.matches(egd.body):
            left, right = hom[egd.left], hom[egd.right]
            if left != right and left in constants and right in constants:
                return True
    return False


def _pruned_instantiations(
    pattern: GraphPattern,
    setting: DataExchangeSetting,
    cfg: CandidateSearchConfig,
    sigma,
    engine,
) -> Iterator[Instantiation]:
    """Enumerate full witness combinations, pruning doomed prefixes.

    Yields exactly the assemblable combinations the raw product would have
    yielded, minus those whose partial graph already carries a
    constant-to-constant egd violation (see
    :func:`_has_constant_egd_conflict` — every completion of such a prefix
    fails the solution check, so skipping them loses nothing and keeps the
    ``max_instantiations`` budget for combinations that can still win).
    """
    edges = sorted(pattern.edges(), key=PatternEdge.sort_key)
    fresh = default_fresh_factory()
    per_edge = [
        list(enumerate_witnesses(e.nre, e.source, e.target, cfg.star_bound, fresh))
        for e in edges
    ]
    egds = list(setting.egds())
    constants = set(pattern.constants())

    def extend(index: int, chosen: list) -> Iterator[Instantiation]:
        partial = assemble_witnesses(pattern, chosen, sigma)
        if partial is None:
            return
        if egds and _has_constant_egd_conflict(
            partial.graph, egds, constants, engine
        ):
            return
        if index == len(per_edge):
            yield partial
            return
        for witness in per_edge[index]:
            yield from extend(index + 1, chosen + [witness])

    yield from extend(0, [])


def candidate_solutions(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    config: CandidateSearchConfig | None = None,
    engine=None,
    solver: str | None = None,
) -> Iterator[GraphDatabase]:
    """Yield distinct (bounded-)minimal solutions for ``instance`` under Ω.

    Every yielded graph passes the full :func:`repro.core.solution.is_solution`
    check, so consumers may rely on them being genuine solutions.  ``engine``
    is the query engine used for egd pruning and (downstream) solution
    checking; ``None`` selects the shared compiled engine.  ``solver``
    picks the SAT back-end for the pre-flight refutation below.

    On egd settings in the SAT-encodable fragment the shared incremental
    pipeline (:mod:`repro.core.satpipeline`) is consulted first: its
    existence verdict is *complete* there, so a refuted universe prunes
    the whole exponential enumeration in one (usually cached) SAT call.
    """
    cfg = config if config is not None else CandidateSearchConfig()
    if setting.egds() and setting.fragment().sat_encodable:
        from repro.core.satpipeline import pipeline_for

        pipeline = pipeline_for(setting, instance, solver)
        if pipeline is not None:
            try:
                refuted = not pipeline.has_solution()
            except NotSupportedError:  # pragma: no cover - decode self-check
                refuted = False
            if refuted:
                return  # complete: no solutions exist, nothing to enumerate
    pattern = chased_pattern_for(setting, instance)
    if pattern is None:
        return

    sigma = setting.effective_alphabet()
    constants = sorted(
        (n for n in pattern.constants()), key=repr
    )
    seen: set[frozenset] = set()
    solution_signatures: set[frozenset] = set()
    yielded = 0
    examined_instantiations = 0

    for instantiation in _pruned_instantiations(
        pattern, setting, cfg, sigma, engine
    ):
        examined_instantiations += 1
        if (
            cfg.max_instantiations is not None
            and examined_instantiations > cfg.max_instantiations
        ):
            return
        null_nodes = sorted(
            {
                instantiation.assignment[null]
                for null in pattern.nulls()
            },
            key=repr,
        )
        if cfg.quotient_nulls:
            quotients = _quotient_maps(null_nodes, constants, cfg.max_quotients)
        else:
            quotients = [{}]
        constant_set = set(constants)
        # Pruning: once a quotient yields a solution, every coarser quotient
        # of the same instantiation is a homomorphic image of it (identity
        # on constants), hence answer-superset by monotonicity — skip it.
        # Disabled when general target tgds are present (their bounded-chase
        # repair does not commute with homomorphisms in general).
        prune = cfg.prune_coarser and not setting.general_target_tgds()
        accepted: list[dict[Node, Node]] = []
        for mapping in quotients:
            if prune and any(
                _coarsens(done, mapping, null_nodes, constant_set)
                for done in accepted
            ):
                continue
            graph = _apply_quotient(instantiation.graph, mapping)
            graph = _repair(graph, setting, cfg)
            if graph is None:
                continue
            signature = frozenset(graph.edges()) | frozenset(
                ("node", n) for n in graph.nodes()
            )
            if signature in seen:
                if signature in solution_signatures:
                    accepted.append(mapping)
                continue
            seen.add(signature)
            if is_solution(instance, graph, setting):
                solution_signatures.add(signature)
                accepted.append(mapping)
                yield graph
                yielded += 1
                if cfg.max_candidates is not None and yielded >= cfg.max_candidates:
                    return


def _repair(
    graph: GraphDatabase,
    setting: DataExchangeSetting,
    cfg: CandidateSearchConfig,
) -> GraphDatabase | None:
    """Apply the always-repairable constraint kinds; ``None`` if repair fails."""
    if setting.sameas_constraints():
        graph = saturate_sameas(graph, list(setting.sameas_constraints()))
    general = setting.general_target_tgds()
    if general:
        try:
            result = chase_target_tgds(
                graph, general, max_rounds=cfg.tgd_rounds, strict=True
            )
        except BoundExceeded:
            return None
        graph = result.expect_graph()
        if setting.sameas_constraints():
            graph = saturate_sameas(graph, list(setting.sameas_constraints()))
    return graph
