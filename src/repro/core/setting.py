"""Data exchange settings Ω = (R, Σ, M_st, M_t) — Definition 2.1.

A :class:`DataExchangeSetting` bundles the relational source schema, the
target alphabet, the s-t tgds, and the target constraints (egds, sameAs
constraints, and/or general target tgds).  It also classifies itself into
the syntactic fragments the paper's results speak about
(:class:`SettingFragment`), which the existence and certain-answer engines
use to pick complete algorithms where they exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

from repro.errors import SchemaError
from repro.graph.classes import alphabet_of, is_union_of_symbols
from repro.graph.nre import Concat, Label, Union as NREUnion
from repro.mappings.egd import TargetEgd
from repro.mappings.sameas import SAME_AS_LABEL, SameAsConstraint
from repro.mappings.stt import SourceToTargetTgd
from repro.mappings.target_tgd import TargetTgd
from repro.relational.schema import RelationalSchema

TargetConstraint = Union[TargetEgd, SameAsConstraint, TargetTgd]


@dataclass(frozen=True)
class SettingFragment:
    """Syntactic classification of a setting, per the paper's restrictions.

    * ``heads_union_of_symbols`` — every s-t tgd head atom uses an NRE of
      the form ``a`` or ``a + b + …`` (Theorem 4.1 restriction (iii));
    * ``heads_single_symbols`` — stronger: every head atom is a bare symbol
      (the Section 3.1 relational fragment);
    * ``heads_existential_free`` — no existential variables in any head;
    * ``egd_bodies_words`` — after distributing top-level unions, every egd
      body atom is a concatenation of forward symbols (covers the SORE(·)
      restriction (iv); distinctness of symbols is *not* required here);
    * ``constraint kinds`` — which of egds / sameAs / general target tgds
      are present.
    """

    heads_union_of_symbols: bool
    heads_single_symbols: bool
    heads_existential_free: bool
    egd_bodies_words: bool
    has_egds: bool
    has_sameas: bool
    has_general_tgds: bool

    @property
    def has_target_constraints(self) -> bool:
        """Whether any target constraint is present."""
        return self.has_egds or self.has_sameas or self.has_general_tgds

    @property
    def sat_encodable(self) -> bool:
        """Whether the complete SAT-based existence procedure applies.

        Requires union-of-symbols heads and word egd bodies, and no
        constraint kinds other than egds.  In this fragment the bounded
        search over the chased pattern's node set is *complete* (see
        :mod:`repro.core.existence` for the argument).
        """
        return (
            self.heads_union_of_symbols
            and self.egd_bodies_words
            and not self.has_sameas
            and not self.has_general_tgds
        )


def _is_word(expr) -> bool:
    """Whether ``expr`` is a non-empty concatenation of forward labels."""
    if isinstance(expr, Label):
        return True
    if isinstance(expr, Concat):
        return _is_word(expr.left) and _is_word(expr.right)
    return False


def _atom_is_word_after_union_split(expr) -> bool:
    """Whether ``expr`` is a union of words (a single word included)."""
    if isinstance(expr, NREUnion):
        return _atom_is_word_after_union_split(expr.left) and (
            _atom_is_word_after_union_split(expr.right)
        )
    return _is_word(expr)


class DataExchangeSetting:
    """Ω = (R, Σ, M_st, M_t), Definition 2.1 of the paper.

    ``alphabet`` is the target schema Σ.  When sameAs constraints are
    present, the *effective* alphabet (:meth:`effective_alphabet`) includes
    the distinguished ``sameAs`` label, mirroring the paper's
    ``Σ_ρ ∪ {sameAs}`` in Proposition 4.3.

    ``validate=False`` skips the label/schema conformance scan — strictly
    for trusted internal constructors (the reduction builders derive Σ
    from the dependencies themselves, so the scan can never fail there and
    costs a full AST walk per dependency).  User-facing paths must keep
    the default.
    """

    def __init__(
        self,
        source_schema: RelationalSchema,
        alphabet: Iterable[str],
        st_tgds: Sequence[SourceToTargetTgd],
        target_constraints: Sequence[TargetConstraint] = (),
        name: str = "",
        validate: bool = True,
    ):
        self.source_schema = source_schema
        self.alphabet = frozenset(alphabet)
        self.st_tgds = tuple(st_tgds)
        self.target_constraints = tuple(target_constraints)
        self.name = name
        if validate:
            self._validate()

    def _validate(self) -> None:
        for tgd in self.st_tgds:
            tgd.body.validate(self.source_schema)
            for expr in tgd.head.expressions():
                unknown = alphabet_of(expr) - self.alphabet
                if unknown:
                    raise SchemaError(
                        f"s-t tgd head uses labels outside Σ: {sorted(unknown)}"
                    )
        effective = self.effective_alphabet()
        for constraint in self.target_constraints:
            expressions = list(constraint.body.expressions())
            if isinstance(constraint, TargetTgd):
                expressions.extend(constraint.head.expressions())
            for expr in expressions:
                unknown = alphabet_of(expr) - effective
                if unknown:
                    raise SchemaError(
                        f"target constraint uses labels outside Σ: {sorted(unknown)}"
                    )

    # ------------------------------------------------------------------ #
    # Constraint accessors
    # ------------------------------------------------------------------ #

    def egds(self) -> tuple[TargetEgd, ...]:
        """The egds among the target constraints (computed once)."""
        cached = getattr(self, "_egds", None)
        if cached is None:
            cached = self._egds = tuple(
                c for c in self.target_constraints if isinstance(c, TargetEgd)
            )
        return cached

    def sameas_constraints(self) -> tuple[SameAsConstraint, ...]:
        """The sameAs constraints among the target constraints (computed once)."""
        cached = getattr(self, "_sameas", None)
        if cached is None:
            cached = self._sameas = tuple(
                c for c in self.target_constraints if isinstance(c, SameAsConstraint)
            )
        return cached

    def general_target_tgds(self) -> tuple[TargetTgd, ...]:
        """The target tgds that are not sameAs constraints (computed once)."""
        cached = getattr(self, "_general_tgds", None)
        if cached is None:
            cached = self._general_tgds = tuple(
                c
                for c in self.target_constraints
                if isinstance(c, TargetTgd) and not isinstance(c, SameAsConstraint)
            )
        return cached

    def effective_alphabet(self) -> frozenset[str]:
        """Σ, extended with ``sameAs`` when sameAs constraints are present."""
        if self.sameas_constraints():
            return self.alphabet | {SAME_AS_LABEL}
        return self.alphabet

    # ------------------------------------------------------------------ #
    # Fragment classification
    # ------------------------------------------------------------------ #

    def fragment(self) -> SettingFragment:
        """Classify the setting into the paper's syntactic fragments.

        The classification is purely syntactic and the setting is immutable
        after construction, so it is computed once and cached.
        """
        cached = getattr(self, "_fragment", None)
        if cached is not None:
            return cached
        head_exprs = [
            atom.nre for tgd in self.st_tgds for atom in tgd.head.atoms
        ]
        heads_union = all(is_union_of_symbols(e) for e in head_exprs)
        heads_single = all(isinstance(e, Label) for e in head_exprs)
        heads_no_exist = all(not tgd.existentials for tgd in self.st_tgds)
        egd_words = all(
            _atom_is_word_after_union_split(atom.nre)
            for egd in self.egds()
            for atom in egd.body.atoms
        )
        self._fragment = SettingFragment(
            heads_union_of_symbols=heads_union,
            heads_single_symbols=heads_single,
            heads_existential_free=heads_no_exist,
            egd_bodies_words=egd_words,
            has_egds=bool(self.egds()),
            has_sameas=bool(self.sameas_constraints()),
            has_general_tgds=bool(self.general_target_tgds()),
        )
        return self._fragment

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"DataExchangeSetting{label}(|R|={len(self.source_schema)}, "
            f"|Σ|={len(self.alphabet)}, |M_st|={len(self.st_tgds)}, "
            f"|M_t|={len(self.target_constraints)})"
        )
