"""A DPLL SAT solver.

Implements the classic Davis–Putnam–Logemann–Loveland procedure with:

* unit propagation to fixpoint,
* pure-literal elimination,
* branching on the variable with the most clause occurrences (ties broken
  by index for determinism),
* iterative deepening of nothing — plain recursion; formulas produced by the
  exchange encodings and the benchmark sweeps stay small enough (hundreds of
  variables) that a watched-literal scheme would be over-engineering.

A brute-force :func:`enumerate_models` doubles as the oracle in the property
tests: DPLL's sat/unsat verdict must agree with exhaustive enumeration on
every random small formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.solver.cnf import CNF, Clause

Model = dict[int, bool]


@dataclass
class SolverStats:
    """Counters describing one solver run."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0


class DPLLSolver:
    """A reusable DPLL solver instance.

    >>> cnf = CNF()
    >>> x, y = cnf.new_variable(), cnf.new_variable()
    >>> cnf.add_clause([x, y]); cnf.add_clause([-x]); cnf.add_clause([-y, x])
    >>> DPLLSolver(cnf).solve() is None
    True
    """

    def __init__(self, cnf: CNF):
        self.cnf = cnf
        self.stats = SolverStats()

    def solve(self) -> Model | None:
        """Return a satisfying model, or ``None`` when unsatisfiable.

        The returned model assigns every variable of the formula (variables
        untouched by the search are completed with ``False``).
        """
        result = self._search(list(self.cnf.clauses), {})
        if result is None:
            return None
        for variable in range(1, self.cnf.variable_count + 1):
            result.setdefault(variable, False)
        return result

    # ------------------------------------------------------------------ #

    def _search(self, clauses: list[Clause], assignment: Model) -> Model | None:
        simplified = self._propagate(clauses, assignment)
        if simplified is None:
            self.stats.conflicts += 1
            return None
        clauses = simplified
        if not clauses:
            return dict(assignment)

        self._assign_pure_literals(clauses, assignment)
        clauses = [c for c in clauses if not self._clause_true(c, assignment)]
        if not clauses:
            return dict(assignment)

        variable = self._pick_branch_variable(clauses)
        self.stats.decisions += 1
        for value in (True, False):
            trail = dict(assignment)
            trail[variable] = value
            result = self._search(clauses, trail)
            if result is not None:
                return result
        return None

    def _propagate(self, clauses: list[Clause], assignment: Model) -> list[Clause] | None:
        """Unit-propagate; return simplified clauses or ``None`` on conflict."""
        while True:
            remaining: list[Clause] = []
            unit: int | None = None
            for clause in clauses:
                status, reduced = self._reduce(clause, assignment)
                if status == "true":
                    continue
                if status == "conflict":
                    return None
                if len(reduced) == 1 and unit is None:
                    unit = reduced[0]
                remaining.append(reduced)
            if unit is None:
                return remaining
            assignment[abs(unit)] = unit > 0
            self.stats.propagations += 1
            clauses = remaining

    @staticmethod
    def _reduce(clause: Clause, assignment: Model) -> tuple[str, Clause]:
        reduced: list[int] = []
        for literal in clause:
            value = assignment.get(abs(literal))
            if value is None:
                reduced.append(literal)
            elif value == (literal > 0):
                return "true", clause
        if not reduced:
            return "conflict", ()
        return "open", tuple(reduced)

    @staticmethod
    def _clause_true(clause: Clause, assignment: Model) -> bool:
        return any(
            assignment.get(abs(literal)) == (literal > 0)
            for literal in clause
            if abs(literal) in assignment
        )

    @staticmethod
    def _assign_pure_literals(clauses: list[Clause], assignment: Model) -> None:
        polarity: dict[int, set[bool]] = {}
        for clause in clauses:
            for literal in clause:
                variable = abs(literal)
                if variable not in assignment:
                    polarity.setdefault(variable, set()).add(literal > 0)
        for variable, signs in polarity.items():
            if len(signs) == 1:
                assignment[variable] = next(iter(signs))

    @staticmethod
    def _pick_branch_variable(clauses: list[Clause]) -> int:
        occurrences: dict[int, int] = {}
        for clause in clauses:
            for literal in clause:
                occurrences[abs(literal)] = occurrences.get(abs(literal), 0) + 1
        return min(occurrences, key=lambda v: (-occurrences[v], v))


def solve_cnf(cnf: CNF) -> Model | None:
    """One-shot convenience wrapper around :class:`DPLLSolver`."""
    return DPLLSolver(cnf).solve()


def enumerate_models(cnf: CNF, limit: int | None = None) -> Iterator[Model]:
    """Yield every model of ``cnf`` by exhaustive enumeration.

    Exponential in the variable count — strictly an oracle for tests and for
    tiny formulas (≤ ~20 variables).
    """
    n = cnf.variable_count
    produced = 0
    for bits in range(1 << n):
        model = {v: bool(bits >> (v - 1) & 1) for v in range(1, n + 1)}
        if cnf.is_satisfied_by(model):
            yield model
            produced += 1
            if limit is not None and produced >= limit:
                return
