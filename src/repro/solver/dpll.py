"""A DPLL SAT solver — the pipeline's differential oracle.

Implements the classic Davis–Putnam–Logemann–Loveland procedure with:

* unit propagation to fixpoint,
* pure-literal elimination,
* branching on the variable with the most clause occurrences (ties broken
  by index for determinism),
* plain chronological backtracking — deliberately so: the production
  solver is the conflict-driven :mod:`repro.solver.cdcl`, and this
  module's value is being a *simple, independent* implementation whose
  SAT/UNSAT verdicts the CDCL solver must match on every formula
  (``--solver dpll`` / ``REPRO_SOLVER=dpll`` runs the whole pipeline on
  it).

A brute-force :func:`enumerate_models` doubles as the second oracle in the
property tests: both solvers' verdicts must agree with exhaustive
enumeration on every random small formula.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterator, Sequence

from repro.solver.cnf import CNF, Clause

Model = dict[int, bool]


@dataclass
class SolverStats:
    """Counters describing one solver run."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0

    def as_dict(self) -> dict[str, int]:
        """Every counter as a plain dict (telemetry folding, reporting).

        >>> SolverStats(decisions=2).as_dict()["decisions"]
        2
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}


class DPLLSolver:
    """A reusable DPLL solver instance.

    >>> cnf = CNF()
    >>> x, y = cnf.new_variable(), cnf.new_variable()
    >>> cnf.add_clause([x, y]); cnf.add_clause([-x]); cnf.add_clause([-y, x])
    >>> DPLLSolver(cnf).solve() is None
    True
    """

    def __init__(self, cnf: CNF):
        self.cnf = cnf
        self.stats = SolverStats()
        self.core: tuple[int, ...] = ()
        """After an UNSAT :meth:`solve` under assumptions: the full
        assumption tuple (the *trivial* core — DPLL performs no conflict
        analysis, so it cannot do better; the CDCL solver's
        :attr:`~repro.solver.cdcl.CDCLSolver.core` is the precise one)."""

    def solve(self, assumptions: Sequence[int] = ()) -> Model | None:
        """Return a satisfying model, or ``None`` when unsatisfiable.

        ``assumptions`` are literals temporarily forced true for this call
        (the oracle-side mirror of the CDCL incremental interface — the
        solver itself remains stateless between calls).  The returned model
        assigns every variable of the formula (variables untouched by the
        search are completed with ``False``).

        Internally the assignment lives in a flat array indexed by variable
        with an undo *trail*, so branching costs O(1) instead of one dict
        copy per decision level.
        """
        self.core = ()
        assignment: list[bool | None] = [None] * (self.cnf.variable_count + 1)
        for literal in assumptions:
            if literal == 0:
                raise ValueError("0 is not a literal")
            variable, value = abs(literal), literal > 0
            if variable >= len(assignment):
                assignment.extend([None] * (variable + 1 - len(assignment)))
            if assignment[variable] is not None and assignment[variable] != value:
                self.core = tuple(assumptions)
                return None  # two assumptions contradict each other
            assignment[variable] = value
        if not self._search(list(self.cnf.clauses), assignment, []):
            if assumptions:
                self.core = tuple(assumptions)
            return None
        return {
            variable: bool(assignment[variable])
            for variable in range(1, self.cnf.variable_count + 1)
        }

    # ------------------------------------------------------------------ #

    def _search(
        self,
        clauses: list[Clause],
        assignment: list[bool | None],
        trail: list[int],
    ) -> bool:
        """Satisfy ``clauses``; True leaves the model in ``assignment``.

        On failure every variable assigned below this call is unwound from
        the trail, so the caller's assignment state is restored exactly.
        """
        mark = len(trail)
        simplified = self._propagate(clauses, assignment, trail)
        if simplified is None:
            self.stats.conflicts += 1
            self._undo(assignment, trail, mark)
            return False
        clauses = simplified
        if not clauses:
            return True

        self._assign_pure_literals(clauses, assignment, trail)
        clauses = [c for c in clauses if not self._clause_true(c, assignment)]
        if not clauses:
            return True

        variable, first = self._pick_branch_variable(clauses)
        self.stats.decisions += 1
        for value in (first, not first):
            level = len(trail)
            assignment[variable] = value
            trail.append(variable)
            if self._search(clauses, assignment, trail):
                return True
            self._undo(assignment, trail, level)
        self._undo(assignment, trail, mark)
        return False

    @staticmethod
    def _undo(assignment: list[bool | None], trail: list[int], mark: int) -> None:
        while len(trail) > mark:
            assignment[trail.pop()] = None

    def _propagate(
        self,
        clauses: list[Clause],
        assignment: list[bool | None],
        trail: list[int],
    ) -> list[Clause] | None:
        """Unit-propagate; return simplified clauses or ``None`` on conflict.

        All unit clauses found in one simplification pass are asserted
        together before re-scanning (two units contradicting each other are
        an immediate conflict), so a chain of ``k`` units costs ``O(k)``
        passes in the worst case but one pass in the common one — not the
        ``k`` full re-scans the one-unit-at-a-time loop performed.
        """
        while True:
            remaining: list[Clause] = []
            units: list[int] = []
            for clause in clauses:
                reduced: list[int] = []
                satisfied = False
                for literal in clause:
                    value = assignment[literal if literal > 0 else -literal]
                    if value is None:
                        reduced.append(literal)
                    elif value == (literal > 0):
                        satisfied = True
                        break
                if satisfied:
                    continue
                if not reduced:
                    return None  # conflict: clause fully falsified
                if len(reduced) == 1:
                    units.append(reduced[0])
                remaining.append(tuple(reduced))
            if not units:
                return remaining
            for unit in units:
                variable, value = abs(unit), unit > 0
                previous = assignment[variable]
                if previous is not None:
                    if previous != value:
                        return None  # two unit clauses demand opposite values
                    continue
                assignment[variable] = value
                trail.append(variable)
                self.stats.propagations += 1
            clauses = remaining

    @staticmethod
    def _clause_true(clause: Clause, assignment: list[bool | None]) -> bool:
        return any(
            assignment[abs(literal)] == (literal > 0)
            for literal in clause
            if assignment[abs(literal)] is not None
        )

    @staticmethod
    def _assign_pure_literals(
        clauses: list[Clause],
        assignment: list[bool | None],
        trail: list[int],
    ) -> None:
        polarity: dict[int, int] = {}  # var -> +1 / -1 / 0 (mixed)
        for clause in clauses:
            for literal in clause:
                variable = abs(literal)
                if assignment[variable] is None:
                    sign = 1 if literal > 0 else -1
                    seen = polarity.get(variable)
                    if seen is None:
                        polarity[variable] = sign
                    elif seen != sign:
                        polarity[variable] = 0
        for variable, sign in polarity.items():
            if sign:
                assignment[variable] = sign > 0
                trail.append(variable)

    @staticmethod
    def _pick_branch_variable(clauses: list[Clause]) -> tuple[int, bool]:
        """Choose the branch variable and which value to try first.

        The variable with the most clause occurrences wins (ties broken by
        index for determinism); ``True`` is tried first, matching the
        original search order.
        """
        occurrences: dict[int, int] = {}
        for clause in clauses:
            for literal in clause:
                variable = abs(literal)
                occurrences[variable] = occurrences.get(variable, 0) + 1
        best = min(occurrences, key=lambda v: (-occurrences[v], v))
        return best, True


def solve_cnf(cnf: CNF) -> Model | None:
    """One-shot convenience wrapper around :class:`DPLLSolver`."""
    return DPLLSolver(cnf).solve()


class IncrementalDPLL:
    """The incremental-solver interface, answered by from-scratch DPLL runs.

    This is the differential oracle for :class:`~repro.solver.cdcl.CDCLSolver`
    in the certain-answer pipeline: it exposes the same ``add_clause`` /
    ``solve(assumptions=...)`` surface, but keeps no state between solves —
    every call re-runs the chronological DPLL on the accumulated clause
    set, so its verdicts depend on nothing but the formula.  Selecting it
    (``--solver dpll`` / ``REPRO_SOLVER=dpll``) must never change an
    answer, only the speed.
    """

    name = "dpll"

    def __init__(self, cnf: CNF | None = None):
        self._cnf = CNF()
        if cnf is not None:
            self._cnf.variable_count = cnf.variable_count
            self._cnf.clauses = list(cnf.clauses)
        self.core: tuple[int, ...] = ()
        self.stats = SolverStats()
        self.ok = True

    @property
    def nvars(self) -> int:
        """The number of allocated variables."""
        return self._cnf.variable_count

    def new_variable(self) -> int:
        """Allocate and return a fresh variable."""
        return self._cnf.new_variable()

    def ensure_variables(self, count: int) -> None:
        """Grow the variable universe to at least ``count`` variables."""
        if self._cnf.variable_count < count:
            self._cnf.variable_count = count

    def add_clause(self, literals) -> bool:
        """Append a clause (canonicalised by :meth:`CNF.add_clause`)."""
        clause = list(literals)  # may be a one-shot iterable; read it once
        self.ensure_variables(max((abs(l) for l in clause), default=0))
        self._cnf.add_clause(clause)
        return True

    def solve(self, assumptions=()) -> Model | None:
        """Run a fresh DPLL search under ``assumptions``."""
        solver = DPLLSolver(self._cnf)
        model = solver.solve(assumptions)
        self.core = solver.core
        self.stats.decisions += solver.stats.decisions
        self.stats.propagations += solver.stats.propagations
        self.stats.conflicts += solver.stats.conflicts
        if model is None and not assumptions:
            self.ok = False
        return model


def enumerate_models(cnf: CNF, limit: int | None = None) -> Iterator[Model]:
    """Yield every model of ``cnf`` by exhaustive enumeration.

    Exponential in the variable count — strictly an oracle for tests and for
    tiny formulas (≤ ~20 variables).
    """
    n = cnf.variable_count
    produced = 0
    for bits in range(1 << n):
        model = {v: bool(bits >> (v - 1) & 1) for v in range(1, n + 1)}
        if cnf.is_satisfied_by(model):
            yield model
            produced += 1
            if limit is not None and produced >= limit:
                return
