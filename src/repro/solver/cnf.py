"""CNF formulas with DIMACS-style integer literals.

A literal is a non-zero ``int``: ``+v`` asserts variable ``v``, ``-v`` its
negation.  Variables are numbered from 1.  :class:`CNF` also supports named
variables (:meth:`CNF.variable`), which the exchange encoder uses to map
edge atoms to SAT variables and back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

Literal = int
Clause = tuple[Literal, ...]


def canonical_clause(literals: Iterable[Literal]) -> Clause | None:
    """Canonicalise a clause at insertion time.

    Repeated literals are merged (first occurrence order preserved) and
    tautological clauses (containing both ``x`` and ``¬x``) collapse to
    ``None`` — the caller drops them.  Raises :class:`ValueError` on the
    literal 0.  Both solvers (:class:`~repro.solver.dpll.DPLLSolver` and
    :class:`~repro.solver.cdcl.CDCLSolver`) ingest clauses through this
    single canonical form, so they always see identical inputs.

    >>> canonical_clause([1, 2, 2, 1])
    (1, 2)
    >>> canonical_clause([1, -1, 2]) is None
    True
    """
    seen: dict[int, None] = {}
    for literal in literals:
        if literal == 0:
            raise ValueError("0 is not a literal")
        if -literal in seen:
            return None  # tautological clause: x ∨ ¬x
        seen.setdefault(literal, None)
    return tuple(seen)


@dataclass
class CNF:
    """A CNF formula: a conjunction of clauses over integer variables.

    >>> cnf = CNF()
    >>> x, y = cnf.variable("x"), cnf.variable("y")
    >>> cnf.add_clause([x, y]); cnf.add_clause([-x, y])
    >>> cnf.clause_count, cnf.variable_count
    (2, 2)
    """

    clauses: list[Clause] = field(default_factory=list)
    variable_count: int = 0
    _names: dict[object, int] = field(default_factory=dict)

    def new_variable(self) -> int:
        """Allocate and return an anonymous fresh variable."""
        self.variable_count += 1
        return self.variable_count

    def variable(self, name: object) -> int:
        """Return the variable registered for ``name``, allocating on first use.

        ``name`` may be any hashable value (the exchange encoder uses
        ``("edge", u, a, v)`` tuples); it is used directly as the registry
        key, so lookups cost one hash instead of a ``repr`` rendering.
        """
        existing = self._names.get(name)
        if existing is not None:
            return existing
        fresh = self.new_variable()
        self._names[name] = fresh
        return fresh

    def has_name(self, name: object) -> bool:
        """Return whether ``name`` is already registered."""
        return name in self._names

    def names(self) -> dict[object, int]:
        """Return a copy of the name → variable registry."""
        return dict(self._names)

    def add_clause(self, literals: Iterable[Literal]) -> None:
        """Add a clause; tautologies are dropped, duplicates deduplicated.

        Canonicalisation happens here, at insertion time (see
        :func:`canonical_clause`), so every solver reading
        :attr:`clauses` sees canonical clauses.  Raises
        :class:`ValueError` on the literal 0 or out-of-range variables.
        """
        clause = canonical_clause(literals)
        if clause is None:
            return  # tautological clause: x ∨ ¬x
        for literal in clause:
            if abs(literal) > self.variable_count:
                raise ValueError(
                    f"literal {literal} references unallocated variable "
                    f"(count={self.variable_count})"
                )
        self.clauses.append(clause)

    def add_clause_trusted(self, clause: Clause) -> None:
        """Append an already-validated clause tuple without re-checking it.

        For encoder hot paths whose literals come straight out of
        :meth:`variable`/:meth:`new_variable` and are already deduplicated
        and tautology-free — the caller vouches for all of that.
        """
        self.clauses.append(clause)

    def add_exactly_one(self, literals: Iterable[Literal]) -> None:
        """Add clauses enforcing exactly one of ``literals`` (pairwise encoding)."""
        items = list(literals)
        self.add_clause(items)
        for i, first in enumerate(items):
            for second in items[i + 1 :]:
                self.add_clause([-first, -second])

    @property
    def clause_count(self) -> int:
        """The number of clauses."""
        return len(self.clauses)

    def is_satisfied_by(self, model: Mapping[int, bool]) -> bool:
        """Return whether ``model`` (variable → truth) satisfies every clause.

        Missing variables default to ``False``.
        """
        for clause in self.clauses:
            if not any(
                model.get(abs(literal), False) == (literal > 0) for literal in clause
            ):
                return False
        return True

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def to_dimacs(self) -> str:
        """Render the formula in DIMACS CNF format."""
        lines = [f"p cnf {self.variable_count} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines)

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse DIMACS CNF text (comments and the problem line tolerated)."""
        cnf = cls()
        declared = 0
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                declared = int(parts[2])
                continue
            literals = [int(tok) for tok in line.split() if tok != "0"]
            top = max((abs(lit) for lit in literals), default=0)
            cnf.variable_count = max(cnf.variable_count, top, declared)
            cnf.add_clause(literals)
        cnf.variable_count = max(cnf.variable_count, declared)
        return cnf
