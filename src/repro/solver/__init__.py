"""SAT substrate: CNF formulas, two solvers, and exchange encodings.

The paper's Theorem 4.1 reduces 3SAT to the existence of solutions; running
that reduction at scale — and deciding existence for the restricted fragment
at all — needs a SAT solver, which is implemented here from scratch, twice:

* :mod:`repro.solver.cnf` — CNF formulas in DIMACS-style integer literals,
  canonicalised at insertion time (:func:`~repro.solver.cnf.canonical_clause`);
* :mod:`repro.solver.cdcl` — the production solver: conflict-driven clause
  learning with two-watched-literal propagation, 1-UIP learning, EVSIDS
  branching, Luby restarts, LBD-aware deletion, and an **incremental**
  interface (``add_clause`` between solves, ``solve(assumptions=[...])``
  with unsat-core extraction);
* :mod:`repro.solver.dpll` — the chronological DPLL kept as the
  differential oracle (plus a brute-force model enumerator for tests);
* :mod:`repro.solver.generators` — random k-CNF and planted-satisfiable
  instance generators for the scaling benchmarks;
* :mod:`repro.solver.encode` — the bounded-model encoding of
  existence-of-solutions into CNF for the Theorem 4.1 fragment
  (union-of-symbols heads, word egd bodies).

Which solver the pipeline uses is selected by :func:`resolve_solver_name`:
the CLI ``--solver {cdcl,dpll}`` switch, the ``REPRO_SOLVER`` environment
variable, or the default (``cdcl``).  Both solvers answer through the same
incremental interface and must agree on every SAT/UNSAT verdict — the
property pinned by the differential test suite.
"""

import os

from repro.solver.cnf import CNF, Clause, Literal, canonical_clause
from repro.solver.cdcl import CDCLSolver, CDCLStats, solve_cnf_cdcl
from repro.solver.dpll import (
    DPLLSolver,
    IncrementalDPLL,
    enumerate_models,
    solve_cnf,
)
from repro.solver.generators import random_kcnf, planted_kcnf
from repro.solver.encode import encode_bounded_existence, decode_edge_model

SOLVER_NAMES = ("cdcl", "dpll")
_SOLVER_ENV = "REPRO_SOLVER"


def resolve_solver_name(name: str | None = None) -> str:
    """Resolve the solver choice: explicit arg > ``REPRO_SOLVER`` env > cdcl.

    Raises :class:`ValueError` on an unknown name so a typo in the
    environment fails loudly instead of silently picking a default.
    """
    chosen = name if name is not None else os.environ.get(_SOLVER_ENV, "cdcl")
    chosen = chosen.strip().lower()
    if chosen not in SOLVER_NAMES:
        raise ValueError(
            f"unknown solver {chosen!r}; expected one of {SOLVER_NAMES}"
        )
    return chosen


def make_solver(cnf: CNF | None = None, name: str | None = None):
    """Build an incremental solver over ``cnf`` (which is not mutated).

    Returns a :class:`CDCLSolver` or an :class:`IncrementalDPLL` — both
    expose ``add_clause(literals)``, ``solve(assumptions=())``, ``core``,
    ``new_variable()``, ``ensure_variables(n)``, ``ok``, and ``stats``.
    """
    resolved = resolve_solver_name(name)
    if resolved == "dpll":
        return IncrementalDPLL(cnf)
    return CDCLSolver(cnf)


__all__ = [
    "CNF",
    "Clause",
    "Literal",
    "canonical_clause",
    "CDCLSolver",
    "CDCLStats",
    "DPLLSolver",
    "IncrementalDPLL",
    "SOLVER_NAMES",
    "make_solver",
    "resolve_solver_name",
    "solve_cnf",
    "solve_cnf_cdcl",
    "enumerate_models",
    "random_kcnf",
    "planted_kcnf",
    "encode_bounded_existence",
    "decode_edge_model",
]
