"""SAT substrate: CNF formulas, a DPLL solver, and exchange encodings.

The paper's Theorem 4.1 reduces 3SAT to the existence of solutions; running
that reduction at scale — and deciding existence for the restricted fragment
at all — needs a SAT solver, which is implemented here from scratch:

* :mod:`repro.solver.cnf` — CNF formulas in DIMACS-style integer literals;
* :mod:`repro.solver.dpll` — a DPLL solver with unit propagation, pure
  literals, and a most-occurrences branching heuristic, plus a brute-force
  model enumerator used as an oracle in tests;
* :mod:`repro.solver.generators` — random k-CNF and planted-satisfiable
  instance generators for the scaling benchmarks;
* :mod:`repro.solver.encode` — the bounded-model encoding of
  existence-of-solutions into CNF for the Theorem 4.1 fragment
  (union-of-symbols heads, word egd bodies).
"""

from repro.solver.cnf import CNF, Clause, Literal
from repro.solver.dpll import DPLLSolver, solve_cnf, enumerate_models
from repro.solver.generators import random_kcnf, planted_kcnf
from repro.solver.encode import encode_bounded_existence, decode_edge_model

__all__ = [
    "CNF",
    "Clause",
    "Literal",
    "DPLLSolver",
    "solve_cnf",
    "enumerate_models",
    "random_kcnf",
    "planted_kcnf",
    "encode_bounded_existence",
    "decode_edge_model",
]
