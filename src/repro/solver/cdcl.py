"""A CDCL SAT solver with incremental assumption-based solving.

Conflict-driven clause learning in the MiniSat lineage, sized for the
formulas the exchange pipeline produces (hundreds to a few thousand
variables), implemented from scratch:

* **two-watched-literal propagation** — each clause watches two of its
  literals; only clauses watching a newly-falsified literal are visited, so
  propagation never rescans (or copies) the clause database the way the
  chronological DPLL in :mod:`repro.solver.dpll` does;
* **1-UIP clause learning** — conflicts are analysed on the trail back to
  the first unique implication point, with local (reason-subsumption)
  minimisation of the learnt clause;
* **EVSIDS branching** — exponentially-decayed variable activities with a
  lazy max-heap (ties broken by variable index for determinism) and phase
  saving (initial phase ``False``, matching the DPLL model completion);
* **Luby restarts** — the 1, 1, 2, 1, 1, 2, 4, … sequence times a base
  conflict interval;
* **LBD-aware learnt-clause deletion** — learnt clauses carry their literal
  block distance; when the learnt database outgrows its budget the worst
  half (highest LBD, then lowest activity) is dropped, keeping binary,
  low-LBD, and currently-locked (reason) clauses.

The solver is **incremental**: :meth:`CDCLSolver.add_clause` may be called
between :meth:`CDCLSolver.solve` calls, and ``solve(assumptions=[...])``
decides satisfiability under a temporary conjunction of literals without
destroying anything learnt.  Everything the solver learns is implied by the
clause database alone (assumptions enter conflict analysis as decisions,
never as resolvents), so learnt clauses remain valid across both new
clauses and changed assumptions — the property the certain-answer pipeline
exploits to share one solver across a whole probe enumeration.  After an
UNSAT ``solve`` under assumptions, :attr:`CDCLSolver.core` holds a *final
conflict* — a subset of the assumptions that already forces
unsatisfiability — and :meth:`CDCLSolver.minimized_core` shrinks it by
incremental re-solving until every member is needed.

Every SAT verdict is self-checked: the model is asserted against the full
problem-clause database before it is returned.  The solver is fully
deterministic — no randomness anywhere, all ties broken by index.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from heapq import heappop, heappush
from typing import Iterable, Sequence

from repro.solver.cnf import CNF, Clause, Literal, canonical_clause

Model = dict[int, bool]

_RESTART_BASE = 100
"""Conflicts in the first Luby restart interval."""

_VAR_DECAY = 1.0 / 0.95
_CLA_DECAY = 1.0 / 0.999
_RESCALE_LIMIT = 1e100
_RESCALE_FACTOR = 1e-100


class _Learnt(list):
    """A learnt clause: a literal list carrying its LBD and activity.

    Problem clauses are plain Python lists — the propagation loop then
    indexes watched literals without an attribute dereference, and bulk
    ingestion allocates nothing beyond the list copy.  Only learnt clauses
    need metadata, so only they pay for a subclass instance.
    In either representation ``clause[0:2]`` are the watched literals.
    """

    __slots__ = ("lbd", "act")

    def __init__(self, lits: list[int], lbd: int = 0):
        super().__init__(lits)
        self.lbd = lbd
        self.act = 0.0


@dataclass
class CDCLStats:
    """Counters describing the lifetime of one solver instance."""

    solves: int = 0
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned: int = 0
    deleted: int = 0

    def as_dict(self) -> dict[str, int]:
        """Every counter as a plain dict (telemetry folding, reporting).

        >>> CDCLStats(conflicts=4).as_dict()["conflicts"]
        4
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"solves={self.solves} decisions={self.decisions} "
            f"propagations={self.propagations} conflicts={self.conflicts} "
            f"restarts={self.restarts} learned={self.learned} "
            f"deleted={self.deleted}"
        )


def _luby(index: int) -> int:
    """The ``index``-th term (0-based) of the Luby sequence 1,1,2,1,1,2,4,…"""
    size, seq = 1, 0
    while size < index + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        seq -= 1
        index %= size
    return 1 << seq


class CDCLSolver:
    """An incremental conflict-driven SAT solver.

    >>> cnf = CNF()
    >>> x, y = cnf.new_variable(), cnf.new_variable()
    >>> cnf.add_clause([x, y]); cnf.add_clause([-x]); cnf.add_clause([-y, x])
    >>> CDCLSolver(cnf).solve() is None
    True

    Incremental use — clauses between solves, assumptions per solve:

    >>> solver = CDCLSolver()
    >>> a, b = solver.new_variable(), solver.new_variable()
    >>> solver.add_clause([a, b])
    True
    >>> solver.solve(assumptions=[-a])[b]
    True
    >>> solver.add_clause([-b])
    True
    >>> solver.solve(assumptions=[-a]) is None
    True
    >>> solver.core
    (-1,)
    """

    def __init__(self, cnf: CNF | None = None):
        self.stats = CDCLStats()
        self.ok = True
        self.nvars = 0
        # Per-variable arrays, 1-indexed (slot 0 unused).
        self._assign: list[int] = [0]  # 0 unassigned / +1 true / -1 false
        self._level: list[int] = [0]
        self._reason: list[list | None] = [None]
        self._polarity: list[bool] = [False]
        self._activity: list[float] = [0.0]
        self._seen = bytearray(1)
        self._watches: dict[int, list[list]] = {}
        self._clauses: list[list] = []
        self._learnts: list[_Learnt] = []
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._heap: list[tuple[float, int]] = []
        self._var_inc = 1.0
        self._cla_inc = 1.0
        self.core: tuple[int, ...] = ()
        """After an UNSAT :meth:`solve` with assumptions: a subset of the
        assumptions that already forces UNSAT (empty when the clause
        database itself is unsatisfiable)."""
        if cnf is not None:
            self.ensure_variables(cnf.variable_count)
            self._ingest(cnf.clauses)

    def _ingest(self, clauses: Iterable[Clause]) -> None:
        """Bulk-load already-canonical clauses (one deferred propagation).

        :class:`~repro.solver.cnf.CNF` canonicalises at insertion time, so
        clauses coming out of it need no re-canonicalisation; units are
        queued and propagated in a single fixpoint pass at the end instead
        of one pass per clause.
        """
        watches = self._watches
        units: list[int] = []
        long_clauses: list[Clause] = []
        for clause in clauses:
            if len(clause) > 1:
                long_clauses.append(clause)
            elif clause:
                units.append(clause[0])
            else:  # the empty clause
                self.ok = False
                return
        wrapped = [list(clause) for clause in long_clauses]
        self._clauses.extend(wrapped)
        for lits in wrapped:
            watches[lits[0]].append(lits)
            watches[lits[1]].append(lits)
        for lit in units:
            if not self._enqueue(lit, None):
                self.ok = False
                return
        if self._propagate() is not None:
            self.ok = False

    # ------------------------------------------------------------------ #
    # Variables and clauses
    # ------------------------------------------------------------------ #

    def new_variable(self) -> int:
        """Allocate and return a fresh variable."""
        self.ensure_variables(self.nvars + 1)
        return self.nvars

    def ensure_variables(self, count: int) -> None:
        """Grow the variable universe to at least ``count`` variables."""
        while self.nvars < count:
            self.nvars += 1
            variable = self.nvars
            self._assign.append(0)
            self._level.append(0)
            self._reason.append(None)
            self._polarity.append(False)
            self._activity.append(0.0)
            self._seen.append(0)
            self._watches[variable] = []
            self._watches[-variable] = []
            heappush(self._heap, (0.0, variable))

    def add_clause(self, literals: Iterable[Literal]) -> bool:
        """Add a clause; may be called between solves.

        Returns ``False`` when the clause database became unsatisfiable at
        the root level (the solver then answers UNSAT forever), ``True``
        otherwise.  Tautologies are dropped, duplicate literals merged, and
        literals already false at the root level removed.
        """
        if not self.ok:
            return False
        canonical = canonical_clause(literals)
        if canonical is None:  # tautology
            return True
        if self._trail_lim:
            self._cancel_until(0)
        top = max((l if l > 0 else -l for l in canonical), default=0)
        if top > self.nvars:
            self.ensure_variables(top)
        assign = self._assign
        lits: list[int] = []
        for lit in canonical:
            value = assign[lit] if lit > 0 else -assign[-lit]
            if value == 1:  # already true at the root: clause is redundant
                return True
            if value == -1:  # false at the root: literal can never help
                continue
            lits.append(lit)
        if not lits:
            self.ok = False
            return False
        if len(lits) == 1:
            if not self._enqueue(lits[0], None) or self._propagate() is not None:
                self.ok = False
                return False
            return True
        self._clauses.append(lits)
        self._watches[lits[0]].append(lits)
        self._watches[lits[1]].append(lits)
        return True

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #

    def solve(self, assumptions: Sequence[Literal] = ()) -> Model | None:
        """Decide satisfiability under ``assumptions``; return a model or ``None``.

        The model assigns every variable.  On UNSAT, :attr:`core` holds the
        final conflict over the assumptions.  The solver remains usable —
        and keeps everything it has learnt — afterwards.
        """
        self.stats.solves += 1
        self.core = ()
        if not self.ok:
            return None
        assumption_list = [int(a) for a in assumptions]
        for a in assumption_list:
            if a == 0:
                raise ValueError("0 is not a literal")
            self.ensure_variables(a if a > 0 else -a)
        self._cancel_until(0)
        if self._propagate() is not None:
            self.ok = False
            return None
        model = self._search(assumption_list)
        self._cancel_until(0)
        return model

    def minimized_core(self) -> tuple[int, ...]:
        """Deletion-minimize :attr:`core` by incremental re-solving.

        Repeatedly drops one assumption and re-solves; the result is a core
        in which *every* member is needed (dropping any single one makes
        the remainder satisfiable).  Leaves :attr:`core` equal to the
        returned tuple.
        """
        core = list(self.core)
        i = 0
        while i < len(core):
            trial = core[:i] + core[i + 1 :]
            if self.solve(trial) is None:
                core = list(self.core)  # shrank by at least one; restart scan
                i = 0
            else:
                i += 1
        if self.solve(core) is not None:  # pragma: no cover - soundness guard
            raise AssertionError("minimized core is not a core")
        return tuple(core)

    # ------------------------------------------------------------------ #
    # The CDCL loop
    # ------------------------------------------------------------------ #

    def _search(self, assumptions: list[int]) -> Model | None:
        assign = self._assign
        restart_index = 0
        conflicts_left = _RESTART_BASE * _luby(restart_index)
        max_learnts = max(256, 2 * len(self._clauses))
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_left -= 1
                if not self._trail_lim:  # conflict at the root level
                    self.ok = False
                    return None
                learnt, backtrack_level, lbd = self._analyze(conflict)
                self._cancel_until(backtrack_level)
                self._record(learnt, lbd)
                self._decay_activities()
                continue
            if conflicts_left <= 0 and len(self._trail_lim) > len(assumptions):
                # Luby restart (never below the assumption levels).
                self.stats.restarts += 1
                restart_index += 1
                conflicts_left = _RESTART_BASE * _luby(restart_index)
                self._cancel_until(len(assumptions))
                continue
            if len(self._learnts) >= max_learnts:
                self._reduce_learnts()
                max_learnts = int(max_learnts * 1.3)
            level = len(self._trail_lim)
            if level < len(assumptions):
                lit = assumptions[level]
                value = assign[lit] if lit > 0 else -assign[-lit]
                if value == 1:  # already satisfied: open an empty level
                    self._trail_lim.append(len(self._trail))
                    continue
                if value == -1:  # assumption refuted: extract the core
                    self.core = self._analyze_final(lit)
                    return None
                self._trail_lim.append(len(self._trail))
                self._uncheck_assign(lit, None)
                continue
            lit = self._pick_branch()
            if lit == 0:  # every variable assigned: a model
                model = {v: assign[v] > 0 for v in range(1, self.nvars + 1)}
                self._check_model(model)
                return model
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._uncheck_assign(lit, None)

    def _propagate(self) -> list | None:
        """Two-watched-literal unit propagation; return a conflict or ``None``."""
        assign = self._assign
        watches = self._watches
        trail = self._trail
        stats = self.stats
        while self._qhead < len(trail):
            p = trail[self._qhead]
            self._qhead += 1
            stats.propagations += 1
            false_lit = -p
            ws = watches[false_lit]
            i = j = 0
            n = len(ws)
            conflict: list | None = None
            while i < n:
                lits = ws[i]
                i += 1
                if lits[0] == false_lit:
                    lits[0] = lits[1]
                    lits[1] = false_lit
                first = lits[0]
                value = assign[first] if first > 0 else -assign[-first]
                if value == 1:  # clause already satisfied
                    ws[j] = lits
                    j += 1
                    continue
                for k in range(2, len(lits)):
                    other = lits[k]
                    if (assign[other] if other > 0 else -assign[-other]) != -1:
                        lits[1] = other
                        lits[k] = false_lit
                        watches[other].append(lits)
                        break
                else:
                    ws[j] = lits
                    j += 1
                    if value == -1:  # all literals false: conflict
                        conflict = lits
                        self._qhead = len(trail)
                        while i < n:
                            ws[j] = ws[i]
                            j += 1
                            i += 1
                        break
                    self._uncheck_assign(first, lits)
            del ws[j:]
            if conflict is not None:
                return conflict
        return None

    def _analyze(self, conflict: list) -> tuple[list[int], int, int]:
        """1-UIP conflict analysis: return (learnt clause, backjump level, LBD)."""
        seen = self._seen
        level = self._level
        reason = self._reason
        trail = self._trail
        current = len(self._trail_lim)
        learnt: list[int] = [0]
        to_clear: list[int] = []
        counter = 0
        p = 0
        index = len(trail) - 1
        while True:
            if type(conflict) is _Learnt:
                self._bump_clause(conflict)
            for q in conflict if p == 0 else conflict[1:]:
                v = q if q > 0 else -q
                if not seen[v] and level[v] > 0:
                    seen[v] = 1
                    to_clear.append(v)
                    self._bump_var(v)
                    if level[v] >= current:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[trail[index] if trail[index] > 0 else -trail[index]]:
                index -= 1
            p = trail[index]
            index -= 1
            v = p if p > 0 else -p
            seen[v] = 0
            counter -= 1
            if counter == 0:
                break
            conflict = reason[v]  # type: ignore[assignment]  # never None below the UIP
        learnt[0] = -p
        # Local minimisation: drop literals whose reason is fully seen.
        kept = [learnt[0]]
        for q in learnt[1:]:
            r = reason[q if q > 0 else -q]
            if r is None:
                kept.append(q)
                continue
            for lit in r:
                lv = lit if lit > 0 else -lit
                if not seen[lv] and level[lv] > 0:
                    kept.append(q)
                    break
        for v in to_clear:
            seen[v] = 0
        if len(kept) > 1:
            # Move a maximal-level literal into the first watch position.
            best = 1
            for k in range(2, len(kept)):
                if level[kept[k] if kept[k] > 0 else -kept[k]] > (
                    level[kept[best] if kept[best] > 0 else -kept[best]]
                ):
                    best = k
            kept[1], kept[best] = kept[best], kept[1]
            backtrack = level[kept[1] if kept[1] > 0 else -kept[1]]
        else:
            backtrack = 0
        lbd = len({level[q if q > 0 else -q] for q in kept})
        return kept, backtrack, lbd

    def _record(self, learnt: list[int], lbd: int) -> None:
        """Attach the learnt clause and assert its first literal."""
        self.stats.learned += 1
        if len(learnt) == 1:
            self._uncheck_assign(learnt[0], None)
            return
        clause = _Learnt(learnt, lbd)
        self._learnts.append(clause)
        self._watches[learnt[0]].append(clause)
        self._watches[learnt[1]].append(clause)
        self._bump_clause(clause)
        self._uncheck_assign(learnt[0], clause)

    def _analyze_final(self, failed: int) -> tuple[int, ...]:
        """Walk the trail to collect the assumptions implying ``¬failed``."""
        core = {failed}
        if not self._trail_lim:
            return tuple(core)
        seen = self._seen
        level = self._level
        reason = self._reason
        to_clear = [failed if failed > 0 else -failed]
        seen[to_clear[0]] = 1
        for i in range(len(self._trail) - 1, self._trail_lim[0] - 1, -1):
            lit = self._trail[i]
            v = lit if lit > 0 else -lit
            if not seen[v]:
                continue
            r = reason[v]
            if r is None:  # a decision here is an assumption
                core.add(lit)
            else:
                for q in r:
                    qv = q if q > 0 else -q
                    if not seen[qv] and level[qv] > 0:
                        seen[qv] = 1
                        to_clear.append(qv)
            seen[v] = 0
        for v in to_clear:
            seen[v] = 0
        return tuple(sorted(core, key=lambda l: (abs(l), l)))

    # ------------------------------------------------------------------ #
    # Assignment and trail
    # ------------------------------------------------------------------ #

    def _uncheck_assign(self, lit: int, reason: list | None) -> None:
        v = lit if lit > 0 else -lit
        self._assign[v] = 1 if lit > 0 else -1
        self._level[v] = len(self._trail_lim)
        self._reason[v] = reason
        self._polarity[v] = lit > 0
        self._trail.append(lit)

    def _enqueue(self, lit: int, reason: list | None) -> bool:
        v = lit if lit > 0 else -lit
        value = self._assign[v]
        if value != 0:
            return (value == 1) == (lit > 0)
        self._uncheck_assign(lit, reason)
        return True

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        assign = self._assign
        reason = self._reason
        activity = self._activity
        heap = self._heap
        trail = self._trail
        for i in range(len(trail) - 1, bound - 1, -1):
            lit = trail[i]
            v = lit if lit > 0 else -lit
            assign[v] = 0
            reason[v] = None
            heappush(heap, (-activity[v], v))
        del trail[bound:]
        del self._trail_lim[level:]
        self._qhead = bound

    def _pick_branch(self) -> int:
        """Return the decision literal with maximal activity, or 0 when done."""
        assign = self._assign
        activity = self._activity
        heap = self._heap
        while heap:
            act, v = heappop(heap)
            if assign[v] == 0 and -act == activity[v]:
                return v if self._polarity[v] else -v
        for v in range(1, self.nvars + 1):  # heap starved by staleness
            if assign[v] == 0:
                return v if self._polarity[v] else -v
        return 0

    # ------------------------------------------------------------------ #
    # Heuristic bookkeeping
    # ------------------------------------------------------------------ #

    def _bump_var(self, v: int) -> None:
        activity = self._activity
        activity[v] += self._var_inc
        if activity[v] > _RESCALE_LIMIT:
            for u in range(1, self.nvars + 1):
                activity[u] *= _RESCALE_FACTOR
            self._var_inc *= _RESCALE_FACTOR
            # Old heap entries are stale after a rescale; re-seed.
            self._heap = [
                (-activity[u], u) for u in range(1, self.nvars + 1)
                if self._assign[u] == 0
            ]
            self._heap.sort()
            return
        if self._assign[v] == 0:
            heappush(self._heap, (-activity[v], v))

    def _bump_clause(self, clause: _Learnt) -> None:
        clause.act += self._cla_inc
        if clause.act > 1e20:
            for c in self._learnts:
                c.act *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_activities(self) -> None:
        self._var_inc *= _VAR_DECAY
        self._cla_inc *= _CLA_DECAY

    def _reduce_learnts(self) -> None:
        """Drop the worst half of the learnt clauses (LBD, then activity)."""
        reason = self._reason
        locked = {
            id(reason[v])
            for v in range(1, self.nvars + 1)
            if reason[v] is not None
        }
        ranked = sorted(
            self._learnts, key=lambda c: (-c.lbd, c.act)
        )  # worst first
        budget = len(ranked) // 2
        removed: set[int] = set()
        for clause in ranked:
            if len(removed) >= budget:
                break
            if (
                len(clause) == 2
                or clause.lbd <= 2
                or id(clause) in locked
            ):
                continue
            removed.add(id(clause))
            # Detach by identity: clauses are lists, and list.remove would
            # match by value — possibly unhooking a different, equal clause.
            for watched in (clause[0], clause[1]):
                ws = self._watches[watched]
                for idx in range(len(ws)):
                    if ws[idx] is clause:
                        del ws[idx]
                        break
        if removed:
            self.stats.deleted += len(removed)
            self._learnts = [c for c in self._learnts if id(c) not in removed]

    # ------------------------------------------------------------------ #
    # Self-check
    # ------------------------------------------------------------------ #

    def _check_model(self, model: Model) -> None:
        """Assert the model satisfies every problem clause (cheap, one pass)."""
        for clause in self._clauses:
            for lit in clause:
                if model[lit if lit > 0 else -lit] == (lit > 0):
                    break
            else:  # pragma: no cover - would be a solver bug
                raise AssertionError(f"model violates clause {clause}")


def solve_cnf_cdcl(cnf: CNF) -> Model | None:
    """One-shot convenience wrapper around :class:`CDCLSolver`."""
    return CDCLSolver(cnf).solve()
