"""Random CNF generators for the scaling benchmarks.

The paper supplies no workloads (it is a theory paper), so the benchmark
harness drives the Theorem 4.1 / Corollary 4.2 / Proposition 4.3 reductions
with synthetic 3CNF families:

* :func:`random_kcnf` — the uniform fixed-clause-length model: each clause
  picks ``k`` distinct variables and random polarities.  Around the familiar
  clause-to-variable ratio ≈ 4.27 (for k = 3) instances are hard and roughly
  half are unsatisfiable, which exercises both sides of the reduction's iff;
* :func:`planted_kcnf` — satisfiable-by-construction instances: a hidden
  assignment is drawn first and every clause is required to contain at least
  one literal it satisfies.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.solver.cnf import CNF


def random_kcnf(
    variables: int,
    clauses: int,
    k: int = 3,
    rng: random.Random | None = None,
) -> CNF:
    """Return a uniform random k-CNF with ``variables`` vars, ``clauses`` clauses.

    >>> cnf = random_kcnf(10, 42, rng=random.Random(0))
    >>> cnf.variable_count, cnf.clause_count
    (10, 42)
    """
    if k > variables:
        raise ValueError(f"k={k} exceeds the number of variables {variables}")
    generator = rng if rng is not None else random.Random()
    cnf = CNF()
    cnf.variable_count = variables
    while cnf.clause_count < clauses:
        chosen = generator.sample(range(1, variables + 1), k)
        clause = [v if generator.random() < 0.5 else -v for v in chosen]
        before = cnf.clause_count
        cnf.add_clause(clause)
        if cnf.clause_count == before:  # tautology was dropped; retry
            continue
    return cnf


def planted_kcnf(
    variables: int,
    clauses: int,
    k: int = 3,
    rng: random.Random | None = None,
) -> tuple[CNF, dict[int, bool]]:
    """Return a satisfiable k-CNF together with its planted model."""
    if k > variables:
        raise ValueError(f"k={k} exceeds the number of variables {variables}")
    generator = rng if rng is not None else random.Random()
    planted = {v: generator.random() < 0.5 for v in range(1, variables + 1)}
    cnf = CNF()
    cnf.variable_count = variables
    while cnf.clause_count < clauses:
        chosen = generator.sample(range(1, variables + 1), k)
        clause = [v if generator.random() < 0.5 else -v for v in chosen]
        if not any(planted[abs(lit)] == (lit > 0) for lit in clause):
            # Flip one literal so the planted assignment satisfies the clause.
            index = generator.randrange(k)
            clause[index] = -clause[index]
        before = cnf.clause_count
        cnf.add_clause(clause)
        if cnf.clause_count == before:
            continue
    return cnf, planted


def cnf_to_clause_list(cnf: CNF) -> list[tuple[int, ...]]:
    """Return the clauses as plain tuples (convenience for the reductions)."""
    return [tuple(clause) for clause in cnf.clauses]


def clause_list_to_cnf(variables: int, clauses: Sequence[Sequence[int]]) -> CNF:
    """Build a CNF from explicit clause lists (convenience for tests)."""
    cnf = CNF()
    cnf.variable_count = variables
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf
