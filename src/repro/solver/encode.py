"""Bounded-model SAT encoding of existence-of-solutions.

Applicable fragment (``SettingFragment.sat_encodable``): s-t tgd heads whose
atoms are unions of forward symbols (``a`` / ``a + b + …``, Theorem 4.1
restriction (iii)) and target constraints that are egds whose body atoms are
unions of words over forward symbols (covering the SORE(·) restriction (iv)).

**Completeness of the bounded search.**  Fix the node set ``N`` = constants
of the chased pattern ∪ its nulls (one null per existential per trigger).
If *any* solution G exists, pick for every trigger a head-witness
assignment in G and let G′ be the subgraph of G induced by the image of N
under those choices (constants map to themselves).  Head atoms are single
edges between nodes of that image, so G′ still satisfies every s-t tgd;
and egds are preserved under induced subgraphs (NREs are monotone, so a
violating match in G′ is a violating match in G).  Hence G′ ⊆ N × Σ × N is
a solution: searching graphs over ``N`` is complete for this fragment.
That search is exactly a SAT instance over one Boolean per possible edge.

Clauses:

* for each s-t tgd trigger without existentials: one clause per head atom —
  the disjunction of its symbol edges;
* with existentials: one auxiliary selector per assignment of existentials
  to nodes; selectors imply their atoms' clauses and at least one selector
  must hold;
* for each egd (after distributing unions into word combinations), each
  assignment of body variables with distinct images for the equated pair,
  and each placement of word-path intermediates: a blocking clause negating
  the conjunction of edges along all paths.
"""

from __future__ import annotations

import itertools
from typing import Callable, Hashable, Sequence

from repro.core.setting import DataExchangeSetting
from repro.errors import NotSupportedError
from repro.graph.database import GraphDatabase
from repro.graph.nre import NRE, Concat, Label, Union
from repro.mappings.egd import TargetEgd
from repro.relational.instance import RelationalInstance
from repro.relational.query import Variable, is_variable
from repro.solver.cnf import CNF

Node = Hashable


def _symbols_of_union(expr: NRE) -> list[str]:
    """Flatten ``a + b + …`` into its symbol list; raise outside the fragment."""
    if isinstance(expr, Label):
        return [expr.name]
    if isinstance(expr, Union):
        return _symbols_of_union(expr.left) + _symbols_of_union(expr.right)
    raise NotSupportedError(f"head NRE {expr} is not a union of symbols")


def _word_of(expr: NRE) -> list[str]:
    """Flatten ``a₁ · … · aₙ`` into its label sequence; raise otherwise."""
    if isinstance(expr, Label):
        return [expr.name]
    if isinstance(expr, Concat):
        return _word_of(expr.left) + _word_of(expr.right)
    raise NotSupportedError(f"egd NRE {expr} is not a word")


def _words_of_atom(expr: NRE) -> list[list[str]]:
    """Expand top-level unions into the list of alternative words."""
    if isinstance(expr, Union):
        return _words_of_atom(expr.left) + _words_of_atom(expr.right)
    return [_word_of(expr)]


def encode_bounded_existence(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    nodes: Sequence[Node],
) -> CNF:
    """Encode "a solution over node set ``nodes`` exists" as CNF.

    Edge variables are registered under the names ``("edge", u, a, v)``;
    :func:`decode_edge_model` reads them back.  Raises
    :class:`~repro.errors.NotSupportedError` outside the fragment.
    """
    if setting.sameas_constraints() or setting.general_target_tgds():
        raise NotSupportedError(
            "the SAT encoding covers egd-only settings (Theorem 4.1 fragment)"
        )
    node_list = list(nodes)
    cnf = CNF()
    edge_var: Callable[[Node, str, Node], int] = lambda u, a, v: cnf.variable(
        ("edge", u, a, v)
    )
    # Pre-register all edge variables so decode sees a stable universe.
    for u in node_list:
        for a in sorted(setting.alphabet):
            for v in node_list:
                edge_var(u, a, v)

    _encode_st_tgds(setting, instance, node_list, cnf, edge_var)
    for egd in setting.egds():
        _encode_egd(egd, node_list, cnf, edge_var)
    return cnf


def _encode_st_tgds(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    nodes: list[Node],
    cnf: CNF,
    edge_var: Callable[[Node, str, Node], int],
) -> None:
    for tgd in setting.st_tgds:
        atom_symbols = [
            (atom.subject, _symbols_of_union(atom.nre), atom.object)
            for atom in tgd.head.atoms
        ]
        for match in tgd.body_matches(instance):
            base: dict[Variable, Node] = {v: match[v] for v in tgd.frontier}
            if not tgd.existentials:
                for subject, symbols, obj in atom_symbols:
                    u = base[subject] if is_variable(subject) else subject
                    v = base[obj] if is_variable(obj) else obj
                    cnf.add_clause([edge_var(u, a, v) for a in symbols])
                continue
            selectors: list[int] = []
            for values in itertools.product(nodes, repeat=len(tgd.existentials)):
                selector = cnf.new_variable()
                selectors.append(selector)
                assignment = dict(base)
                assignment.update(zip(tgd.existentials, values))
                for subject, symbols, obj in atom_symbols:
                    u = assignment[subject] if is_variable(subject) else subject
                    v = assignment[obj] if is_variable(obj) else obj
                    cnf.add_clause(
                        [-selector] + [edge_var(u, a, v) for a in symbols]
                    )
            cnf.add_clause(selectors)


def _encode_egd(
    egd: TargetEgd,
    nodes: list[Node],
    cnf: CNF,
    edge_var: Callable[[Node, str, Node], int],
) -> None:
    variables = list(egd.body.variables())
    atom_alternatives = [
        (atom.subject, _words_of_atom(atom.nre), atom.object)
        for atom in egd.body.atoms
    ]
    for values in itertools.product(nodes, repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if assignment[egd.left] == assignment[egd.right]:
            continue
        _block_violation(atom_alternatives, assignment, nodes, cnf, edge_var)


def _block_violation(
    atom_alternatives: list[tuple[object, list[list[str]], object]],
    assignment: dict[Variable, Node],
    nodes: list[Node],
    cnf: CNF,
    edge_var: Callable[[Node, str, Node], int],
) -> None:
    """Add clauses forbidding every simultaneous realisation of the atoms."""
    per_atom_paths: list[list[list[int]]] = []
    for subject, alternatives, obj in atom_alternatives:
        u = assignment[subject] if is_variable(subject) else subject
        v = assignment[obj] if is_variable(obj) else obj
        paths: list[list[int]] = []
        for word in alternatives:
            inner = len(word) - 1
            for mids in itertools.product(nodes, repeat=inner):
                waypoints = [u, *mids, v]
                paths.append(
                    [
                        edge_var(waypoints[i], word[i], waypoints[i + 1])
                        for i in range(len(word))
                    ]
                )
        per_atom_paths.append(paths)
    for combination in itertools.product(*per_atom_paths):
        literals = sorted({lit for path in combination for lit in path})
        cnf.add_clause([-lit for lit in literals])


def decode_edge_model(
    cnf: CNF,
    model: dict[int, bool],
    alphabet: Sequence[str] | frozenset[str],
    nodes: Sequence[Node],
) -> GraphDatabase:
    """Turn a model of an existence encoding back into a graph.

    Edge variables are looked up by their registered names over the given
    ``nodes`` × ``alphabet`` universe (no repr parsing — node ids may be
    arbitrary objects, including labeled nulls).  Every node of the
    universe is added, so isolated nodes survive into the witness.
    """
    graph = GraphDatabase(alphabet=set(alphabet))
    for node in nodes:
        graph.add_node(node)
    for u in nodes:
        for a in sorted(alphabet):
            for v in nodes:
                name = ("edge", u, a, v)
                if not cnf.has_name(name):
                    continue
                if model.get(cnf.variable(name), False):
                    graph.add_edge(u, a, v)
    return graph
