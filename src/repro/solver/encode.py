"""Bounded-model SAT encoding of existence-of-solutions.

Applicable fragment (``SettingFragment.sat_encodable``): s-t tgd heads whose
atoms are unions of forward symbols (``a`` / ``a + b + …``, Theorem 4.1
restriction (iii)) and target constraints that are egds whose body atoms are
unions of words over forward symbols (covering the SORE(·) restriction (iv)).

**Completeness of the bounded search.**  Fix the node set ``N`` = constants
of the chased pattern ∪ its nulls (one null per existential per trigger).
If *any* solution G exists, pick for every trigger a head-witness
assignment in G and let G′ be the subgraph of G induced by the image of N
under those choices (constants map to themselves).  Head atoms are single
edges between nodes of that image, so G′ still satisfies every s-t tgd;
and egds are preserved under induced subgraphs (NREs are monotone, so a
violating match in G′ is a violating match in G).  Hence G′ ⊆ N × Σ × N is
a solution: searching graphs over ``N`` is complete for this fragment.
That search is exactly a SAT instance over one Boolean per possible edge.

Clauses:

* for each s-t tgd trigger without existentials: one clause per head atom —
  the disjunction of its symbol edges;
* with existentials: one auxiliary selector per assignment of existentials
  to nodes; selectors imply their atoms' clauses and at least one selector
  must hold;
* for each egd (after distributing unions into word combinations), each
  assignment of body variables with distinct images for the equated pair,
  and each placement of word-path intermediates: a blocking clause negating
  the conjunction of edges along all paths.
"""

from __future__ import annotations

import functools
import itertools
from typing import Callable, Hashable, Sequence

from repro.core.setting import DataExchangeSetting
from repro.errors import NotSupportedError
from repro.graph.database import GraphDatabase
from repro.graph.nre import NRE, Concat, Label, Union
from repro.mappings.egd import TargetEgd
from repro.relational.instance import RelationalInstance
from repro.relational.query import Variable, is_variable
from repro.solver.cnf import CNF, Clause

Node = Hashable


@functools.lru_cache(maxsize=4096)
def _symbols_of_union(expr: NRE) -> list[str]:
    """Flatten ``a + b + …`` into its symbol list; raise outside the fragment.

    Memoised on the (frozen, hashable) NRE — reduction families reuse the
    same head/body shapes across hundreds of dependencies.  Callers must
    not mutate the returned list.
    """
    if isinstance(expr, Label):
        return [expr.name]
    if isinstance(expr, Union):
        return _symbols_of_union(expr.left) + _symbols_of_union(expr.right)
    raise NotSupportedError(f"head NRE {expr} is not a union of symbols")


def _word_of(expr: NRE) -> list[str]:
    """Flatten ``a₁ · … · aₙ`` into its label sequence; raise otherwise."""
    if isinstance(expr, Label):
        return [expr.name]
    if isinstance(expr, Concat):
        return _word_of(expr.left) + _word_of(expr.right)
    raise NotSupportedError(f"egd NRE {expr} is not a word")


@functools.lru_cache(maxsize=4096)
def _words_of_atom(expr: NRE) -> list[list[str]]:
    """Expand top-level unions into the list of alternative words (memoised)."""
    if isinstance(expr, Union):
        return _words_of_atom(expr.left) + _words_of_atom(expr.right)
    return [_word_of(expr)]


def encode_bounded_existence(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    nodes: Sequence[Node],
) -> CNF:
    """Encode "a solution over node set ``nodes`` exists" as CNF.

    Edge variables are registered under the names ``("edge", u, a, v)``;
    :func:`decode_edge_model` reads them back.  Raises
    :class:`~repro.errors.NotSupportedError` outside the fragment.
    """
    if setting.sameas_constraints() or setting.general_target_tgds():
        raise NotSupportedError(
            "the SAT encoding covers egd-only settings (Theorem 4.1 fragment)"
        )
    node_list = list(nodes)
    cnf = CNF()
    # Pre-register all edge variables so decode sees a stable universe; the
    # local (u, a, v) → var dict then answers every later lookup with one
    # dict hit instead of going through the CNF name registry.  Because the
    # registration order is fixed by (node list, sorted alphabet), variable
    # ids are a pure function of that universe — the invariant the path
    # cache (:data:`_PATH_CACHE`) relies on.
    alphabet = tuple(sorted(setting.alphabet))
    edge_vars: dict[tuple[Node, str, Node], int] = {}
    for u in node_list:
        for a in alphabet:
            for v in node_list:
                edge_vars[(u, a, v)] = cnf.variable(("edge", u, a, v))
    universe = (tuple(node_list), alphabet)
    # Stashed for add_pair_blocking_clauses (same-universe reuse).  The
    # dict must stay exactly the pre-registered universe: ids of variables
    # allocated later (selectors, out-of-universe fallbacks) depend on the
    # instance, so letting them in would poison the cross-CNF path cache.
    cnf._edge_universe = (universe, edge_vars)  # type: ignore[attr-defined]
    extra_vars: dict[tuple[Node, str, Node], int] = {}

    def edge_var(u: Node, a: str, v: Node) -> int:
        key = (u, a, v)
        var = edge_vars.get(key)
        if var is None:  # a frontier constant outside the node universe
            var = extra_vars.get(key)
            if var is None:
                var = extra_vars[key] = cnf.variable(("edge", u, a, v))
        return var

    _encode_st_tgds(setting, instance, node_list, cnf, edge_var)
    # Minimal-model reduction: an edge variable with no positive occurrence
    # (it supports no tgd head) can be fixed false without losing anything —
    # restricting any solution to head-supported edges yields a solution
    # again (egd bodies and queries are monotone, so removing edges cannot
    # create a violation or an answer), and a model of the reduced formula
    # extended with those variables false satisfies every elided clause.
    # Fixing them as root units and skipping every blocking path that uses
    # one shrinks the clause set to the semantic core (on the Theorem 4.1
    # reduction family: from ~|Σ|·2^{|w|} path clauses down to one clause
    # per dependency) while keeping all verdicts — existence, per-pair
    # certainty — bit-identical, and decoded witnesses verified solutions.
    positive = frozenset(
        literal for clause in cnf.clauses for literal in clause if literal > 0
    )
    cnf._positive_vars = positive  # type: ignore[attr-defined]
    blocked: set[tuple[int, ...]] = set()
    node_tuple = tuple(node_list)
    for egd in setting.egds():
        _encode_egd(egd, node_tuple, universe, cnf, edge_vars, blocked, positive)
    for var in edge_vars.values():
        if var not in positive:
            cnf.add_clause_trusted((-var,))
    return cnf


def _encode_st_tgds(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    nodes: list[Node],
    cnf: CNF,
    edge_var: Callable[[Node, str, Node], int],
) -> None:
    for tgd in setting.st_tgds:
        atom_symbols = [
            (atom.subject, _symbols_of_union(atom.nre), atom.object)
            for atom in tgd.head.atoms
        ]
        for match in tgd.body_matches(instance):
            base: dict[Variable, Node] = {v: match[v] for v in tgd.frontier}
            if not tgd.existentials:
                for subject, symbols, obj in atom_symbols:
                    u = base[subject] if is_variable(subject) else subject
                    v = base[obj] if is_variable(obj) else obj
                    cnf.add_clause([edge_var(u, a, v) for a in symbols])
                continue
            selectors: list[int] = []
            for values in itertools.product(nodes, repeat=len(tgd.existentials)):
                selector = cnf.new_variable()
                selectors.append(selector)
                assignment = dict(base)
                assignment.update(zip(tgd.existentials, values))
                for subject, symbols, obj in atom_symbols:
                    u = assignment[subject] if is_variable(subject) else subject
                    v = assignment[obj] if is_variable(obj) else obj
                    cnf.add_clause(
                        [-selector] + [edge_var(u, a, v) for a in symbols]
                    )
            cnf.add_clause(selectors)


@functools.lru_cache(maxsize=4096)
def _egd_plan(egd: TargetEgd):
    """Resolve an egd body to positional plans, once per (value-equal) egd.

    Returns ``(variable_count, left_index, right_index, atom_plans)`` where
    each atom plan is ``(subject, words, object)`` with endpoints resolved
    to ``("var", index)`` / ``("const", node)``.  Memoised on the egd (its
    hash is itself memoised): reduction families instantiate value-equal
    egds across hundreds of settings, and both the encoder and the
    fragment solution check walk the same plans.
    """
    variables = list(egd.body.variables())
    index_of = {variable: i for i, variable in enumerate(variables)}
    atom_plans = []
    for atom in egd.body.atoms:
        subject = (
            ("var", index_of[atom.subject])
            if is_variable(atom.subject)
            else ("const", atom.subject)
        )
        obj = (
            ("var", index_of[atom.object])
            if is_variable(atom.object)
            else ("const", atom.object)
        )
        words = tuple(tuple(word) for word in _words_of_atom(atom.nre))
        atom_plans.append((subject, words, obj))
    return (
        len(variables),
        index_of[egd.left],
        index_of[egd.right],
        tuple(atom_plans),
    )


# (universe, nodes, egd) → tuple of blocking-clause signatures.  Sound for
# the same reason as the path cache: variable ids are a pure function of
# the universe, so a value-equal egd over the same universe blocks exactly
# the same signature set.  The global ``blocked`` dedup still applies at
# insertion time, so cross-egd duplicate suppression is preserved.
_EGD_CACHE: dict[tuple, tuple[tuple[int, ...], ...]] = {}
_EGD_CACHE_LIMIT = 8192


def _encode_egd(
    egd: TargetEgd,
    nodes: tuple[Node, ...],
    universe: tuple,
    cnf: CNF,
    edge_vars: dict[tuple[Node, str, Node], int],
    blocked: set[tuple[int, ...]] | None = None,
    positive: frozenset[int] | None = None,
) -> None:
    """Block every variable assignment violating ``egd`` over ``nodes``.

    Atom endpoints are resolved to positional indexes into the assignment
    tuple once (:func:`_egd_plan`), ahead of the ``|N|^k`` assignment loop
    — the loop body then touches no dictionaries at all.  ``blocked``
    deduplicates clauses across the whole encoding: different egds (and
    different assignments) routinely forbid the same edge set, and every
    duplicate clause would be re-simplified on each propagation pass.  The
    whole signature set is additionally memoised per (universe, egd).
    """
    seen = blocked if blocked is not None else set()
    cache_key = (universe, nodes, egd, positive)
    cached = _EGD_CACHE.get(cache_key)
    if cached is not None:
        add = cnf.add_clause_trusted
        for signature in cached:
            if signature not in seen:
                seen.add(signature)
                add(tuple([-lit for lit in signature]))
        return
    variable_count, left_index, right_index, atom_plans = _egd_plan(egd)
    # Insertion-ordered so a cache replay emits clauses in the exact order
    # the original enumeration produced them (solver determinism).
    produced: dict[tuple[int, ...], None] = {}
    append = cnf.clauses.append  # signatures are canonical by construction
    for values in itertools.product(nodes, repeat=variable_count):
        if values[left_index] == values[right_index]:
            continue
        _block_violation(
            atom_plans, values, nodes, universe, append, edge_vars, seen,
            produced, positive,
        )
    if len(_EGD_CACHE) >= _EGD_CACHE_LIMIT:
        _EGD_CACHE.clear()
    _EGD_CACHE[cache_key] = tuple(produced)


# (universe, nodes) → {symbol: {node: ((var, successor), ...)}} — the edge
# variable table re-bucketed for path growth, so each step hashes one node
# instead of building and hashing a (node, symbol, node) triple.
_ADJACENCY_CACHE: dict[tuple, dict] = {}
_ADJACENCY_CACHE_LIMIT = 256


def _adjacency_for(
    universe: object,
    nodes: tuple[Node, ...],
    edge_vars: dict[tuple[Node, str, Node], int],
) -> dict[str, dict[Node, tuple[tuple[int, Node], ...]]]:
    key = (universe, nodes)
    cached = _ADJACENCY_CACHE.get(key)
    if cached is not None:
        return cached
    staged: dict[str, dict[Node, list[tuple[int, Node]]]] = {}
    members = set(nodes)
    for (u, symbol, v), var in edge_vars.items():
        if u in members and v in members:
            staged.setdefault(symbol, {}).setdefault(u, []).append((var, v))
    adjacency = {
        symbol: {u: tuple(moves) for u, moves in per_node.items()}
        for symbol, per_node in staged.items()
    }
    if len(_ADJACENCY_CACHE) >= _ADJACENCY_CACHE_LIMIT:
        _ADJACENCY_CACHE.clear()
    _ADJACENCY_CACHE[key] = adjacency
    return adjacency


# (universe, word, u, v) → tuple of (signature, blocking clause) pairs, one
# per path: the signature is the sorted positive-literal tuple (the dedup
# key) and the clause is its ready-to-append negation.
#
# Edge variables are pre-registered by encode_bounded_existence in a fixed
# order determined solely by (node list, sorted alphabet), so two encodings
# over the same universe assign identical variable ids to identical edges —
# which makes path signatures reusable across egds, across queried pairs,
# and across CNF instances.  Reduction families (Theorem 4.1 / Corollary
# 4.2) re-encode the same words over the same two-constant universe
# hundreds of times; this cache turns each repeat into one dict hit.
_PATH_CACHE: dict[tuple, tuple[tuple[tuple[int, ...], tuple[int, ...]], ...]] = {}
_PATH_CACHE_LIMIT = 16384


def _word_paths(
    word: tuple[str, ...],
    u: Node,
    v: Node,
    nodes: tuple[Node, ...],
    universe: object,
    edge_vars: dict[tuple[Node, str, Node], int],
    positive: frozenset[int] | None = None,
) -> tuple[tuple[tuple[int, ...], tuple[int, ...]], ...]:
    """Return ``(signature, blocking_clause)`` per ``u →word→ v`` path.

    Paths are grown stepwise (shared prefixes are looked up once, not once
    per completion) and the result is memoised per (universe, nodes, word,
    endpoints) — ``nodes`` is part of the key because callers may restrict
    the intermediate-node set to a subset of the universe.

    With ``positive`` set (the minimal-model reduction of
    :func:`encode_bounded_existence`), any path through an edge variable
    outside that set is skipped — those variables are fixed false at the
    root, so the corresponding clause would be satisfied anyway.  The
    pruning happens during growth, which collapses the path tree the
    moment it leaves head-supported edges.
    """
    key = (universe, nodes, word, u, v, positive)
    cached = _PATH_CACHE.get(key)
    if cached is not None:
        return cached
    if positive is not None:
        adjacency = _adjacency_for(universe, nodes, edge_vars)
        last = len(word) - 1
        distinct = len(set(word)) == len(word)
        partials: list[tuple[tuple[int, ...], Node]] = [((), u)]
        empty: tuple = ()
        for step, symbol in enumerate(word):
            moves = adjacency.get(symbol)
            if moves is None:
                partials = []
                break
            grown: list[tuple[tuple[int, ...], Node]] = []
            if step == last:
                for literals, current in partials:
                    for var, nxt in moves.get(current, empty):
                        if nxt == v and var in positive:
                            grown.append((literals + (var,), nxt))
            else:
                for literals, current in partials:
                    for var, nxt in moves.get(current, empty):
                        if var in positive:
                            grown.append((literals + (var,), nxt))
            partials = grown
        pairs: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
        for literals, _ in partials:
            signature = tuple(sorted(literals if distinct else set(literals)))
            pairs.append((signature, tuple([-lit for lit in signature])))
        result = tuple(pairs)
        if len(_PATH_CACHE) >= _PATH_CACHE_LIMIT:
            _PATH_CACHE.clear()
        _PATH_CACHE[key] = result
        return result
    adjacency = _adjacency_for(universe, nodes, edge_vars)
    last = len(word) - 1
    # Paths are grown as plain tuples (appending one literal per step is
    # cheaper than a frozenset union); deduplication — a path may traverse
    # the same edge twice, but only when the word repeats a symbol — is
    # skipped entirely for distinct-symbol words (the common case, and the
    # only shape restriction (iv) of Theorem 4.1 even allows).
    distinct = len(set(word)) == len(word)
    partials: list[tuple[tuple[int, ...], Node]] = [((), u)]
    empty: tuple = ()
    for step, symbol in enumerate(word):
        moves = adjacency.get(symbol)
        if moves is None:  # symbol outside the universe: unrealisable
            partials = []
            break
        grown: list[tuple[tuple[int, ...], Node]] = []
        if step == last:
            for literals, current in partials:
                for var, nxt in moves.get(current, empty):
                    if nxt == v:
                        grown.append((literals + (var,), nxt))
        else:
            for literals, current in partials:
                for var, nxt in moves.get(current, empty):
                    grown.append((literals + (var,), nxt))
        partials = grown
    pairs: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
    for literals, _ in partials:
        signature = tuple(sorted(literals if distinct else set(literals)))
        pairs.append((signature, tuple([-lit for lit in signature])))
    result = tuple(pairs)
    if len(_PATH_CACHE) >= _PATH_CACHE_LIMIT:
        _PATH_CACHE.clear()
    _PATH_CACHE[key] = result
    return result


def _block_violation(
    atom_plans,
    values: tuple[Node, ...],
    nodes: tuple[Node, ...],
    universe: tuple,
    append,
    edge_vars: dict[tuple[Node, str, Node], int],
    blocked: set[tuple[int, ...]],
    produced: dict[tuple[int, ...], None] | None = None,
    positive: frozenset[int] | None = None,
) -> None:
    """Add clauses forbidding every simultaneous realisation of the atoms.

    ``append`` is the clause sink (the CNF's trusted-append, pre-bound by
    the caller to skip one attribute lookup per clause); ``blocked``
    deduplicates insertions across the whole encoding;
    ``produced`` (when given) additionally records *every* signature of
    this violation — including ones another egd already blocked — so the
    per-egd signature cache in :func:`_encode_egd` stays complete
    regardless of which egd inserted a shared clause first.
    """
    if len(atom_plans) == 1:  # the common shape: one word atom per body
        subject, alternatives, obj = atom_plans[0]
        u = values[subject[1]] if subject[0] == "var" else subject[1]
        v = values[obj[1]] if obj[0] == "var" else obj[1]
        for word in alternatives:
            for signature, clause in _word_paths(
                word, u, v, nodes, universe, edge_vars, positive
            ):
                if produced is not None:
                    produced[signature] = None
                if signature not in blocked:
                    blocked.add(signature)
                    append(clause)
        return
    per_atom_paths: list[list[tuple[int, ...]]] = []
    for subject, alternatives, obj in atom_plans:
        u = values[subject[1]] if subject[0] == "var" else subject[1]
        v = values[obj[1]] if obj[0] == "var" else obj[1]
        paths: list[tuple[int, ...]] = []
        for word in alternatives:
            paths.extend(
                signature
                for signature, _ in _word_paths(
                    word, u, v, nodes, universe, edge_vars, positive
                )
            )
        per_atom_paths.append(paths)
    for combination in itertools.product(*per_atom_paths):
        literals: set[int] = set()
        for path in combination:
            literals.update(path)
        signature = tuple(sorted(literals))
        if produced is not None:
            produced[signature] = None
        if signature in blocked:
            continue
        blocked.add(signature)
        append(tuple(-lit for lit in signature))


def add_pair_blocking_clauses(
    cnf: CNF,
    query: NRE,
    source: Node,
    target: Node,
    nodes: Sequence[Node],
    guard: int | None = None,
) -> list[Clause]:
    """Forbid every realisation of ``(source, target) ∈ ⟦query⟧`` over ``nodes``.

    ``query`` must be a union of words (the shape for which a realisation is
    a bounded edge path — raises :class:`~repro.errors.NotSupportedError`
    otherwise).  Together with :func:`encode_bounded_existence` this turns
    the certain-answer question into one SAT call: the combined formula is
    satisfiable iff some bounded solution misses the pair, and the bounded
    search is complete by the same induced-subgraph argument as existence
    (a counterexample solution G restricts to a counterexample over the
    node universe — NREs are monotone, so the induced subgraph still lacks
    the pair).  Returns the blocking clauses added (also appended to
    ``cnf``), so an incremental solver can ingest exactly the delta.

    With ``guard`` set, every clause additionally carries ``¬guard``: the
    blocking constraint is then *inactive* unless the solver assumes
    ``guard`` — the mechanism the persistent certain-answer pipeline uses
    to keep one solver while switching which pair is being probed.

    Endpoints outside the node universe cannot be realised at all, so no
    clause is needed (and none is added) for them.
    """
    words = _words_of_atom(query)
    members = set(nodes)
    if source not in members or target not in members:
        return []
    stashed = getattr(cnf, "_edge_universe", None)
    if stashed is None:  # a CNF not built by encode_bounded_existence
        alphabet = tuple(sorted({symbol for word in words for symbol in word}))
        edge_vars = {
            (u, a, v): cnf.variable(("edge", u, a, v))
            for u in nodes
            for a in alphabet
            for v in nodes
        }
        # Unique per call: these ad-hoc variable ids are not determined by
        # (nodes, alphabet), so they must never share cache entries.
        universe = object()
    else:
        universe, edge_vars = stashed
    positive = getattr(cnf, "_positive_vars", None)
    added: list[Clause] = []
    blocked: set[tuple[int, ...]] = set()
    node_tuple = tuple(nodes)
    for word in words:
        for signature, clause in _word_paths(
            tuple(word), source, target, node_tuple, universe, edge_vars, positive
        ):
            if signature in blocked:
                continue
            blocked.add(signature)
            if guard is not None:
                clause = (-guard,) + clause
            cnf.add_clause_trusted(clause)
            added.append(clause)
    return added


def _word_path_exists(
    graph: GraphDatabase, word: tuple[str, ...], source: Node, target: Node
) -> bool:
    """Whether ``graph`` has a ``source →word→ target`` edge path."""
    frontier = {source} if source in graph else set()
    for symbol in word:
        adjacency = graph.forward_index(symbol)
        grown: set[Node] = set()
        for node in frontier:
            successors = adjacency.get(node)
            if successors:
                grown.update(successors)
        if not grown:
            return False
        frontier = grown
    return target in frontier


def check_fragment_solution(
    instance: RelationalInstance,
    graph: GraphDatabase,
    setting: DataExchangeSetting,
) -> bool:
    """Decide ``graph ∈ Sol_Ω(instance)`` directly on the Theorem 4.1 fragment.

    Semantically identical to :func:`repro.core.solution.is_solution` on
    settings in the SAT-encodable fragment (union-of-symbols heads, word
    egd bodies) — pinned by a differential test — but evaluated by direct
    edge lookups and stepwise path growth instead of the generic
    automaton/matcher machinery, whose per-setting compilation dwarfs the
    actual check on the small witness graphs the SAT pipeline decodes.
    Raises :class:`~repro.errors.NotSupportedError` outside the fragment
    (existential-quantified heads fall back to the generic matcher per
    trigger, which stays within the fragment's semantics).
    """
    if setting.sameas_constraints() or setting.general_target_tgds():
        raise NotSupportedError(
            "the fragment check covers egd-only settings (Theorem 4.1 fragment)"
        )
    for tgd in setting.st_tgds:
        atom_symbols = [
            (atom.subject, _symbols_of_union(atom.nre), atom.object)
            for atom in tgd.head.atoms
        ]
        if tgd.existentials:
            for match in tgd.body_matches(instance):
                frontier_values = {v: match[v] for v in tgd.frontier}
                if not tgd.head_satisfied(graph, frontier_values):
                    return False
            continue
        for match in tgd.body_matches(instance):
            for subject, symbols, obj in atom_symbols:
                u = match[subject] if is_variable(subject) else subject
                v = match[obj] if is_variable(obj) else obj
                if not any(graph.has_edge(u, a, v) for a in symbols):
                    return False
    node_tuple = tuple(graph.nodes())
    for egd in setting.egds():
        variable_count, left_index, right_index, atom_plans = _egd_plan(egd)
        # Cheap pre-filter: an atom can only fire if some alternative word
        # has every symbol present in the graph at all; a body whose atom
        # has no such word cannot match anywhere — which rules out almost
        # all clause egds of the reduction families before the |N|^k
        # assignment loop even starts.
        if any(
            all(
                any(graph.label_count(symbol) == 0 for symbol in word)
                for word in words
            )
            for _, words, _ in atom_plans
        ):
            continue
        for values in itertools.product(node_tuple, repeat=variable_count):
            if values[left_index] == values[right_index]:
                continue
            realised = True
            for subject, words, obj in atom_plans:
                u = values[subject[1]] if subject[0] == "var" else subject[1]
                v = values[obj[1]] if obj[0] == "var" else obj[1]
                if not any(_word_path_exists(graph, word, u, v) for word in words):
                    realised = False
                    break
            if realised:  # the egd fires on two distinct nodes: violation
                return False
    return True


def decode_edge_model(
    cnf: CNF,
    model: dict[int, bool],
    alphabet: Sequence[str] | frozenset[str],
    nodes: Sequence[Node],
) -> GraphDatabase:
    """Turn a model of an existence encoding back into a graph.

    Edge variables are looked up by their registered names over the given
    ``nodes`` × ``alphabet`` universe (no repr parsing — node ids may be
    arbitrary objects, including labeled nulls).  Every node of the
    universe is added, so isolated nodes survive into the witness.  CNFs
    built by :func:`encode_bounded_existence` carry their edge-variable
    table, which the decode walks directly; the name registry is the
    fallback for hand-built CNFs.
    """
    graph = GraphDatabase(alphabet=set(alphabet))
    for node in nodes:
        graph.add_node(node)
    stashed = getattr(cnf, "_edge_universe", None)
    if stashed is not None:
        members = set(nodes)
        labels = set(alphabet)
        get = model.get
        for (u, a, v), var in stashed[1].items():
            if get(var, False) and u in members and v in members and a in labels:
                graph.add_edge(u, a, v)
        return graph
    for u in nodes:
        for a in sorted(alphabet):
            for v in nodes:
                name = ("edge", u, a, v)
                if not cnf.has_name(name):
                    continue
                if model.get(cnf.variable(name), False):
                    graph.add_edge(u, a, v)
    return graph
