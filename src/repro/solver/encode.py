"""Bounded-model SAT encoding of existence-of-solutions.

Applicable fragment (``SettingFragment.sat_encodable``): s-t tgd heads whose
atoms are unions of forward symbols (``a`` / ``a + b + …``, Theorem 4.1
restriction (iii)) and target constraints that are egds whose body atoms are
unions of words over forward symbols (covering the SORE(·) restriction (iv)).

**Completeness of the bounded search.**  Fix the node set ``N`` = constants
of the chased pattern ∪ its nulls (one null per existential per trigger).
If *any* solution G exists, pick for every trigger a head-witness
assignment in G and let G′ be the subgraph of G induced by the image of N
under those choices (constants map to themselves).  Head atoms are single
edges between nodes of that image, so G′ still satisfies every s-t tgd;
and egds are preserved under induced subgraphs (NREs are monotone, so a
violating match in G′ is a violating match in G).  Hence G′ ⊆ N × Σ × N is
a solution: searching graphs over ``N`` is complete for this fragment.
That search is exactly a SAT instance over one Boolean per possible edge.

Clauses:

* for each s-t tgd trigger without existentials: one clause per head atom —
  the disjunction of its symbol edges;
* with existentials: one auxiliary selector per assignment of existentials
  to nodes; selectors imply their atoms' clauses and at least one selector
  must hold;
* for each egd (after distributing unions into word combinations), each
  assignment of body variables with distinct images for the equated pair,
  and each placement of word-path intermediates: a blocking clause negating
  the conjunction of edges along all paths.
"""

from __future__ import annotations

import functools
import itertools
from typing import Callable, Hashable, Sequence

from repro.core.setting import DataExchangeSetting
from repro.errors import NotSupportedError
from repro.graph.database import GraphDatabase
from repro.graph.nre import NRE, Concat, Label, Union
from repro.mappings.egd import TargetEgd
from repro.relational.instance import RelationalInstance
from repro.relational.query import Variable, is_variable
from repro.solver.cnf import CNF

Node = Hashable


@functools.lru_cache(maxsize=4096)
def _symbols_of_union(expr: NRE) -> list[str]:
    """Flatten ``a + b + …`` into its symbol list; raise outside the fragment.

    Memoised on the (frozen, hashable) NRE — reduction families reuse the
    same head/body shapes across hundreds of dependencies.  Callers must
    not mutate the returned list.
    """
    if isinstance(expr, Label):
        return [expr.name]
    if isinstance(expr, Union):
        return _symbols_of_union(expr.left) + _symbols_of_union(expr.right)
    raise NotSupportedError(f"head NRE {expr} is not a union of symbols")


def _word_of(expr: NRE) -> list[str]:
    """Flatten ``a₁ · … · aₙ`` into its label sequence; raise otherwise."""
    if isinstance(expr, Label):
        return [expr.name]
    if isinstance(expr, Concat):
        return _word_of(expr.left) + _word_of(expr.right)
    raise NotSupportedError(f"egd NRE {expr} is not a word")


@functools.lru_cache(maxsize=4096)
def _words_of_atom(expr: NRE) -> list[list[str]]:
    """Expand top-level unions into the list of alternative words (memoised)."""
    if isinstance(expr, Union):
        return _words_of_atom(expr.left) + _words_of_atom(expr.right)
    return [_word_of(expr)]


def encode_bounded_existence(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    nodes: Sequence[Node],
) -> CNF:
    """Encode "a solution over node set ``nodes`` exists" as CNF.

    Edge variables are registered under the names ``("edge", u, a, v)``;
    :func:`decode_edge_model` reads them back.  Raises
    :class:`~repro.errors.NotSupportedError` outside the fragment.
    """
    if setting.sameas_constraints() or setting.general_target_tgds():
        raise NotSupportedError(
            "the SAT encoding covers egd-only settings (Theorem 4.1 fragment)"
        )
    node_list = list(nodes)
    cnf = CNF()
    # Pre-register all edge variables so decode sees a stable universe; the
    # local (u, a, v) → var dict then answers every later lookup with one
    # dict hit instead of going through the CNF name registry.  Because the
    # registration order is fixed by (node list, sorted alphabet), variable
    # ids are a pure function of that universe — the invariant the path
    # cache (:data:`_PATH_CACHE`) relies on.
    alphabet = tuple(sorted(setting.alphabet))
    edge_vars: dict[tuple[Node, str, Node], int] = {}
    for u in node_list:
        for a in alphabet:
            for v in node_list:
                edge_vars[(u, a, v)] = cnf.variable(("edge", u, a, v))
    universe = (tuple(node_list), alphabet)
    # Stashed for add_pair_blocking_clauses (same-universe reuse).  The
    # dict must stay exactly the pre-registered universe: ids of variables
    # allocated later (selectors, out-of-universe fallbacks) depend on the
    # instance, so letting them in would poison the cross-CNF path cache.
    cnf._edge_universe = (universe, edge_vars)  # type: ignore[attr-defined]
    extra_vars: dict[tuple[Node, str, Node], int] = {}

    def edge_var(u: Node, a: str, v: Node) -> int:
        key = (u, a, v)
        var = edge_vars.get(key)
        if var is None:  # a frontier constant outside the node universe
            var = extra_vars.get(key)
            if var is None:
                var = extra_vars[key] = cnf.variable(("edge", u, a, v))
        return var

    _encode_st_tgds(setting, instance, node_list, cnf, edge_var)
    blocked: set[tuple[int, ...]] = set()
    node_tuple = tuple(node_list)
    for egd in setting.egds():
        _encode_egd(egd, node_tuple, universe, cnf, edge_vars, blocked)
    return cnf


def _encode_st_tgds(
    setting: DataExchangeSetting,
    instance: RelationalInstance,
    nodes: list[Node],
    cnf: CNF,
    edge_var: Callable[[Node, str, Node], int],
) -> None:
    for tgd in setting.st_tgds:
        atom_symbols = [
            (atom.subject, _symbols_of_union(atom.nre), atom.object)
            for atom in tgd.head.atoms
        ]
        for match in tgd.body_matches(instance):
            base: dict[Variable, Node] = {v: match[v] for v in tgd.frontier}
            if not tgd.existentials:
                for subject, symbols, obj in atom_symbols:
                    u = base[subject] if is_variable(subject) else subject
                    v = base[obj] if is_variable(obj) else obj
                    cnf.add_clause([edge_var(u, a, v) for a in symbols])
                continue
            selectors: list[int] = []
            for values in itertools.product(nodes, repeat=len(tgd.existentials)):
                selector = cnf.new_variable()
                selectors.append(selector)
                assignment = dict(base)
                assignment.update(zip(tgd.existentials, values))
                for subject, symbols, obj in atom_symbols:
                    u = assignment[subject] if is_variable(subject) else subject
                    v = assignment[obj] if is_variable(obj) else obj
                    cnf.add_clause(
                        [-selector] + [edge_var(u, a, v) for a in symbols]
                    )
            cnf.add_clause(selectors)


def _encode_egd(
    egd: TargetEgd,
    nodes: tuple[Node, ...],
    universe: tuple,
    cnf: CNF,
    edge_vars: dict[tuple[Node, str, Node], int],
    blocked: set[tuple[int, ...]] | None = None,
) -> None:
    """Block every variable assignment violating ``egd`` over ``nodes``.

    Atom endpoints are resolved to positional indexes into the assignment
    tuple once, ahead of the ``|N|^k`` assignment loop — the loop body then
    touches no dictionaries at all.  ``blocked`` deduplicates clauses across
    the whole encoding: different egds (and different assignments) routinely
    forbid the same edge set, and every duplicate clause would be
    re-simplified on each DPLL propagation pass.
    """
    variables = list(egd.body.variables())
    index_of = {variable: i for i, variable in enumerate(variables)}
    left_index = index_of[egd.left]
    right_index = index_of[egd.right]
    # Each endpoint becomes ("var", index) or ("const", node).
    atom_plans: list[tuple[tuple, list[list[str]], tuple]] = []
    for atom in egd.body.atoms:
        subject = (
            ("var", index_of[atom.subject])
            if is_variable(atom.subject)
            else ("const", atom.subject)
        )
        obj = (
            ("var", index_of[atom.object])
            if is_variable(atom.object)
            else ("const", atom.object)
        )
        words = [tuple(word) for word in _words_of_atom(atom.nre)]
        atom_plans.append((subject, words, obj))
    seen = blocked if blocked is not None else set()
    for values in itertools.product(nodes, repeat=len(variables)):
        if values[left_index] == values[right_index]:
            continue
        _block_violation(atom_plans, values, nodes, universe, cnf, edge_vars, seen)


# (universe, word, u, v) → tuple of (signature, blocking clause) pairs, one
# per path: the signature is the sorted positive-literal tuple (the dedup
# key) and the clause is its ready-to-append negation.
#
# Edge variables are pre-registered by encode_bounded_existence in a fixed
# order determined solely by (node list, sorted alphabet), so two encodings
# over the same universe assign identical variable ids to identical edges —
# which makes path signatures reusable across egds, across queried pairs,
# and across CNF instances.  Reduction families (Theorem 4.1 / Corollary
# 4.2) re-encode the same words over the same two-constant universe
# hundreds of times; this cache turns each repeat into one dict hit.
_PATH_CACHE: dict[tuple, tuple[tuple[tuple[int, ...], tuple[int, ...]], ...]] = {}
_PATH_CACHE_LIMIT = 16384


def _word_paths(
    word: tuple[str, ...],
    u: Node,
    v: Node,
    nodes: tuple[Node, ...],
    universe: object,
    edge_vars: dict[tuple[Node, str, Node], int],
) -> tuple[tuple[tuple[int, ...], tuple[int, ...]], ...]:
    """Return ``(signature, blocking_clause)`` per ``u →word→ v`` path.

    Paths are grown stepwise (shared prefixes are looked up once, not once
    per completion) and the result is memoised per (universe, nodes, word,
    endpoints) — ``nodes`` is part of the key because callers may restrict
    the intermediate-node set to a subset of the universe.
    """
    key = (universe, nodes, word, u, v)
    cached = _PATH_CACHE.get(key)
    if cached is not None:
        return cached
    last = len(word) - 1
    partials: list[tuple[frozenset[int], Node]] = [(frozenset(), u)]
    for step, symbol in enumerate(word):
        ends: tuple[Node, ...] = (v,) if step == last else nodes
        grown: list[tuple[frozenset[int], Node]] = []
        for literals, current in partials:
            for nxt in ends:
                var = edge_vars.get((current, symbol, nxt))
                if var is None:
                    continue  # symbol outside the universe: path unrealisable
                grown.append((literals | {var}, nxt))
        partials = grown
    result = tuple(
        (signature, tuple(-lit for lit in signature))
        for signature in (tuple(sorted(literals)) for literals, _ in partials)
    )
    if len(_PATH_CACHE) >= _PATH_CACHE_LIMIT:
        _PATH_CACHE.clear()
    _PATH_CACHE[key] = result
    return result


def _block_violation(
    atom_plans: list[tuple[tuple, list[list[str]], tuple]],
    values: tuple[Node, ...],
    nodes: tuple[Node, ...],
    universe: tuple,
    cnf: CNF,
    edge_vars: dict[tuple[Node, str, Node], int],
    blocked: set[tuple[int, ...]],
) -> None:
    """Add clauses forbidding every simultaneous realisation of the atoms."""
    if len(atom_plans) == 1:  # the common shape: one word atom per body
        subject, alternatives, obj = atom_plans[0]
        u = values[subject[1]] if subject[0] == "var" else subject[1]
        v = values[obj[1]] if obj[0] == "var" else obj[1]
        for word in alternatives:
            for signature, clause in _word_paths(
                word, u, v, nodes, universe, edge_vars
            ):
                if signature not in blocked:
                    blocked.add(signature)
                    cnf.add_clause_trusted(clause)
        return
    per_atom_paths: list[list[tuple[int, ...]]] = []
    for subject, alternatives, obj in atom_plans:
        u = values[subject[1]] if subject[0] == "var" else subject[1]
        v = values[obj[1]] if obj[0] == "var" else obj[1]
        paths: list[tuple[int, ...]] = []
        for word in alternatives:
            paths.extend(
                signature
                for signature, _ in _word_paths(
                    word, u, v, nodes, universe, edge_vars
                )
            )
        per_atom_paths.append(paths)
    for combination in itertools.product(*per_atom_paths):
        literals: set[int] = set()
        for path in combination:
            literals.update(path)
        signature = tuple(sorted(literals))
        if signature in blocked:
            continue
        blocked.add(signature)
        cnf.add_clause_trusted(tuple(-lit for lit in signature))


def add_pair_blocking_clauses(
    cnf: CNF,
    query: NRE,
    source: Node,
    target: Node,
    nodes: Sequence[Node],
) -> int:
    """Forbid every realisation of ``(source, target) ∈ ⟦query⟧`` over ``nodes``.

    ``query`` must be a union of words (the shape for which a realisation is
    a bounded edge path — raises :class:`~repro.errors.NotSupportedError`
    otherwise).  Together with :func:`encode_bounded_existence` this turns
    the certain-answer question into one SAT call: the combined formula is
    satisfiable iff some bounded solution misses the pair, and the bounded
    search is complete by the same induced-subgraph argument as existence
    (a counterexample solution G restricts to a counterexample over the
    node universe — NREs are monotone, so the induced subgraph still lacks
    the pair).  Returns the number of blocking clauses added.

    Endpoints outside the node universe cannot be realised at all, so no
    clause is needed (and none is added) for them.
    """
    words = _words_of_atom(query)
    members = set(nodes)
    if source not in members or target not in members:
        return 0
    stashed = getattr(cnf, "_edge_universe", None)
    if stashed is None:  # a CNF not built by encode_bounded_existence
        alphabet = tuple(sorted({symbol for word in words for symbol in word}))
        edge_vars = {
            (u, a, v): cnf.variable(("edge", u, a, v))
            for u in nodes
            for a in alphabet
            for v in nodes
        }
        # Unique per call: these ad-hoc variable ids are not determined by
        # (nodes, alphabet), so they must never share cache entries.
        universe = object()
    else:
        universe, edge_vars = stashed
    added = 0
    blocked: set[tuple[int, ...]] = set()
    node_tuple = tuple(nodes)
    for word in words:
        for signature, clause in _word_paths(
            tuple(word), source, target, node_tuple, universe, edge_vars
        ):
            if signature in blocked:
                continue
            blocked.add(signature)
            cnf.add_clause_trusted(clause)
            added += 1
    return added


def decode_edge_model(
    cnf: CNF,
    model: dict[int, bool],
    alphabet: Sequence[str] | frozenset[str],
    nodes: Sequence[Node],
) -> GraphDatabase:
    """Turn a model of an existence encoding back into a graph.

    Edge variables are looked up by their registered names over the given
    ``nodes`` × ``alphabet`` universe (no repr parsing — node ids may be
    arbitrary objects, including labeled nulls).  Every node of the
    universe is added, so isolated nodes survive into the witness.
    """
    graph = GraphDatabase(alphabet=set(alphabet))
    for node in nodes:
        graph.add_node(node)
    for u in nodes:
        for a in sorted(alphabet):
            for v in nodes:
                name = ("edge", u, a, v)
                if not cnf.has_name(name):
                    continue
                if model.get(cnf.variable(name), False):
                    graph.add_edge(u, a, v)
    return graph
