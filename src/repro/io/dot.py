"""Graphviz DOT rendering of graphs and patterns.

Used by the figure-regeneration benchmarks: each paper figure's graph or
pattern can be exported as DOT text (``dot -Tpdf`` renders it).  Nulls are
drawn as dashed circles, ``sameAs`` edges as dotted lines — matching the
paper's visual conventions.
"""

from __future__ import annotations

from repro.graph.database import GraphDatabase
from repro.mappings.sameas import SAME_AS_LABEL
from repro.patterns.pattern import GraphPattern, is_null


def _quote(value: object) -> str:
    text = str(value)
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def graph_to_dot(graph: GraphDatabase, name: str = "G") -> str:
    """Render a graph database as DOT text.

    >>> g = GraphDatabase(edges=[("u", "a", "v")])
    >>> print(graph_to_dot(g))  # doctest: +NORMALIZE_WHITESPACE
    digraph "G" {
      rankdir=LR;
      "u";
      "v";
      "u" -> "v" [label="a"];
    }
    """
    lines = [f"digraph {_quote(name)} {{", "  rankdir=LR;"]
    for node in sorted(graph.nodes(), key=repr):
        attributes = ""
        if is_null(node):
            attributes = ' [style=dashed, label=' + _quote(node.label) + "]"
        lines.append(f"  {_quote(node)}{attributes};")
    for edge in sorted(graph.edges(), key=repr):
        style = ", style=dotted" if edge.label == SAME_AS_LABEL else ""
        lines.append(
            f"  {_quote(edge.source)} -> {_quote(edge.target)} "
            f"[label={_quote(edge.label)}{style}];"
        )
    lines.append("}")
    return "\n".join(lines)


def pattern_to_dot(pattern: GraphPattern, name: str = "pi") -> str:
    """Render a graph pattern as DOT text (NREs become edge labels)."""
    lines = [f"digraph {_quote(name)} {{", "  rankdir=LR;"]
    for node in sorted(pattern.nodes(), key=repr):
        attributes = ""
        if is_null(node):
            attributes = " [style=dashed, label=" + _quote(node.label) + "]"
        lines.append(f"  {_quote(node)}{attributes};")
    for edge in sorted(pattern.edges()):
        lines.append(
            f"  {_quote(edge.source)} -> {_quote(edge.target)} "
            f"[label={_quote(edge.nre)}];"
        )
    lines.append("}")
    return "\n".join(lines)
