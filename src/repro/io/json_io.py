"""JSON-friendly dictionaries for the library's value types.

Node ids are restricted to strings for serialization (the scenario and
benchmark code uses strings throughout); labeled nulls round-trip through a
``{"null": label}`` wrapper so they stay distinguishable from string
constants.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ParseError
from repro.graph.database import GraphDatabase
from repro.graph.nre import (
    NRE,
    Backward,
    Concat,
    Epsilon,
    Label,
    Nest,
    Star,
    Union,
)
from repro.patterns.pattern import GraphPattern, Null, is_null
from repro.relational.instance import RelationalInstance
from repro.relational.schema import RelationalSchema


def _node_to_json(node: object) -> Any:
    if is_null(node):
        return {"null": node.label}  # type: ignore[union-attr]
    return node


def _node_from_json(value: Any) -> object:
    if isinstance(value, dict) and set(value) == {"null"}:
        return Null(value["null"])
    return value


def graph_to_dict(graph: GraphDatabase) -> dict:
    """Serialise a graph to a plain dictionary."""
    return {
        "alphabet": sorted(graph.alphabet),
        "nodes": sorted((_node_to_json(n) for n in graph.nodes()), key=repr),
        "edges": sorted(
            (
                [_node_to_json(e.source), e.label, _node_to_json(e.target)]
                for e in graph.edges()
            ),
            key=repr,
        ),
    }


def graph_from_dict(data: dict) -> GraphDatabase:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    graph = GraphDatabase(alphabet=data.get("alphabet"))
    for node in data.get("nodes", []):
        graph.add_node(_node_from_json(node))
    for source, lab, target in data.get("edges", []):
        graph.add_edge(_node_from_json(source), lab, _node_from_json(target))
    return graph


def nre_to_dict(expr: NRE) -> dict:
    """Serialise an NRE AST."""
    if isinstance(expr, Epsilon):
        return {"op": "epsilon"}
    if isinstance(expr, Label):
        return {"op": "label", "name": expr.name}
    if isinstance(expr, Backward):
        return {"op": "backward", "name": expr.name}
    if isinstance(expr, Union):
        return {"op": "union", "left": nre_to_dict(expr.left), "right": nre_to_dict(expr.right)}
    if isinstance(expr, Concat):
        return {"op": "concat", "left": nre_to_dict(expr.left), "right": nre_to_dict(expr.right)}
    if isinstance(expr, Star):
        return {"op": "star", "inner": nre_to_dict(expr.inner)}
    if isinstance(expr, Nest):
        return {"op": "nest", "inner": nre_to_dict(expr.inner)}
    raise ParseError(f"unknown NRE node {expr!r}")


def nre_from_dict(data: dict) -> NRE:
    """Rebuild an NRE from :func:`nre_to_dict` output."""
    op = data.get("op")
    if op == "epsilon":
        return Epsilon()
    if op == "label":
        return Label(data["name"])
    if op == "backward":
        return Backward(data["name"])
    if op == "union":
        return Union(nre_from_dict(data["left"]), nre_from_dict(data["right"]))
    if op == "concat":
        return Concat(nre_from_dict(data["left"]), nre_from_dict(data["right"]))
    if op == "star":
        return Star(nre_from_dict(data["inner"]))
    if op == "nest":
        return Nest(nre_from_dict(data["inner"]))
    raise ParseError(f"unknown NRE op {op!r}")


def pattern_to_dict(pattern: GraphPattern) -> dict:
    """Serialise a graph pattern (edges carry NRE dictionaries)."""
    return {
        "alphabet": sorted(pattern.alphabet or []),
        "nodes": sorted((_node_to_json(n) for n in pattern.nodes()), key=repr),
        "edges": sorted(
            (
                [
                    _node_to_json(e.source),
                    nre_to_dict(e.nre),
                    _node_to_json(e.target),
                ]
                for e in pattern.edges()
            ),
            key=repr,
        ),
    }


def pattern_from_dict(data: dict) -> GraphPattern:
    """Rebuild a pattern from :func:`pattern_to_dict` output."""
    pattern = GraphPattern(alphabet=data.get("alphabet"))
    for node in data.get("nodes", []):
        pattern.add_node(_node_from_json(node))
    for source, expr, target in data.get("edges", []):
        pattern.add_edge(
            _node_from_json(source), nre_from_dict(expr), _node_from_json(target)
        )
    return pattern


def instance_to_dict(instance: RelationalInstance) -> dict:
    """Serialise a relational instance with its schema."""
    return {
        "schema": [[symbol.name, symbol.arity] for symbol in instance.schema],
        "facts": {
            symbol.name: sorted([list(t) for t in instance.tuples(symbol)], key=repr)
            for symbol in instance.schema
        },
    }


def instance_from_dict(data: dict) -> RelationalInstance:
    """Rebuild an instance from :func:`instance_to_dict` output."""
    schema = RelationalSchema()
    for name, arity in data.get("schema", []):
        schema.declare(name, arity)
    instance = RelationalInstance(schema)
    for name, tuples in data.get("facts", {}).items():
        for values in tuples:
            instance.add(name, tuple(values))
    return instance


def document_to_dict(setting, instance: RelationalInstance) -> dict:
    """Serialise an *exchange document* — the wire unit of the CLI and the
    service: one setting plus one source instance."""
    from repro.io.dependencies import setting_to_dict  # import cycle guard

    return {
        "setting": setting_to_dict(setting),
        "instance": instance_to_dict(instance),
    }


def document_from_dict(data: dict):
    """Rebuild ``(setting, instance)`` from :func:`document_to_dict` output.

    Raises :class:`~repro.errors.ParseError` on a structurally invalid
    document — the service validates shape before scheduling work, but the
    deep parse happens here, in the worker.
    """
    from repro.io.dependencies import setting_from_dict  # import cycle guard

    if not isinstance(data, dict):
        raise ParseError("exchange document must be an object")
    missing = {"setting", "instance"} - set(data)
    if missing:
        raise ParseError(f"exchange document is missing {sorted(missing)}")
    return setting_from_dict(data["setting"]), instance_from_dict(data["instance"])
