"""Serialization and rendering.

* :mod:`repro.io.json_io` — JSON round-tripping for graphs, patterns,
  instances, NREs, and settings;
* :mod:`repro.io.dot` — Graphviz DOT export for graphs and patterns, used
  to regenerate the paper's figures as images.
"""

from repro.io.json_io import (
    graph_to_dict,
    graph_from_dict,
    pattern_to_dict,
    pattern_from_dict,
    instance_to_dict,
    instance_from_dict,
    nre_to_dict,
    nre_from_dict,
)
from repro.io.dot import graph_to_dot, pattern_to_dot

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "pattern_to_dict",
    "pattern_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "nre_to_dict",
    "nre_from_dict",
    "graph_to_dot",
    "pattern_to_dot",
]
