"""Structural JSON serialization for queries, dependencies, and settings.

Terms are tagged (``{"var": n}`` / ``{"const": v}``) so that constants with
lowercase names survive the round trip — the concrete text syntax could not
distinguish them.  Dependencies carry a ``kind`` discriminator, settings
bundle schema, alphabet, and dependency lists; together with
:mod:`repro.io.json_io` this makes every CLI input/output a plain JSON
document.
"""

from __future__ import annotations

from repro.core.setting import DataExchangeSetting, TargetConstraint
from repro.errors import ParseError
from repro.graph.cnre import CNREAtom, CNREQuery
from repro.io.json_io import nre_from_dict, nre_to_dict
from repro.mappings.egd import TargetEgd
from repro.mappings.sameas import SameAsConstraint
from repro.mappings.stt import SourceToTargetTgd
from repro.mappings.target_tgd import TargetTgd
from repro.relational.query import ConjunctiveQuery, RelationalAtom, Variable, is_variable
from repro.relational.schema import RelationalSchema


def _term_to_json(term: object) -> dict:
    if is_variable(term):
        return {"var": term.name}  # type: ignore[union-attr]
    return {"const": term}


def _term_from_json(data: dict) -> object:
    if "var" in data:
        return Variable(data["var"])
    if "const" in data:
        return data["const"]
    raise ParseError(f"bad term {data!r}")


def cq_to_dict(query: ConjunctiveQuery) -> dict:
    """Serialise a relational conjunctive query."""
    return {
        "atoms": [
            {"relation": atom.relation, "terms": [_term_to_json(t) for t in atom.terms]}
            for atom in query.atoms
        ],
        "outputs": [v.name for v in query.outputs],
    }


def cq_from_dict(data: dict) -> ConjunctiveQuery:
    """Rebuild a relational conjunctive query."""
    atoms = [
        RelationalAtom(
            item["relation"], tuple(_term_from_json(t) for t in item["terms"])
        )
        for item in data["atoms"]
    ]
    outputs = [Variable(name) for name in data.get("outputs", [])]
    return ConjunctiveQuery(atoms, outputs or None)


def cnre_to_dict(query: CNREQuery) -> dict:
    """Serialise a CNRE query."""
    return {
        "atoms": [
            {
                "subject": _term_to_json(atom.subject),
                "nre": nre_to_dict(atom.nre),
                "object": _term_to_json(atom.object),
            }
            for atom in query.atoms
        ],
        "outputs": [v.name for v in query.outputs],
    }


def cnre_from_dict(data: dict) -> CNREQuery:
    """Rebuild a CNRE query."""
    atoms = [
        CNREAtom(
            _term_from_json(item["subject"]),
            nre_from_dict(item["nre"]),
            _term_from_json(item["object"]),
        )
        for item in data["atoms"]
    ]
    outputs = [Variable(name) for name in data.get("outputs", [])]
    return CNREQuery(atoms, outputs or None)


def dependency_to_dict(dependency: object) -> dict:
    """Serialise any dependency with a ``kind`` discriminator."""
    if isinstance(dependency, SourceToTargetTgd):
        return {
            "kind": "st-tgd",
            "name": dependency.name,
            "body": cq_to_dict(dependency.body),
            "head": cnre_to_dict(dependency.head),
        }
    if isinstance(dependency, TargetEgd):
        return {
            "kind": "egd",
            "name": dependency.name,
            "body": cnre_to_dict(dependency.body),
            "left": dependency.left.name,
            "right": dependency.right.name,
        }
    if isinstance(dependency, SameAsConstraint):
        return {
            "kind": "sameas",
            "name": dependency.name,
            "body": cnre_to_dict(dependency.body),
            "left": dependency.left.name,
            "right": dependency.right.name,
        }
    if isinstance(dependency, TargetTgd):
        return {
            "kind": "target-tgd",
            "name": dependency.name,
            "body": cnre_to_dict(dependency.body),
            "head": cnre_to_dict(dependency.head),
        }
    raise ParseError(f"unknown dependency {dependency!r}")


def dependency_from_dict(data: dict) -> object:
    """Rebuild a dependency from its tagged dictionary."""
    kind = data.get("kind")
    name = data.get("name", "")
    if kind == "st-tgd":
        return SourceToTargetTgd(
            cq_from_dict(data["body"]), cnre_from_dict(data["head"]), name=name
        )
    if kind == "egd":
        return TargetEgd(
            cnre_from_dict(data["body"]),
            Variable(data["left"]),
            Variable(data["right"]),
            name=name,
        )
    if kind == "sameas":
        return SameAsConstraint(
            cnre_from_dict(data["body"]),
            Variable(data["left"]),
            Variable(data["right"]),
            name=name,
        )
    if kind == "target-tgd":
        return TargetTgd(
            cnre_from_dict(data["body"]), cnre_from_dict(data["head"]), name=name
        )
    raise ParseError(f"unknown dependency kind {kind!r}")


def setting_to_dict(setting: DataExchangeSetting) -> dict:
    """Serialise a full data exchange setting Ω."""
    return {
        "name": setting.name,
        "schema": [[s.name, s.arity] for s in setting.source_schema],
        "alphabet": sorted(setting.alphabet),
        "st_tgds": [dependency_to_dict(t) for t in setting.st_tgds],
        "target_constraints": [
            dependency_to_dict(c) for c in setting.target_constraints
        ],
    }


def setting_from_dict(data: dict) -> DataExchangeSetting:
    """Rebuild a data exchange setting Ω."""
    schema = RelationalSchema()
    for name, arity in data.get("schema", []):
        schema.declare(name, arity)
    st_tgds = [dependency_from_dict(t) for t in data.get("st_tgds", [])]
    constraints: list[TargetConstraint] = [
        dependency_from_dict(c) for c in data.get("target_constraints", [])
    ]
    return DataExchangeSetting(
        schema,
        data.get("alphabet", []),
        st_tgds,  # type: ignore[arg-type]
        constraints,
        name=data.get("name", ""),
    )
