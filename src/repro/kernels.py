"""Execution-kernel selection for the query/chase hot paths.

The library ships three interchangeable execution kernels:

* ``"vector"`` — array-at-a-time evaluation over the CSR backend's numpy
  buffers (:mod:`repro.graph.vector`): the product-automaton frontier is
  an integer array, the visited map a ``state × |V|`` boolean matrix, and
  edge expansion one vectorized CSR gather per drained state.  This is
  the default whenever numpy is importable.
* ``"scalar"`` — the pure-Python loops the vector kernel was derived
  from, retained verbatim as the differential oracle (and the fallback
  kernel on installations without numpy).
* ``"codegen"`` — the specializing kernel (:mod:`repro.graph.codegen`):
  each compiled automaton is lowered once to a dedicated Python source
  string (per-state dispatch unrolled into direct branches over the
  label-indexed CSR buffers), ``compile()``\\d, and reused — no generic
  interpreter in the hot loop, no numpy requirement, and the generated
  source persists across processes through the automaton cache.

Selection precedence, weakest to strongest: the built-in default
(``"vector"``), the ``REPRO_KERNEL`` environment variable, an explicit
``kernel=`` argument (CLI ``--kernel``, service request parameter,
:class:`~repro.engine.query.QueryEngine` constructor).  Whatever is
selected, a ``"vector"`` choice silently degrades to ``"scalar"`` when
numpy is absent — the two kernels are answer-identical, so degradation
is a performance event, not a correctness one.

All numpy access in the library routes through :func:`get_numpy`, so
tests can simulate a numpy-less installation by monkeypatching one
attribute (``repro.kernels.NUMPY = None``) instead of manipulating
``sys.modules``.
"""

from __future__ import annotations

import os

KERNEL_NAMES = ("vector", "scalar", "codegen")
"""The execution kernels an engine can run (see ``--kernel``)."""

try:  # pragma: no cover - exercised via both branches in the test suite
    import numpy as _numpy
except ImportError:  # pragma: no cover - the container ships numpy
    _numpy = None

NUMPY = _numpy
"""The numpy module, or ``None``.  Tests monkeypatch this to mask numpy."""


def get_numpy():
    """Return the numpy module or ``None`` (the single masking point).

    >>> get_numpy() is NUMPY
    True
    """
    return NUMPY


def default_kernel() -> str:
    """The kernel used when no explicit choice is made.

    Honours ``REPRO_KERNEL`` (validated); otherwise ``"vector"``.
    """
    env = os.environ.get("REPRO_KERNEL")
    if env:
        if env not in KERNEL_NAMES:
            raise ValueError(
                f"REPRO_KERNEL={env!r} is not a kernel; expected one of "
                f"{list(KERNEL_NAMES)}"
            )
        return env
    return "vector"


def resolve_kernel(kernel: str | None) -> str:
    """Resolve a requested kernel to the one that will actually run.

    ``None`` means "no explicit choice" and defers to
    :func:`default_kernel`.  A ``"vector"`` outcome degrades to
    ``"scalar"`` when numpy is unavailable; ``"codegen"`` is pure Python
    and never degrades.

    >>> resolve_kernel("scalar")
    'scalar'
    >>> resolve_kernel("codegen")
    'codegen'
    >>> resolve_kernel("vector") in KERNEL_NAMES
    True
    """
    if kernel is None:
        kernel = default_kernel()
    elif kernel not in KERNEL_NAMES:
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {list(KERNEL_NAMES)}"
        )
    if kernel == "vector" and get_numpy() is None:
        return "scalar"
    return kernel
