"""Theorem 4.1: 3SAT reduces to existence-of-solutions with target egds.

Given ρ = C₁ ∧ … ∧ C_k in 3CNF over x₁…x_n, the paper constructs
Ω_ρ = (R_ρ, Σ_ρ, M_ρst, M_ρt) and the fixed instance I_ρ:

* R_ρ = {R1/1, R2/1}; I_ρ = {R1(c1), R2(c2)};
* Σ_ρ = {a, t1, f1, …, tn, fn};
* M_ρst: the single s-t tgd
  ``R1(x) ∧ R2(y) → (x, a, y) ∧ (x, t1+f1, x) ∧ … ∧ (x, tn+fn, x)``;
* M_ρt: egds of two shapes —
  (*)  ``(x, tⱼ·fⱼ·a, y) → x = y`` for each variable xⱼ
       (a variable may not be both true and false), and
  (**) ``(x, b_{i1}·b_{i2}·b_{i3}·a, y) → x = y`` for each clause C_i,
       where b_{il} = t_{il} if x_{il} occurs *negatively* in C_i and
       f_{il} otherwise (the self-loops that *falsify* the clause must not
       coexist).

Solutions for I_ρ under Ω_ρ exist iff ρ is satisfiable, and the solutions
over {c1, c2} are exactly the valuation graphs (Figure 4 shows the one for
the paper's ρ₀).  Note restriction (iv) of the theorem asks the egd words
to have pairwise-distinct symbols; a clause with a repeated variable would
repeat its symbol, so :func:`reduction_from_cnf` rejects clauses with
duplicate variables (standard 3SAT normalisation removes them).

The hardness is *query complexity*: I_ρ and R_ρ are fixed; only Σ_ρ and the
dependencies grow with ρ.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.core.setting import DataExchangeSetting
from repro.errors import SchemaError
from repro.graph.cnre import CNREAtom, CNREQuery
from repro.graph.database import GraphDatabase
from repro.graph.nre import concat, label, union
from repro.mappings.egd import TargetEgd
from repro.mappings.stt import SourceToTargetTgd
from repro.relational.instance import RelationalInstance
from repro.relational.query import ConjunctiveQuery, RelationalAtom, Variable
from repro.relational.schema import RelationalSchema
from repro.solver.cnf import CNF

Valuation = dict[int, bool]


def _true_label(j: int) -> str:
    return f"t{j}"


def _false_label(j: int) -> str:
    return f"f{j}"


@dataclass
class ThreeSatReduction:
    """The constructed setting/instance pair for one 3CNF formula."""

    formula: CNF
    setting: DataExchangeSetting
    instance: RelationalInstance
    variable_count: int

    @property
    def source_constants(self) -> tuple[str, str]:
        """The two fixed constants (c1, c2) of I_ρ."""
        return ("c1", "c2")


def reduction_from_cnf(formula: CNF) -> ThreeSatReduction:
    """Build Ω_ρ and I_ρ from a CNF formula (clauses of any width ≥ 1).

    Memoised by formula *value* (variable count + clause tuple): the
    construction is pure, the produced setting is immutable, and serving
    workloads decide the same formulas repeatedly — re-requests then reuse
    one setting object, which also keeps the SAT pipeline's per-universe
    cache warm.  The tiny instance is copied per call (it is mutable).

    Raises :class:`~repro.errors.SchemaError` on clauses mentioning the
    same variable twice — normalise the formula first (such clauses are
    either tautological, then droppable, or collapse to shorter clauses).
    """
    cached = _cached_reduction(formula.variable_count, tuple(formula.clauses))
    return ThreeSatReduction(
        formula=formula,
        setting=cached.setting,
        instance=cached.instance.copy(),
        variable_count=cached.variable_count,
    )


_X, _Y = Variable("x"), Variable("y")


@functools.lru_cache(maxsize=4096)
def _var_egd(j: int) -> TargetEgd:
    """The type-(*) egd for variable ``j`` — one shared object per ``j``.

    Interning the dependency objects (here and in :func:`_clause_egd` /
    :func:`_st_tgd`) means value-equal dependencies across different
    formulas are *identical* objects, so every downstream identity- or
    hash-keyed cache (egd plans, the per-universe clause cache, the SAT
    pipeline key) hits at full speed.
    """
    body = CNREQuery(
        [CNREAtom(_X, concat(label(_true_label(j)), label(_false_label(j)), label("a")), _Y)]
    )
    return TargetEgd(body, _X, _Y, name=f"egd-var-{j}")


@functools.lru_cache(maxsize=65536)
def _clause_egd(falsifier_labels: tuple[str, ...]) -> TargetEgd:
    """The type-(**) egd blocking the falsifying self-loops of one clause."""
    parts = [label(name) for name in falsifier_labels]
    body = CNREQuery([CNREAtom(_X, concat(*parts, label("a")), _Y)])
    return TargetEgd(
        body, _X, _Y, name="egd-clause(" + ",".join(falsifier_labels) + ")"
    )


@functools.lru_cache(maxsize=256)
def _st_tgd(n: int) -> SourceToTargetTgd:
    """The single s-t tgd of Ω_ρ for ``n`` variables (shared per ``n``)."""
    head_atoms = [CNREAtom(_X, label("a"), _Y)]
    for j in range(1, n + 1):
        head_atoms.append(
            CNREAtom(_X, union(label(_true_label(j)), label(_false_label(j))), _X)
        )
    return SourceToTargetTgd(
        ConjunctiveQuery(
            [RelationalAtom("R1", (_X,)), RelationalAtom("R2", (_Y,))]
        ),
        CNREQuery(head_atoms),
        name="M_rho_st",
    )


@functools.lru_cache(maxsize=256)
def _cached_reduction(
    variable_count: int, clauses: tuple[tuple[int, ...], ...]
) -> ThreeSatReduction:
    formula = CNF(clauses=list(clauses), variable_count=variable_count)
    n = formula.variable_count
    alphabet = {"a"}
    for j in range(1, n + 1):
        alphabet.add(_true_label(j))
        alphabet.add(_false_label(j))

    schema = RelationalSchema()
    schema.declare("R1", 1)
    schema.declare("R2", 1)
    instance = RelationalInstance(schema, {"R1": [("c1",)], "R2": [("c2",)]})

    st_tgd = _st_tgd(n)

    egds: list[TargetEgd] = []
    # (*) one egd per variable: t_j and f_j self-loops may not coexist.
    for j in range(1, n + 1):
        egds.append(_var_egd(j))
    # (**) one egd per clause: the three falsifying self-loops may not coexist.
    for clause in formula.clauses:
        variables = [abs(lit) for lit in clause]
        if len(set(variables)) != len(variables):
            raise SchemaError(
                f"clause {clause} repeats a variable; normalise the formula "
                "(restriction (iv) needs pairwise-distinct egd symbols)"
            )
        falsifiers = tuple(
            _true_label(abs(lit)) if lit < 0 else _false_label(abs(lit))
            for lit in clause
        )
        egds.append(_clause_egd(falsifiers))

    setting = DataExchangeSetting(
        schema,
        alphabet,
        [st_tgd],
        egds,
        name=f"Omega_rho(n={n},k={len(formula.clauses)})",
        # Σ_ρ is built from the dependency labels above; conformance cannot
        # fail, and the validation walk is measurable on reduction sweeps.
        validate=False,
    )
    return ThreeSatReduction(
        formula=formula, setting=setting, instance=instance, variable_count=n
    )


def valuation_graph(reduction: ThreeSatReduction, valuation: Valuation) -> GraphDatabase:
    """The solution graph encoding ``valuation`` (the Figure 4 shape).

    One ``a`` edge c1 → c2, plus the self-loop ``t_j`` or ``f_j`` on c1 for
    every variable, according to the valuation.  It is a solution iff the
    valuation satisfies the formula (the paper's "if" direction).
    """
    graph = GraphDatabase(alphabet=reduction.setting.alphabet)
    c1, c2 = reduction.source_constants
    graph.add_edge(c1, "a", c2)
    for j in range(1, reduction.variable_count + 1):
        chosen = _true_label(j) if valuation.get(j, False) else _false_label(j)
        graph.add_edge(c1, chosen, c1)
    return graph


def decode_valuation(
    reduction: ThreeSatReduction, solution: GraphDatabase
) -> Valuation:
    """Read the valuation off a solution graph's c1 self-loops.

    Solutions encode *exactly one* of t_j/f_j per variable (the type-(*)
    egds forbid both, the s-t tgd demands at least one); when a graph
    carries both (it is then not a solution) the ``True`` reading wins, and
    a missing pair decodes to ``False``.
    """
    c1 = reduction.source_constants[0]
    valuation: Valuation = {}
    for j in range(1, reduction.variable_count + 1):
        valuation[j] = c1 in solution.successors(c1, _true_label(j))
    return valuation
