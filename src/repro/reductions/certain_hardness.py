"""Corollary 4.2 and Proposition 4.3: certain answers are coNP-hard.

Both constructions reuse the Theorem 4.1 reduction:

* **Corollary 4.2 (egds)** — keep Ω_ρ and I_ρ, add the query
  ``r_ρ = a·a``.  Claim: ``(c1, c2) ∈ cert_{Ω_ρ}(r_ρ, I_ρ)`` iff ρ is
  *unsatisfiable*.  If ρ is unsatisfiable there is no solution, so every
  tuple is (vacuously) certain; if ρ is satisfiable, a valuation graph is a
  solution and it has no a·a path (its only ``a`` edge is c1 → c2 with no
  continuation), so (c1, c2) is not certain.

* **Proposition 4.3 (sameAs)** — replace every egd ``ψ → x = y`` by the
  sameAs constraint ``ψ → (x, sameAs, y)`` (over Σ_ρ ∪ {sameAs}) and query
  ``r′_ρ = sameAs``.  Solutions now always exist; a valuation graph for a
  satisfying valuation needs *no* sameAs edge (no constraint body fires),
  so (c1, c2) is certain iff every solution is forced to carry the edge —
  iff ρ is unsatisfiable.  Corollary 4.4 follows because sameAs constraints
  are target tgds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.setting import DataExchangeSetting
from repro.graph.nre import NRE, concat, label
from repro.mappings.sameas import SAME_AS_LABEL, SameAsConstraint
from repro.reductions.three_sat import reduction_from_cnf
from repro.relational.instance import RelationalInstance
from repro.solver.cnf import CNF


@dataclass
class CertainHardnessInstance:
    """A certain-answer hardness instance: setting, instance, query, tuple.

    The claim field states the expected relationship, evaluated by the
    benchmarks: ``certain iff formula unsatisfiable``.
    """

    setting: DataExchangeSetting
    instance: RelationalInstance
    query: NRE
    tuple: tuple[str, str]
    formula: CNF
    kind: str  # "egd" (Corollary 4.2) or "sameas" (Proposition 4.3)


def certain_egd_instance(formula: CNF) -> CertainHardnessInstance:
    """Build the Corollary 4.2 instance for ``formula``: query r_ρ = a·a."""
    reduction = reduction_from_cnf(formula)
    return CertainHardnessInstance(
        setting=reduction.setting,
        instance=reduction.instance,
        query=concat(label("a"), label("a")),
        tuple=reduction.source_constants,
        formula=formula,
        kind="egd",
    )


def certain_sameas_instance(formula: CNF) -> CertainHardnessInstance:
    """Build the Proposition 4.3 instance: sameAs constraints, query sameAs."""
    reduction = reduction_from_cnf(formula)
    constraints = [
        SameAsConstraint(egd.body, egd.left, egd.right, name=f"sameas-{egd.name}")
        for egd in reduction.setting.egds()
    ]
    setting = DataExchangeSetting(
        reduction.setting.source_schema,
        reduction.setting.alphabet,
        reduction.setting.st_tgds,
        constraints,
        name=reduction.setting.name.replace("Omega_rho", "Omega'_rho"),
    )
    return CertainHardnessInstance(
        setting=setting,
        instance=reduction.instance,
        query=label(SAME_AS_LABEL),
        tuple=reduction.source_constants,
        formula=formula,
        kind="sameas",
    )


def expected_certain(instance: CertainHardnessInstance, satisfiable: bool) -> bool:
    """The paper's claim: the tuple is certain iff the formula is unsat."""
    del instance
    return not satisfiable
