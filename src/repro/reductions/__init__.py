"""Executable complexity reductions (Section 4 of the paper).

* :mod:`repro.reductions.three_sat` — Theorem 4.1: 3SAT ≤ existence of
  solutions with target egds, including the decoding of solutions back to
  valuations and round-trip verification helpers;
* :mod:`repro.reductions.certain_hardness` — Corollary 4.2 (certain answers
  with egds, query r_ρ = a·a) and Proposition 4.3 / Corollary 4.4 (certain
  answers with sameAs constraints, query r′_ρ = sameAs).
"""

from repro.reductions.three_sat import (
    ThreeSatReduction,
    reduction_from_cnf,
    valuation_graph,
    decode_valuation,
)
from repro.reductions.certain_hardness import (
    CertainHardnessInstance,
    certain_egd_instance,
    certain_sameas_instance,
    expected_certain,
)

__all__ = [
    "ThreeSatReduction",
    "reduction_from_cnf",
    "valuation_graph",
    "decode_valuation",
    "CertainHardnessInstance",
    "certain_egd_instance",
    "certain_sameas_instance",
    "expected_certain",
]
