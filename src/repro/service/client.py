"""A small blocking client for the JSON-lines service.

One TCP connection, synchronous request/response — deliberately the
simplest possible consumer of the protocol, used by the ``repro submit``
CLI, the service benchmarks, and :mod:`examples.service_client`.  For
concurrency, open one client per thread (the server handles connections
concurrently; a single connection is processed in order).

:meth:`ServiceClient.request` returns the raw response envelope (callers
that care about the ``cached`` flag use this); :meth:`ServiceClient.call`
unwraps it, raising :class:`ServiceError` on error envelopes.
"""

from __future__ import annotations

import json
import socket
import uuid
from typing import Any

from repro.service.protocol import encode_line


class ServiceError(Exception):
    """An error envelope, raised client-side with its stable code."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ServiceClient:
    """A blocking JSON-lines client over one TCP connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 120.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._reader = None
        self._counter = 0
        # Request ids must be unique across everything in flight on the
        # server (the job registry is global so `cancel` can reach any
        # job) — a per-client random prefix keeps concurrent clients from
        # colliding on "c1".
        self._prefix = uuid.uuid4().hex[:8]

    # ------------------------------------------------------------------ #

    def _connection(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._reader = self._sock.makefile("rb")
        return self._sock

    def request(
        self,
        op: str,
        params: dict | None = None,
        *,
        deadline_s: float | None = None,
        no_cache: bool = False,
        request_id: str | None = None,
    ) -> dict:
        """Send one request and return the full response envelope."""
        self._counter += 1
        payload: dict[str, Any] = {
            "id": (
                request_id
                if request_id is not None
                else f"{self._prefix}-{self._counter}"
            ),
            "op": op,
        }
        if params is not None:
            payload["params"] = params
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        if no_cache:
            payload["no_cache"] = True
        sock = self._connection()
        try:
            sock.sendall(encode_line(payload))
            line = self._reader.readline()  # type: ignore[union-attr]
        except OSError:
            # Includes socket.timeout: the stream position is now unknown
            # (a late response could be mistaken for the next request's),
            # so the connection must not be reused.
            self.close()
            raise
        if not line:
            self.close()
            raise ServiceError("connection-closed", "server closed the connection")
        envelope = json.loads(line.decode("utf-8"))
        returned_id = envelope.get("id")
        if returned_id is not None and returned_id != payload["id"]:
            # A desynchronised stream (e.g. a previous caller swallowed a
            # timeout) must never hand back someone else's answer.
            self.close()
            raise ServiceError(
                "protocol-desync",
                f"response id {returned_id!r} does not match request "
                f"id {payload['id']!r}",
            )
        return envelope

    def call(self, op: str, params: dict | None = None, **kwargs) -> dict:
        """Send one request and return its result; raise on error envelopes."""
        envelope = self.request(op, params, **kwargs)
        if not envelope.get("ok"):
            error = envelope.get("error", {})
            raise ServiceError(
                error.get("code", "internal-error"),
                error.get("message", "malformed error envelope"),
            )
        return envelope["result"]

    # ------------------------------------------------------------------ #
    # Convenience wrappers, one per operation.
    # ------------------------------------------------------------------ #

    def ping(self) -> dict:
        """Round-trip liveness probe."""
        return self.call("ping")

    def stats(self) -> dict:
        """The server's cache/jobs/pool telemetry snapshot."""
        return self.call("stats")

    def shutdown(self) -> dict:
        """Ask the server to stop (it responds before stopping)."""
        return self.call("shutdown")

    def cancel(self, job_id: str) -> dict:
        """Best-effort cancellation of an in-flight request id."""
        return self.call("cancel", {"job": job_id})

    def metrics(self) -> dict:
        """The server's full telemetry-registry snapshot (JSON form)."""
        return self.call("metrics")

    def traces(self, limit: int | None = None, slow: bool = False) -> dict:
        """Recent request traces (``slow=True`` reads the slow-request ring)."""
        params: dict[str, Any] = {"slow": slow}
        if limit is not None:
            params["limit"] = limit
        return self.call("traces", params)

    def exists(self, document: dict, **params) -> dict:
        """Decide existence of solutions for an exchange document."""
        return self.call("exists", {"document": document, **params})

    def certain(
        self, document: dict, query: str, pair: list | None = None, **params
    ) -> dict:
        """Certain answers of ``query`` (whole set, or one ``pair``)."""
        body: dict[str, Any] = {"document": document, "query": query, **params}
        if pair is not None:
            body["pair"] = list(pair)
        return self.call("certain", body)

    def chase(self, document: dict) -> dict:
        """Chase the document and return the resulting pattern."""
        return self.call("chase", {"document": document})

    def evaluate_batch(self, document: dict, queries: list[str], **params) -> dict:
        """Batched certain answers: many queries over one instance."""
        return self.call(
            "evaluate_batch", {"document": document, "queries": list(queries), **params}
        )

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
