"""The service wire protocol: JSON lines, validated requests, error envelopes.

One request per line, one response per line, both UTF-8 JSON.  A request::

    {"id": "r1", "op": "certain", "params": {"document": {...},
     "query": "f . f-"}, "deadline_s": 5.0}

and its response envelope, exactly one of::

    {"id": "r1", "ok": true,  "result": {...}, "cached": false}
    {"id": "r1", "ok": false, "error": {"code": "bad-request",
                                        "message": "..."}}

Validation happens *before* any work is scheduled: every operation has a
field specification (required/optional fields, types, defaults), unknown
fields and unknown operations are rejected, and defaults are filled in so
that two requests meaning the same thing normalise to the same parameter
dictionary.  That normalisation is what makes :func:`request_fingerprint`
a correct cache key — ``{"star_bound": 2}`` and ``{}`` fingerprint
identically because both normalise to the explicit default.

Error codes (stable API, tested):

=================== =====================================================
``bad-json``        the line was not valid JSON
``bad-request``     the request failed schema validation
``unknown-op``      the operation name is not served
``duplicate-id``    a request with this id is already in flight
``deadline-exceeded`` the per-request deadline elapsed before completion
``cancelled``       the job was cancelled (``cancel`` op) before it ran
``bounds-exceeded`` the library could not settle the answer within bounds
``unsupported``     the setting/query shape is outside the engine's scope
``internal-error``  anything else — the message carries the exception
=================== =====================================================
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.engine.query import BACKEND_NAMES
from repro.kernels import KERNEL_NAMES
from repro.solver import SOLVER_NAMES

PROTOCOL_VERSION = 1
"""Bumped on any incompatible change to the wire format."""

COMPUTE_OPS = ("apply_updates", "certain", "chase", "evaluate_batch", "exists")
"""Operations that run in the worker pool and are result-cacheable."""

CONTROL_OPS = ("cancel", "metrics", "ping", "shutdown", "stats", "traces")
"""Operations answered inline by the server itself.

``metrics`` and ``traces`` form the introspection plane: they read the
server's telemetry registry and trace ring without occupying a worker
slot, so a wedged pool can still be diagnosed over the same wire."""

ENGINE_NAMES = ("compiled", "reference")
# BACKEND_NAMES (imported above) is the single source of truth for the
# storage back-ends a compute request may select (``params.backend``):
# exactly the ones QueryEngine accepts.

MAX_LINE_BYTES = 32 * 1024 * 1024
"""Upper bound on one request line — a malformed client must not OOM us."""


class ProtocolError(Exception):
    """A request that must be answered with an error envelope."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class Request:
    """A validated request with normalised (default-filled) parameters."""

    id: str
    op: str
    params: dict[str, Any] = field(default_factory=dict)
    deadline_s: float | None = None
    no_cache: bool = False

    def fingerprint(self) -> str:
        """The result-cache key (op + normalised params, value-based)."""
        return request_fingerprint(self.op, self.params)


# --------------------------------------------------------------------- #
# Field specifications, one per operation.  Each spec maps a field name
# to (checker, required, default); checkers raise ProtocolError.
# --------------------------------------------------------------------- #


def _check_document(value: Any) -> dict:
    if not isinstance(value, dict):
        raise ProtocolError("bad-request", "document must be an object")
    missing = {"setting", "instance"} - set(value)
    if missing:
        raise ProtocolError(
            "bad-request",
            f"document is missing {sorted(missing)} "
            "(expected the CLI exchange-document shape)",
        )
    return value


def _check_star_bound(value: Any) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ProtocolError("bad-request", "star_bound must be an integer >= 0")
    return value


def _check_engine(value: Any) -> str:
    if value not in ENGINE_NAMES:
        raise ProtocolError(
            "bad-request", f"engine must be one of {list(ENGINE_NAMES)}"
        )
    return value


def _check_backend(value: Any) -> str:
    if value not in BACKEND_NAMES:
        raise ProtocolError(
            "bad-request", f"backend must be one of {list(BACKEND_NAMES)}"
        )
    return value


def _check_kernel(value: Any) -> str | None:
    if value is not None and value not in KERNEL_NAMES:
        raise ProtocolError(
            "bad-request", f"kernel must be one of {list(KERNEL_NAMES)} or null"
        )
    return value


def _check_solver(value: Any) -> str | None:
    if value is not None and value not in SOLVER_NAMES:
        raise ProtocolError(
            "bad-request", f"solver must be one of {sorted(SOLVER_NAMES)} or null"
        )
    return value


def _check_query(value: Any) -> str:
    if not isinstance(value, str) or not value.strip():
        raise ProtocolError("bad-request", "query must be a non-empty string")
    return value


def _check_queries(value: Any) -> list[str]:
    if (
        not isinstance(value, list)
        or not value
        or not all(isinstance(q, str) and q.strip() for q in value)
    ):
        raise ProtocolError(
            "bad-request", "queries must be a non-empty list of NRE strings"
        )
    return value


def _check_optional_queries(value: Any) -> list[str]:
    if not isinstance(value, list) or not all(
        isinstance(q, str) and q.strip() for q in value
    ):
        raise ProtocolError(
            "bad-request", "queries must be a list of NRE strings"
        )
    return value


def _check_updates(value: Any) -> list[dict]:
    if not isinstance(value, list):
        raise ProtocolError("bad-request", "updates must be a list")
    for update in value:
        if not isinstance(update, dict):
            raise ProtocolError("bad-request", "each update must be an object")
        unknown = set(update) - {"op", "relation", "tuple"}
        if unknown:
            raise ProtocolError(
                "bad-request", f"update has unknown fields {sorted(unknown)}"
            )
        if update.get("op") not in ("insert", "delete"):
            raise ProtocolError(
                "bad-request", "update op must be 'insert' or 'delete'"
            )
        relation = update.get("relation")
        if not isinstance(relation, str) or not relation:
            raise ProtocolError(
                "bad-request", "update relation must be a non-empty string"
            )
        values = update.get("tuple")
        if not isinstance(values, list):
            raise ProtocolError("bad-request", "update tuple must be a list")
    return value


def _check_pair(value: Any):
    if value is None:
        return None
    if not isinstance(value, list) or len(value) != 2 or not all(
        isinstance(v, str) for v in value
    ):
        raise ProtocolError(
            "bad-request", "pair must be a two-element list of constants"
        )
    return value


def _check_job(value: Any) -> str:
    if not isinstance(value, str) or not value:
        raise ProtocolError("bad-request", "job must be a request id string")
    return value


def _check_trace_limit(value: Any):
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ProtocolError(
            "bad-request", "limit must be a positive integer or null"
        )
    return value


def _check_slow(value: Any) -> bool:
    if not isinstance(value, bool):
        raise ProtocolError("bad-request", "slow must be a boolean")
    return value


_COMMON = {
    "star_bound": (_check_star_bound, False, 2),
    "engine": (_check_engine, False, "compiled"),
    "backend": (_check_backend, False, "dict"),
    "kernel": (_check_kernel, False, None),
    "solver": (_check_solver, False, None),
}

_SPECS: dict[str, dict[str, tuple]] = {
    "apply_updates": {
        "document": (_check_document, True, None),
        "updates": (_check_updates, True, None),
        "queries": (_check_optional_queries, False, []),
        **_COMMON,
    },
    "exists": {"document": (_check_document, True, None), **_COMMON},
    "certain": {
        "document": (_check_document, True, None),
        "query": (_check_query, True, None),
        "pair": (_check_pair, False, None),
        **_COMMON,
    },
    "chase": {"document": (_check_document, True, None)},
    "evaluate_batch": {
        "document": (_check_document, True, None),
        "queries": (_check_queries, True, None),
        **_COMMON,
    },
    "ping": {},
    "stats": {},
    "shutdown": {},
    "cancel": {"job": (_check_job, True, None)},
    "metrics": {},
    "traces": {
        "limit": (_check_trace_limit, False, None),
        "slow": (_check_slow, False, False),
    },
}


def validate_request(data: Any) -> Request:
    """Validate a decoded request object; raise :class:`ProtocolError`.

    Fills defaults so that the returned :class:`Request` carries the fully
    normalised parameter dictionary (the fingerprinting contract).
    """
    if not isinstance(data, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")
    request_id = data.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError("bad-request", "request needs a non-empty string id")
    op = data.get("op")
    if op not in _SPECS:
        raise ProtocolError(
            "unknown-op",
            f"unknown op {op!r}; served ops: "
            f"{sorted(COMPUTE_OPS) + sorted(CONTROL_OPS)}",
        )
    unknown_top = set(data) - {"id", "op", "params", "deadline_s", "no_cache"}
    if unknown_top:
        raise ProtocolError(
            "bad-request", f"unknown request fields {sorted(unknown_top)}"
        )
    deadline_s = data.get("deadline_s")
    if deadline_s is not None and (
        isinstance(deadline_s, bool) or not isinstance(deadline_s, (int, float))
    ):
        raise ProtocolError("bad-request", "deadline_s must be a number")
    no_cache = data.get("no_cache", False)
    if not isinstance(no_cache, bool):
        raise ProtocolError("bad-request", "no_cache must be a boolean")

    spec = _SPECS[op]
    params = data.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("bad-request", "params must be an object")
    unknown = set(params) - set(spec)
    if unknown:
        raise ProtocolError(
            "bad-request", f"op {op!r} does not accept params {sorted(unknown)}"
        )
    normalised: dict[str, Any] = {}
    for name, (checker, required, default) in sorted(spec.items()):
        if name in params:
            normalised[name] = checker(params[name])
        elif required:
            raise ProtocolError(
                "bad-request", f"op {op!r} requires param {name!r}"
            )
        else:
            normalised[name] = default
    return Request(
        id=request_id,
        op=op,
        params=normalised,
        deadline_s=None if deadline_s is None else float(deadline_s),
        no_cache=no_cache,
    )


# --------------------------------------------------------------------- #
# Envelopes and the canonical wire rendering.
# --------------------------------------------------------------------- #


def ok_envelope(request_id: str | None, result: Any, cached: bool = False) -> dict:
    """A success envelope (``cached`` marks a result-cache hit)."""
    return {"id": request_id, "ok": True, "result": result, "cached": cached}


def error_envelope(request_id: str | None, code: str, message: str) -> dict:
    """A failure envelope with a stable error code."""
    return {"id": request_id, "ok": False, "error": {"code": code, "message": message}}


def canonical_bytes(obj: Any) -> bytes:
    """Deterministic JSON bytes (sorted keys, compact separators).

    Used both as the wire rendering and for byte-identity assertions
    between service responses and direct library calls.
    """
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def encode_line(obj: Any) -> bytes:
    """One protocol line: canonical JSON plus the newline terminator."""
    return canonical_bytes(obj) + b"\n"


def decode_line(line: bytes) -> Any:
    """Parse one wire line; raise ``ProtocolError('bad-json', ...)``."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("bad-json", f"request line over {MAX_LINE_BYTES} bytes")
    try:
        return json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError("bad-json", f"undecodable request line: {error}") from None


def request_fingerprint(op: str, params: dict) -> str:
    """SHA-256 over the canonical rendering of (op, normalised params).

    Pure value identity: two requests built independently from equal
    documents and parameters collide on purpose — that collision *is* the
    result cache.
    """
    return hashlib.sha256(
        canonical_bytes({"op": op, "params": params})
    ).hexdigest()
