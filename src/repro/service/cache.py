"""The fingerprint-keyed result cache — serving layer 0.

Every compute operation (``exists``/``certain``/``chase``/
``evaluate_batch``) is a pure function of its normalised parameters, so
its response can be replayed verbatim for any request with the same
:func:`repro.service.protocol.request_fingerprint`.  This cache sits in
the *server* process, in front of the worker pool; beneath it the worker
processes keep their own warm layers (the per-universe incremental SAT
pipelines of :mod:`repro.core.satpipeline`, the engine's cross-candidate
answer cache, and the cross-process automaton pickles of
:mod:`repro.graph.autocache`), so even a cache *miss* over a
previously-seen universe is far cheaper than a cold request.

Plain LRU over an ``OrderedDict``, guarded by a lock (the asyncio server
is single-threaded, but :func:`~repro.service.server.start_in_thread`
embeds the service next to foreign threads and the stats endpoint reads
concurrently).  Entries are the already-serialised result objects —
storing wire-ready values means a hit never re-serialises.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

DEFAULT_LIMIT = 1024


class ResultCache:
    """A bounded LRU mapping request fingerprints to response results."""

    def __init__(self, limit: int = DEFAULT_LIMIT):
        if limit < 1:
            raise ValueError("cache limit must be positive")
        self.limit = limit
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> tuple[bool, Any]:
        """Return ``(hit, value)``; a hit refreshes the entry's recency."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            return True, value

    def put(self, key: str, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the least recent past limit."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.limit:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters survive — they are telemetry)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        """A JSON-ready snapshot for the ``stats`` operation."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "evictions": self.evictions,
                "hits": self.hits,
                "limit": self.limit,
                "misses": self.misses,
            }
