"""The asyncio JSON-lines server: accept → validate → cache → worker → respond.

One connection handler per client; requests on a connection are processed
in order (a client that wants concurrency opens several connections or
uses ``evaluate_batch``), while connections themselves are served
concurrently and fan out over the worker pool.  The request lifecycle:

1. **accept** a line (bounded by the protocol's line limit);
2. **validate** it into a normalised :class:`~repro.service.protocol.
   Request` — malformed input is answered with an error envelope without
   touching the pool;
3. **cache probe**: a compute request whose fingerprint is present in the
   :class:`~repro.service.cache.ResultCache` is answered immediately with
   ``"cached": true``;
4. **worker**: otherwise the request is admitted to the
   :class:`~repro.service.jobs.JobRegistry` and executed on the
   :class:`~repro.service.workers.WorkerPool`, bounded by its deadline;
5. **respond** with the success or error envelope, and cache the result.

Control operations (``ping``/``stats``/``shutdown``/``cancel``) are
answered inline by the server itself.  ``shutdown`` responds first, then
stops accepting and unblocks :func:`run_server`.

Two entry points: :func:`run_server` (blocking, the ``repro serve`` CLI)
and :func:`start_in_thread` (background thread + handle, used by tests,
benchmarks, and :mod:`examples.service_client`).
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from typing import Callable

from repro import telemetry
from repro.telemetry import (
    TraceBuffer,
    slow_threshold,
    stitch_request_trace,
)
from repro.service.cache import DEFAULT_LIMIT, ResultCache
from repro.service.jobs import DuplicateJobError, JobRegistry
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    decode_line,
    encode_line,
    error_envelope,
    ok_envelope,
    validate_request,
)
from repro.service.workers import WorkerPool


class ExchangeService:
    """The protocol state machine, independent of any particular transport."""

    def __init__(
        self,
        pool: WorkerPool,
        cache: ResultCache | None = None,
        jobs: JobRegistry | None = None,
    ):
        self.pool = pool
        self.cache = cache
        self.jobs = jobs if jobs is not None else JobRegistry()
        self.connections = 0
        self.requests = 0
        self.traces = TraceBuffer()
        self._server: asyncio.AbstractServer | None = None
        self._metrics_server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self.address: tuple[str, int] | None = None
        self.metrics_address: tuple[str, int] | None = None

    # ------------------------------------------------------------------ #
    # Request handling.
    # ------------------------------------------------------------------ #

    async def handle_line(self, line: bytes) -> dict:
        """Process one wire line into one response envelope."""
        try:
            data = decode_line(line)
        except ProtocolError as error:
            return error_envelope(None, error.code, error.message)
        echo_id = data.get("id") if isinstance(data, dict) else None
        if not isinstance(echo_id, str):
            echo_id = None
        try:
            request = validate_request(data)
        except ProtocolError as error:
            return error_envelope(echo_id, error.code, error.message)
        self.requests += 1
        if request.op == "ping":
            return ok_envelope(request.id, {"pong": True, "protocol": PROTOCOL_VERSION})
        if request.op == "stats":
            return ok_envelope(request.id, self.snapshot())
        if request.op == "shutdown":
            self.request_shutdown()
            return ok_envelope(request.id, {"stopping": True})
        if request.op == "cancel":
            outcome = self.jobs.cancel(request.params["job"])
            return ok_envelope(
                request.id, {"job": request.params["job"], "outcome": outcome}
            )
        if request.op == "metrics":
            return ok_envelope(request.id, self.metrics_snapshot())
        if request.op == "traces":
            return ok_envelope(
                request.id,
                {
                    "stats": self.traces.stats(),
                    "traces": self.traces.snapshot(
                        limit=request.params["limit"],
                        slow=request.params["slow"],
                    ),
                },
            )
        return await self._compute(request)

    async def _compute(self, request: Request) -> dict:
        fingerprint = request.fingerprint()
        collect = telemetry.enabled()
        if collect:
            telemetry.inc("service.requests")
        use_cache = self.cache is not None and not request.no_cache
        if use_cache:
            hit, value = self.cache.get(fingerprint)  # type: ignore[union-attr]
            if hit:
                if collect:
                    telemetry.inc("service.cache_hits")
                return ok_envelope(request.id, value, cached=True)
            if collect:
                telemetry.inc("service.cache_misses")
        if request.deadline_s is not None and request.deadline_s <= 0:
            return error_envelope(
                request.id,
                "deadline-exceeded",
                "deadline elapsed before the job could be scheduled",
            )
        submit_ts = time.time()
        started = time.perf_counter()
        try:
            # Admission precedes submission: a duplicate id is rejected
            # before it can occupy a worker slot.
            job = self.jobs.admit(
                request.id,
                request.op,
                fingerprint,
                lambda: self.pool.submit(request.op, request.params),
                request.deadline_s,
            )
        except DuplicateJobError:
            return error_envelope(
                request.id, "duplicate-id", f"request id {request.id!r} is in flight"
            )
        future = job.future
        try:
            result = await asyncio.wait_for(
                asyncio.wrap_future(future), timeout=job.remaining()
            )
        except asyncio.TimeoutError:
            future.cancel()  # best-effort: de-queues the job if still pending
            self.jobs.finish(job, "expired")
            return error_envelope(
                request.id,
                "deadline-exceeded",
                f"job exceeded its {request.deadline_s:.3f}s budget",
            )
        except asyncio.CancelledError:
            if future.cancelled():
                # A `cancel` operation revoked the queued job.
                self.jobs.finish(job, "cancelled")
                return error_envelope(
                    request.id, "cancelled", "job cancelled before completion"
                )
            self.jobs.finish(job, "failed")
            raise  # the server itself is being torn down
        except Exception as error:  # noqa: BLE001 - e.g. BrokenProcessPool
            self.jobs.finish(job, "failed")
            return error_envelope(
                request.id, "internal-error", f"{type(error).__name__}: {error}"
            )
        sidecar = None
        if isinstance(result, dict) and result.get("__worker__") == 1:
            # The pool wraps every result in the telemetry envelope;
            # unwrap before caching/responding so wire responses stay
            # byte-identical to direct execute_request calls.
            sidecar = result.get("telemetry")
            result = result.get("value")
        if collect:
            self._record_request(
                request, submit_ts, time.perf_counter() - started, sidecar
            )
        if job.cancel_requested:
            # A `cancel` op hit after a worker picked the job up: the
            # computation finished, but the documented contract is that a
            # cancelled job's result is discarded (and never cached).
            self.jobs.finish(job, "cancelled")
            return error_envelope(
                request.id, "cancelled", "job cancelled while running"
            )
        if isinstance(result, dict) and "__error__" in result:
            self.jobs.finish(job, "failed")
            marker = result["__error__"]
            return error_envelope(request.id, marker["code"], marker["message"])
        self.jobs.finish(job, "completed")
        if use_cache:
            self.cache.put(fingerprint, result)  # type: ignore[union-attr]
        return ok_envelope(request.id, result, cached=False)

    def _record_request(
        self,
        request: Request,
        submit_ts: float,
        total_s: float,
        sidecar: dict | None,
    ) -> None:
        """Fold one completed request into the registry and trace rings.

        Merges the worker's shipped counter deltas (except on the inline
        lane, whose workers already share this process's registry),
        observes the latency histograms, stitches the full trace — queue
        wait plus the worker's span tree — and records it, flagging the
        request slow when it ran past the deadline fraction
        (:func:`repro.telemetry.slow_threshold`).
        """
        worker_span = None
        if isinstance(sidecar, dict):
            worker_span = sidecar.get("span")
            deltas = sidecar.get("metrics")
            if isinstance(deltas, dict) and self.pool.mode != "inline":
                telemetry.get_registry().merge_deltas(deltas)
        telemetry.observe("service.request_seconds", total_s)
        if isinstance(worker_span, dict):
            telemetry.observe(
                "service.queue_wait_seconds",
                max(0.0, float(worker_span.get("start_ts", 0.0)) - submit_ts),
            )
        else:
            worker_span = None
        trace = stitch_request_trace(
            request.id, request.op, submit_ts, total_s, worker_span
        )
        slow = total_s >= slow_threshold(request.deadline_s)
        if slow:
            telemetry.inc("service.slow_requests")
        self.traces.add(trace, slow=slow)

    def metrics_snapshot(self) -> dict:
        """The ``metrics`` response body: the full registry + service state."""
        self.refresh_gauges()
        return {
            "enabled": telemetry.enabled(),
            "metrics": telemetry.get_registry().to_dict(),
            "service": self.snapshot(),
            "traces": self.traces.stats(),
        }

    def refresh_gauges(self) -> None:
        """Mirror point-in-time service state into registry gauges."""
        if not telemetry.enabled():
            return
        telemetry.set_gauge("service.active_jobs", len(self.jobs.active()))
        telemetry.set_gauge("service.connections", self.connections)
        if self.cache is not None:
            telemetry.set_gauge(
                "service.cache_entries", self.cache.stats()["entries"]
            )

    def snapshot(self) -> dict:
        """The ``stats`` response body."""
        return {
            "active_jobs": self.jobs.active(),
            "cache": None if self.cache is None else self.cache.stats(),
            "connections": self.connections,
            "jobs": self.jobs.stats(),
            "pool": self.pool.stats(),
            "protocol": PROTOCOL_VERSION,
            "requests": self.requests,
        }

    # ------------------------------------------------------------------ #
    # Transport.
    # ------------------------------------------------------------------ #

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client connection until EOF or a transport error."""
        self.connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, OSError):
                    # Over-long line, a reset peer, or a socket torn down
                    # mid-read during shutdown: nothing sane to answer.
                    break
                if not line:
                    break  # EOF: the client is done
                if not line.strip():
                    continue
                envelope = await self.handle_line(line.strip())
                writer.write(encode_line(envelope))
                try:
                    await writer.drain()
                except OSError:
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def serve(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind the listening socket; returns the actual (host, port)."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self.handle_connection, host, port, limit=MAX_LINE_BYTES
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def serve_metrics(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind the plain-HTTP introspection listener (``--metrics-port``).

        Serves ``GET /metrics`` (Prometheus text-exposition format, so a
        stock Prometheus scraper can point straight at it) and
        ``GET /healthz`` (liveness).  Returns the bound (host, port).
        """
        self._metrics_server = await asyncio.start_server(
            self._handle_metrics_connection, host, port
        )
        sockname = self._metrics_server.sockets[0].getsockname()
        self.metrics_address = (sockname[0], sockname[1])
        return self.metrics_address

    async def _handle_metrics_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one HTTP/1.0-style request and close the connection."""
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=10)
            while True:  # drain headers until the blank line (or EOF)
                header = await asyncio.wait_for(reader.readline(), timeout=10)
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.split()
            path = parts[1].decode("latin-1") if len(parts) >= 2 else ""
            if path.split("?", 1)[0] == "/metrics":
                self.refresh_gauges()
                status, body = "200 OK", telemetry.get_registry().render_prometheus()
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            elif path.split("?", 1)[0] == "/healthz":
                status, body = "200 OK", "ok\n"
                content_type = "text/plain; charset=utf-8"
            else:
                status, body = "404 Not Found", "not found\n"
                content_type = "text/plain; charset=utf-8"
            payload = body.encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + payload
            )
            await writer.drain()
        except (asyncio.TimeoutError, OSError, ValueError):
            pass  # a malformed or stalled scraper must not wedge the plane
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def serve_forever(self) -> None:
        """Run until :meth:`request_shutdown` (requires :meth:`serve` first)."""
        assert self._server is not None and self._shutdown is not None
        try:
            await self._shutdown.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            if self._metrics_server is not None:
                self._metrics_server.close()
                await self._metrics_server.wait_closed()

    def request_shutdown(self) -> None:
        """Unblock :meth:`serve_forever`; safe from any thread, idempotent."""
        if self._loop is None or self._shutdown is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._shutdown.set)
        except RuntimeError:
            pass  # the loop already exited — there is nothing left to stop


def run_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: int = 1,
    cache_limit: int = DEFAULT_LIMIT,
    announce: Callable[[str], None] | None = None,
    snapshot_dir: str | None = None,
    metrics_port: int | None = None,
) -> None:
    """Blocking server entry point (the ``repro serve`` CLI command).

    ``cache_limit == 0`` disables the result cache; ``port == 0`` binds an
    ephemeral port.  ``snapshot_dir`` (CLI: ``--snapshot-dir``) points the
    worker pool at a persistent per-tenant witness snapshot store —
    pinned inside each worker process by the pool initializer — letting
    warm tenants skip re-chasing after a restart (see
    :func:`repro.service.workers.snapshot_store`).  ``announce`` (default:
    print) receives exactly one line naming the bound address — scripts
    scrape it to find an ephemeral port, so its shape is part of the CLI
    contract::

        repro-service listening on 127.0.0.1:8765 (workers=2, pid=4242)

    ``metrics_port`` (CLI: ``--metrics-port``) additionally binds the
    plain-HTTP ``/metrics`` + ``/healthz`` introspection listener on the
    same host; its address is announced on a *second* line (the primary
    announce-line contract above is unchanged)::

        repro-metrics listening on 127.0.0.1:9090
    """
    pool = WorkerPool(workers, snapshot_dir=snapshot_dir)
    if pool.mode == "process":
        pool.warm()  # fork every worker before the event loop exists
    service = ExchangeService(
        pool, ResultCache(cache_limit) if cache_limit > 0 else None
    )

    async def main() -> None:
        bound_host, bound_port = await service.serve(host, port)
        lines = [
            f"repro-service listening on {bound_host}:{bound_port} "
            f"(workers={pool.workers if pool.mode == 'process' else 'inline'}, "
            f"pid={os.getpid()})"
        ]
        if metrics_port is not None:
            metrics_host, bound_metrics_port = await service.serve_metrics(
                host, metrics_port
            )
            lines.append(
                f"repro-metrics listening on {metrics_host}:{bound_metrics_port}"
            )
        for line in lines:
            if announce is not None:
                announce(line)
            else:
                # flush=True: scrapers read this through a pipe, where stdout
                # is block-buffered — an unflushed announce line never
                # arrives.
                print(line, flush=True)
        await service.serve_forever()

    try:
        asyncio.run(main())
    finally:
        pool.shutdown()


class ServiceHandle:
    """An embedded server running in a background thread."""

    def __init__(
        self,
        service: ExchangeService,
        pool: WorkerPool,
        thread: threading.Thread,
        host: str,
        port: int,
        metrics_address: tuple[str, int] | None = None,
    ):
        self.service = service
        self.pool = pool
        self.thread = thread
        self.host = host
        self.port = port
        self.metrics_address = metrics_address
        """The bound ``/metrics`` HTTP address, when requested (host, port)."""

    def client(self, timeout: float = 120.0):
        """A fresh blocking client bound to this server."""
        from repro.service.client import ServiceClient

        return ServiceClient(self.host, self.port, timeout=timeout)

    def close(self) -> None:
        """Stop the server, join its thread, and shut the pool down."""
        self.service.request_shutdown()
        self.thread.join(timeout=30)
        self.pool.shutdown()

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def start_in_thread(
    workers: int = 1,
    cache_limit: int = DEFAULT_LIMIT,
    host: str = "127.0.0.1",
    port: int = 0,
    snapshot_dir: str | None = None,
    metrics_port: int | None = None,
) -> ServiceHandle:
    """Start a server in a daemon thread; returns a :class:`ServiceHandle`.

    The worker pool is created and warmed *in the calling thread* before
    the event-loop thread starts, so worker processes are forked from a
    quiescent parent.  ``snapshot_dir`` mirrors :func:`run_server`'s
    per-tenant witness snapshot store (pinned per worker process — the
    calling process's environment is not touched).
    """
    pool = WorkerPool(workers, snapshot_dir=snapshot_dir)
    if pool.mode == "process":
        pool.warm()
    service = ExchangeService(
        pool, ResultCache(cache_limit) if cache_limit > 0 else None
    )
    ready = threading.Event()
    box: dict = {}

    def runner() -> None:
        async def main() -> None:
            try:
                box["address"] = await service.serve(host, port)
                if metrics_port is not None:
                    box["metrics_address"] = await service.serve_metrics(
                        host, metrics_port
                    )
            finally:
                ready.set()
            await service.serve_forever()

        try:
            asyncio.run(main())
        except Exception as error:  # noqa: BLE001 - surfaced to the caller
            box.setdefault("error", error)
            ready.set()

    thread = threading.Thread(target=runner, name="repro-service", daemon=True)
    thread.start()
    if not ready.wait(timeout=60):
        pool.shutdown()
        raise RuntimeError("service thread failed to start within 60s")
    if "error" in box or "address" not in box:
        pool.shutdown()
        raise RuntimeError(f"service failed to bind: {box.get('error')}")
    bound_host, bound_port = box["address"]
    return ServiceHandle(
        service, pool, thread, bound_host, bound_port,
        metrics_address=box.get("metrics_address"),
    )
