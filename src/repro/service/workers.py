"""Request execution: pure handlers plus the worker pool that runs them.

:func:`execute_request` is the single compute entry point — a *stateless*
function from (operation name, normalised JSON parameters) to a JSON-ready
result dictionary.  Statelessness is what lets the same function run

* inline in the server process (``--workers 0``, tests),
* in every ``ProcessPoolExecutor`` worker (the serving deployment), and
* directly from library code (the differential tests assert that the
  service returns byte-identical results to these direct calls).

The *caches* behind the handlers are per-process and value-keyed, so the
function stays referentially transparent while each worker process warms
up: its :mod:`repro.core.satpipeline` solvers, the shared compiled
:class:`~repro.engine.query.QueryEngine`, and the on-disk automaton cache
all persist across the requests that land on that worker.  Workers never
share mutable state with each other or with the server — requests and
results cross the process boundary as plain dictionaries.

Handler errors never cross the pool as exceptions (unpicklable exception
state would kill the future); they come back as an ``{"__error__":
{"code", "message"}}`` marker that the server translates into the error
envelope.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable

from repro.chase.egd_chase import chase_with_egds
from repro.chase.pattern_chase import chase_pattern
from repro.core.certain import (
    CertainAnswers,
    certain_answers_batch,
    certain_answers_nre,
    find_counterexample_solution,
)
from repro.core.existence import ExistenceResult, decide_existence
from repro.core.solution import is_solution
from repro.core.search import CandidateSearchConfig
from repro.engine.query import ReferenceEngine, default_engine
from repro.errors import BoundExceeded, NotSupportedError, ParseError, ReproError
from repro.graph.parser import parse_nre
from repro.io.json_io import (
    document_from_dict,
    graph_to_dict,
    pattern_to_dict,
)
from repro import telemetry
from repro.telemetry import fold_stats, span

# --------------------------------------------------------------------- #
# Result serialisation — shared by the handlers and the differential
# tests (direct library call -> same dictionary -> byte-identity).
# --------------------------------------------------------------------- #


def existence_result_to_dict(result: ExistenceResult) -> dict:
    """Wire shape of an existence decision."""
    return {
        "detail": result.detail,
        "method": result.method,
        "status": result.status.value,
        "witness": None if result.witness is None else graph_to_dict(result.witness),
    }


def certain_answers_to_dict(result: CertainAnswers) -> dict:
    """Wire shape of a certain-answer set (answers sorted for determinism)."""
    return {
        "answers": [list(pair) for pair in sorted(result.answers, key=repr)],
        "method": result.method,
        "no_solution": result.no_solution,
        "solutions_examined": result.solutions_examined,
    }


# --------------------------------------------------------------------- #
# Handlers.
# --------------------------------------------------------------------- #


def _engine(params: dict):
    """The evaluation back-end for one request.

    ``compiled`` returns the *process-shared* engine on purpose: its
    cross-candidate cache is how consecutive requests over the same
    universe amortise inside one worker.  ``reference`` gets a fresh
    oracle (no caches — that is its job).  The ``backend`` parameter
    (``dict``/``csr``) and the ``kernel`` parameter (``vector``/
    ``scalar``) route to the matching warm engine — one shared instance
    per (storage backend, kernel), so csr-tenant requests reuse frozen
    graph states across the worker's lifetime.
    """
    if params.get("engine") == "reference":
        return ReferenceEngine()
    return default_engine(params.get("backend") or "dict", params.get("kernel"))


def _search_config(params: dict) -> CandidateSearchConfig:
    return CandidateSearchConfig(star_bound=params.get("star_bound", 2))


# --------------------------------------------------------------------- #
# Per-tenant witness snapshots: with REPRO_SNAPSHOT_DIR set (the CLI's
# `repro serve --snapshot-dir`), each worker persists the verified
# existence witness of every tenant document it decides.  After a server
# restart the witness is *loaded and machine-verified* instead of being
# re-derived through chase + candidate search — the warm-tenant path.
# Off by default: without the environment variable nothing changes, and
# responses stay byte-identical to direct library calls.
# --------------------------------------------------------------------- #

_SNAPSHOT_ENV = "REPRO_SNAPSHOT_DIR"

_SNAPSHOT_DIR_OVERRIDE: str | None = None
"""Per-worker snapshot directory pinned by the pool initializer.

``None`` means "not configured by a pool" — the environment variable
then decides.  The override lives in the *worker* process for process
pools, so two servers in one parent process never see each other's
configuration (the environment is not mutated)."""


def _initialize_worker(
    snapshot_dir: str | None, telemetry_override: bool | None = None
) -> None:
    """Pool initializer: pin this worker's snapshot dir + telemetry state.

    ``telemetry_override`` replays the parent's programmatic
    :func:`repro.telemetry.set_enabled` override into the worker process
    (``None`` leaves the worker on environment resolution, which spawned
    workers inherit anyway).
    """
    global _SNAPSHOT_DIR_OVERRIDE
    _SNAPSHOT_DIR_OVERRIDE = snapshot_dir
    if telemetry_override is not None:
        telemetry.set_enabled(telemetry_override)


def snapshot_store():
    """This process's tenant snapshot store, or ``None`` when disabled.

    A pool-configured directory (``repro serve --snapshot-dir``) wins;
    otherwise ``REPRO_SNAPSHOT_DIR`` decides, so direct library calls and
    pool workers of an unconfigured server behave identically.
    """
    from repro.graph.snapshot import SnapshotStore

    directory = _SNAPSHOT_DIR_OVERRIDE
    if directory is None:
        directory = os.environ.get(_SNAPSHOT_ENV, "").strip()
    if not directory:
        return None
    return SnapshotStore(directory)


def _witness_key(params: dict) -> str:
    """The snapshot key for one exists request (full normalised params)."""
    from repro.service.protocol import request_fingerprint

    return request_fingerprint("exists-witness", params)


def _handle_exists(params: dict) -> dict:
    setting, instance = document_from_dict(params["document"])
    store = snapshot_store()
    key = _witness_key(params) if store is not None else ""
    if store is not None:
        witness = store.load(key)
        if witness is not None and is_solution(instance, witness, setting):
            # The snapshot is advisory, the verification is authoritative:
            # a stale or foreign witness that fails is_solution falls
            # through to the full decision below.
            return {
                "detail": "verified witness restored from the snapshot store",
                "method": "snapshot-witness",
                "status": "exists",
                "witness": graph_to_dict(witness),
            }
    result = decide_existence(
        setting,
        instance,
        search_config=_search_config(params),
        engine=_engine(params),
        solver=params.get("solver"),
    )
    if store is not None and result.witness is not None:
        store.store(key, result.witness.freeze())
    return existence_result_to_dict(result)


def _handle_certain(params: dict) -> dict:
    setting, instance = document_from_dict(params["document"])
    query = parse_nre(params["query"])
    engine = _engine(params)
    config = _search_config(params)
    solver = params.get("solver")
    if params.get("pair") is not None:
        pair = tuple(params["pair"])
        counterexample = find_counterexample_solution(
            setting, instance, query, pair, config=config, engine=engine,
            solver=solver,
        )
        return {
            "certain": counterexample is None,
            "counterexample": (
                None if counterexample is None else graph_to_dict(counterexample)
            ),
            "pair": list(pair),
        }
    result = certain_answers_nre(
        setting, instance, query, config=config, engine=engine, solver=solver
    )
    return certain_answers_to_dict(result)


def _handle_chase(params: dict) -> dict:
    setting, instance = document_from_dict(params["document"])
    if setting.egds():
        result = chase_with_egds(
            setting.st_tgds, setting.egds(), instance, alphabet=setting.alphabet
        )
        if result.failed:
            left, right = result.failure_witness  # type: ignore[misc]
            return {
                "failed": True,
                "failure": [left, right],
                "pattern": None,
                "stats": _chase_stats(result),
            }
    else:
        result = chase_pattern(setting.st_tgds, instance, alphabet=setting.alphabet)
    return {
        "failed": False,
        "failure": None,
        "pattern": pattern_to_dict(result.expect_pattern()),
        "stats": _chase_stats(result),
    }


def _chase_stats(result) -> dict:
    """The wire shape of a chase run's counters.

    Delegates to :meth:`~repro.chase.result.ChaseStats.as_dict` — the one
    source of truth — so counters added to the dataclass reach the wire
    (and the telemetry registry) without touching this module.
    """
    return result.stats.as_dict()


def _handle_evaluate_batch(params: dict) -> dict:
    setting, instance = document_from_dict(params["document"])
    queries = [parse_nre(q) for q in params["queries"]]
    results = certain_answers_batch(
        setting,
        instance,
        queries,
        config=_search_config(params),
        engine=_engine(params),
        solver=params.get("solver"),
    )
    return {
        "queries": list(params["queries"]),
        "results": [certain_answers_to_dict(r) for r in results],
    }


def _handle_apply_updates(params: dict) -> dict:
    """Stream an update batch into a tenant's live incremental chase.

    The tenant state is keyed by document value: a warm state checked in
    by a previous request over this exact document resumes with its
    trigger, quotient, and answer layers intact (O(affected) repair); a
    cold miss bootstraps from scratch.  Either way the response is a pure
    function of (document, updates, queries) — the updated document is
    returned so the client can address the *next* batch to the new value —
    and answers are byte-identical to a from-scratch ``evaluate_batch``
    against the updated document.
    """
    from repro.core.certain import (
        checkin_incremental_state,
        checkout_incremental_state,
    )
    from repro.core.satpipeline import advance_pipeline
    from repro.errors import SchemaError
    from repro.io.json_io import document_to_dict

    setting, instance = document_from_dict(params["document"])
    queries = [parse_nre(q) for q in params["queries"]]
    state = checkout_incremental_state(setting, instance)
    try:
        applied = state.apply_updates(params["updates"])
    except (SchemaError, ValueError) as error:
        # Batches are validated before any mutation, so the state is
        # still consistent — hand it back warm and report bad-request.
        checkin_incremental_state(state)
        raise ValueError(str(error)) from None
    engine = _engine(params)
    results = [
        certain_answers_to_dict(state.certain_answers(query, engine=engine))
        for query in queries
    ]
    failure = state.failure_witness()
    response = {
        "applied": {
            "deletes": applied["deletes"],
            "inserts": applied["inserts"],
            "noops": applied["noops"],
        },
        "document": document_to_dict(state.setting, state.instance),
        "failed": state.failed,
        "failure": None if failure is None else [failure[0], failure[1]],
        "queries": list(params["queries"]),
        "results": results,
    }
    checkin_incremental_state(state)
    # Roll the per-universe SAT pipeline's working set forward too, so
    # later certain/exists requests on the updated document start warm.
    advance_pipeline(setting, instance, state.instance, params.get("solver"))
    return response


_HANDLERS: dict[str, Callable[[dict], dict]] = {
    "apply_updates": _handle_apply_updates,
    "certain": _handle_certain,
    "chase": _handle_chase,
    "evaluate_batch": _handle_evaluate_batch,
    "exists": _handle_exists,
}


def _error_marker(code: str, message: str) -> dict:
    return {"__error__": {"code": code, "message": message}}


def execute_request(op: str, params: dict) -> dict:
    """Run one compute operation; never raises (see the module docstring)."""
    handler = _HANDLERS.get(op)
    if handler is None:
        return _error_marker("unknown-op", f"no handler for op {op!r}")
    try:
        return handler(params)
    except BoundExceeded as error:
        return _error_marker("bounds-exceeded", str(error))
    except NotSupportedError as error:
        return _error_marker("unsupported", str(error))
    except (ParseError, KeyError, TypeError, ValueError) as error:
        return _error_marker(
            "bad-request", f"{type(error).__name__}: {error}"
        )
    except ReproError as error:
        return _error_marker("internal-error", f"{type(error).__name__}: {error}")
    except Exception as error:  # noqa: BLE001 - the pool must stay alive
        return _error_marker("internal-error", f"{type(error).__name__}: {error}")


def _flush_worker_telemetry() -> None:
    """Fold this process's warm caches' cumulative stats into the registry.

    The per-process :class:`~repro.engine.query.QueryEngine` instances and
    :class:`~repro.core.satpipeline.SatPipeline` solvers accumulate
    counters across requests; folding is delta-based, so flushing after
    every request ships exactly the new work.
    """
    from repro.core.satpipeline import live_pipelines
    from repro.engine.query import live_engines

    for engine in live_engines():
        fold_stats("engine", engine.stats)
    for pipeline in live_pipelines():
        stats = getattr(pipeline.solver, "stats", None)
        if stats is not None:
            fold_stats("solver", stats)


def traced_execute_request(op: str, params: dict) -> dict:
    """:func:`execute_request` wrapped in the telemetry envelope.

    The pool entry point.  The result is wrapped as ``{"__worker__": 1,
    "value": <execute_request result>, "telemetry": <sidecar|None>}`` —
    the server unwraps the value (so responses stay byte-identical to
    direct :func:`execute_request` calls) and consumes the sidecar:
    the worker's serialized span tree plus the counter deltas this
    request produced, shipped for server-side stitching and aggregation.
    ``execute_request`` itself stays pure and envelope-free for library
    callers and the differential tests.
    """
    if not telemetry.enabled():
        return {"__worker__": 1, "value": execute_request(op, params),
                "telemetry": None}
    with span("worker.execute", op=op, pid=os.getpid()) as root:
        result = execute_request(op, params)
    _flush_worker_telemetry()
    sidecar = {
        "span": root.to_dict(),
        "metrics": telemetry.get_registry().export_deltas(),
    }
    return {"__worker__": 1, "value": result, "telemetry": sidecar}


def _warm_worker() -> str:
    """Force a worker process to exist and pay its import cost up front.

    The short sleep keeps each warm-up job occupying a worker long enough
    that the pool spawns its full complement instead of funnelling every
    job through the first process.
    """
    time.sleep(0.05)
    return "warm"


class WorkerPool:
    """The request executor: N worker processes, or a serialised inline lane.

    ``workers >= 1`` builds a ``ProcessPoolExecutor`` — the serving
    configuration, where each worker process accumulates its own warm
    caches.  ``workers == 0`` runs requests on a single-threaded
    ``ThreadPoolExecutor`` inside the server process: zero fork cost (CI
    smoke jobs, debugging), and the single thread serialises all library
    calls, which keeps the non-thread-safe solver pipelines safe.

    ``snapshot_dir`` configures the per-tenant witness snapshot store for
    this pool's workers (see :func:`snapshot_store`).  For process pools
    the setting is pinned inside each worker process via the pool
    initializer — the parent's environment is never touched, so two
    servers embedded in one process keep independent configurations.
    The inline lane runs in the server process itself, where an explicit
    ``snapshot_dir`` necessarily sets the process-wide override (shared
    with direct library calls in that process — documented, tutorialised
    behaviour of the in-process lane).
    """

    def __init__(self, workers: int = 1, snapshot_dir: str | None = None):
        self.workers = max(0, int(workers))
        self.snapshot_dir = snapshot_dir or None
        if self.workers == 0:
            self.mode = "inline"
            if self.snapshot_dir is not None:
                _initialize_worker(self.snapshot_dir)
            self._executor: ThreadPoolExecutor | ProcessPoolExecutor = (
                ThreadPoolExecutor(max_workers=1, thread_name_prefix="repro-inline")
            )
        else:
            self.mode = "process"
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_initialize_worker,
                initargs=(self.snapshot_dir, telemetry.enabled_override()),
            )
        self.submitted = 0

    def submit(self, op: str, params: dict) -> Future:
        """Schedule one request; the future resolves to the wrapped result.

        The future's value is :func:`traced_execute_request`'s envelope —
        the server unwraps it (and consumes the telemetry sidecar) before
        building the response.
        """
        self.submitted += 1
        return self._executor.submit(traced_execute_request, op, params)

    def warm(self, timeout: float = 120.0) -> None:
        """Spawn every worker and pay library import cost before serving.

        Called before the event loop (and any helper threads) start, so
        all forking happens from a quiescent, single-threaded parent.
        """
        futures = [
            self._executor.submit(_warm_worker)
            for _ in range(max(1, self.workers))
        ]
        for future in futures:
            future.result(timeout=timeout)

    def stats(self) -> dict:
        """A JSON-ready snapshot for the ``stats`` operation."""
        return {"mode": self.mode, "submitted": self.submitted, "workers": self.workers}

    def shutdown(self) -> None:
        """Stop the executor, abandoning queued work.

        ``wait=True``: joining the worker processes (and the executor's
        management thread) here keeps interpreter exit quiet — with
        ``wait=False`` CPython's own atexit hook races the half-closed
        wakeup pipe and prints an ignored ``OSError`` on some exits.
        """
        self._executor.shutdown(wait=True, cancel_futures=True)
