"""Job bookkeeping: deadlines, cancellation, and serving telemetry.

A *job* is one compute request in flight: admitted after validation and a
result-cache miss, finished when its worker future resolves (or its
deadline elapses, or a ``cancel`` request names it).  The registry is the
server's source of truth for the ``cancel`` and ``stats`` operations.

Deadline semantics: ``deadline_s`` is a *budget from admission*, turned
into an absolute monotonic deadline here.  The server awaits the worker
future only up to the remaining budget; a request admitted with a
non-positive budget expires immediately, without ever reaching the pool.
Cancellation is best-effort in the usual executor sense — a job still
queued is cancelled for real, a job already running in a worker process
completes there but its result is discarded and the client gets the
``cancelled`` error envelope.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class Job:
    """One admitted compute request."""

    id: str
    op: str
    fingerprint: str
    future: Future
    deadline: float | None
    """Absolute :func:`time.monotonic` deadline, or ``None`` (no budget)."""
    admitted_at: float = field(default_factory=time.monotonic)
    cancel_requested: bool = False
    """Set when a ``cancel`` op hit this job after a worker picked it up —
    the server must discard the result and answer ``cancelled``."""

    def remaining(self) -> float | None:
        """Seconds of budget left (may be negative), or ``None``."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def expired(self) -> bool:
        """Whether the deadline has already elapsed."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0


class DuplicateJobError(Exception):
    """A request id that is already in flight was admitted again."""


class JobRegistry:
    """Tracks in-flight jobs and counts every terminal outcome."""

    def __init__(self):
        self._active: dict[str, Job] = {}
        self._lock = threading.Lock()
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.expired = 0

    def admit(
        self,
        request_id: str,
        op: str,
        fingerprint: str,
        future_factory: Callable[[], Future],
        deadline_s: float | None,
    ) -> Job:
        """Register a new in-flight job; reject duplicate active ids.

        The worker future is created through ``future_factory`` *after*
        the duplicate check succeeds (and under the registry lock), so a
        rejected duplicate never occupies a worker slot.
        """
        deadline = None if deadline_s is None else time.monotonic() + deadline_s
        with self._lock:
            if request_id in self._active:
                raise DuplicateJobError(request_id)
            job = Job(request_id, op, fingerprint, future_factory(), deadline)
            self._active[request_id] = job
            self.admitted += 1
        return job

    def cancel(self, request_id: str) -> str:
        """Cancel the named job; returns ``cancelled``/``running``/``not-found``.

        ``running`` means the future could not be revoked because a worker
        already picked it up: the worker finishes its (discarded)
        computation, but ``cancel_requested`` is set so the job's owner
        still receives the ``cancelled`` envelope instead of the result.
        """
        with self._lock:
            job = self._active.get(request_id)
        if job is None:
            return "not-found"
        if job.future.cancel():
            return "cancelled"
        job.cancel_requested = True
        return "running"

    def finish(self, job: Job, outcome: str) -> None:
        """Retire a job with its terminal outcome (one of the counters)."""
        with self._lock:
            self._active.pop(job.id, None)
            if outcome == "completed":
                self.completed += 1
            elif outcome == "failed":
                self.failed += 1
            elif outcome == "cancelled":
                self.cancelled += 1
            elif outcome == "expired":
                self.expired += 1
            else:  # pragma: no cover - programming error, keep counters honest
                raise ValueError(f"unknown job outcome {outcome!r}")

    def active(self) -> list[str]:
        """Ids of the jobs currently in flight (sorted for determinism)."""
        with self._lock:
            return sorted(self._active)

    def stats(self) -> dict:
        """A JSON-ready snapshot for the ``stats`` operation."""
        with self._lock:
            return {
                "active": len(self._active),
                "admitted": self.admitted,
                "cancelled": self.cancelled,
                "completed": self.completed,
                "expired": self.expired,
                "failed": self.failed,
            }
