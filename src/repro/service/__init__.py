"""The serving layer: a persistent process that amortizes everything.

The library's hot paths are already cached aggressively — compiled NRE
automata (in-process ``lru_cache`` + the cross-process
:mod:`repro.graph.autocache` pickles), per-universe incremental SAT
solvers (:mod:`repro.core.satpipeline`), and the query engine's
cross-candidate answer cache.  But a one-shot CLI throws all of that away
after every invocation.  This package keeps it alive:

* :mod:`repro.service.protocol` — the typed JSON-lines request/response
  wire format with schema validation and error envelopes;
* :mod:`repro.service.cache`    — the fingerprint-keyed result cache
  (layer 0: a warm repeat of any pure request is a dictionary lookup);
* :mod:`repro.service.jobs`     — job bookkeeping: per-request deadlines,
  cancellation, and serving telemetry;
* :mod:`repro.service.workers`  — the request executor: a
  ``ProcessPoolExecutor`` pool whose worker processes each keep their own
  warm solver pipelines and automaton caches across requests;
* :mod:`repro.service.server`   — the asyncio JSON-lines TCP server tying
  the pieces together (accept → validate → cache probe → worker →
  respond);
* :mod:`repro.service.client`   — a small blocking client used by the
  ``repro submit`` CLI, the benchmarks, and the examples.

Start a server with ``repro serve`` (or :func:`repro.service.server.
start_in_thread` for in-process embedding) and talk to it with ``repro
submit`` or :class:`repro.service.client.ServiceClient`.
"""

from repro.service.cache import ResultCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobRegistry
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    validate_request,
)
from repro.service.server import ExchangeService, start_in_thread
from repro.service.workers import WorkerPool, execute_request

__all__ = [
    "PROTOCOL_VERSION",
    "ExchangeService",
    "JobRegistry",
    "ProtocolError",
    "Request",
    "ResultCache",
    "ServiceClient",
    "ServiceError",
    "WorkerPool",
    "execute_request",
    "start_in_thread",
    "validate_request",
]
