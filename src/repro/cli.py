"""Command-line interface: ``python -m repro.cli <command>``.

Commands operate on a JSON *exchange document* — a single file holding the
setting and the source instance (see :func:`load_document`)::

    {
      "setting":  { ... },   # repro.io.dependencies.setting_to_dict format
      "instance": { ... }    # repro.io.json_io.instance_to_dict format
    }

Available commands:

* ``demo``     — write the paper's running example as an exchange document
                 (a ready-made input for the other commands);
* ``genscale`` — stream a deterministic scale-workload tenant (the
                 ``medlit``/``social`` families of
                 :mod:`repro.scenarios.scale`) up to 10^6 nodes in
                 O(batch) memory, or materialise a small one as an
                 exchange document;
* ``chase``    — run the appropriate chase and print the resulting pattern
                 (or graph, in the single-symbol fragment);
* ``exists``   — decide existence of solutions; exit code 0/1/2 for
                 exists / not-exists / unknown;
* ``certain``  — compute the certain answers of an NRE query;
* ``render``   — emit Graphviz DOT for a graph JSON file;
* ``snapshot`` — ``save``/``load``/``info`` for frozen CSR graph
                 snapshots (version-stamped files, see
                 :mod:`repro.graph.snapshot`);
* ``serve``    — run the persistent JSON-lines service (worker pool +
                 result cache, see :mod:`repro.service`; pass
                 ``--snapshot-dir`` to persist per-tenant witness
                 snapshots across restarts);
* ``submit``   — send one request to a running service and print the
                 response (mirrors the direct commands' exit codes).

``exists`` and ``certain`` accept ``--engine {compiled,reference}`` to pick
the query-evaluation back-end (the compiled product-automaton engine with
its cross-candidate cache, or the set-algebraic reference oracle — both
stay runnable end to end), ``--backend {dict,csr}`` to pick the storage
backend evaluation runs on (the mutation-friendly hash indexes, or frozen
interned-CSR arrays — identical answers, different physical traversal),
``--kernel {vector,scalar}`` to pick the execution kernel (numpy
array-at-a-time bulk search, or the pure-Python scalar oracle; the
default honours the ``REPRO_KERNEL`` environment variable and falls back
to scalar when numpy is absent),
``--solver {cdcl,dpll}`` to pick the SAT back-end for the complete
Theorem 4.1 decisions (the incremental CDCL solver, or the chronological
DPLL kept as the differential oracle — the answers must be identical,
only the speed differs; the default honours the ``REPRO_SOLVER``
environment variable), and ``--stats`` to print the engine's
:class:`~repro.engine.query.EvalStats` counters after the run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any

from repro.chase.egd_chase import chase_with_egds
from repro.chase.pattern_chase import chase_pattern
from repro.core.certain import certain_answers_nre
from repro.core.existence import decide_existence
from repro.core.search import CandidateSearchConfig
from repro.core.setting import DataExchangeSetting
from repro.engine.query import BACKEND_NAMES, EvalStats, QueryEngine, ReferenceEngine
from repro.kernels import KERNEL_NAMES
from repro.graph.parser import parse_nre
from repro.io.dependencies import setting_to_dict
from repro.io.dot import graph_to_dot, pattern_to_dot
from repro.io.json_io import (
    document_from_dict,
    graph_from_dict,
    graph_to_dict,
    instance_to_dict,
    pattern_to_dict,
)
from repro.relational.instance import RelationalInstance
from repro.solver import SOLVER_NAMES


def load_document(path: str) -> tuple[DataExchangeSetting, RelationalInstance]:
    """Read an exchange document (setting + instance) from ``path``."""
    with open(path, encoding="utf-8") as handle:
        return document_from_dict(json.load(handle))


def _read_document_dict(path: str) -> dict:
    """Read an exchange document as its raw wire dictionary."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.scenarios.flights import flights_instance, setting_omega

    document = {
        "setting": setting_to_dict(setting_omega()),
        "instance": instance_to_dict(flights_instance()),
    }
    text = json.dumps(document, indent=2, sort_keys=True)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    return 0


def _cmd_genscale(args: argparse.Namespace) -> int:
    from repro.scenarios.scale import (
        GeneratorConfig,
        iter_fact_batches,
        scale_document,
    )

    config = GeneratorConfig(
        family=args.family,
        nodes=args.nodes,
        seed=args.seed,
        batch_size=args.batch_size,
    )
    if args.format == "document":
        # Materialises the whole instance — meant for smoke-sized tenants
        # that feed the other commands; the jsonl format streams.
        text = json.dumps(scale_document(config), indent=2, sort_keys=True)
        if args.output == "-":
            print(text)
        else:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.output}")
        return 0

    def stream(handle) -> int:
        header = {
            "family": config.family,
            "nodes": config.nodes,
            "seed": config.seed,
            "batch_size": config.batch_size,
            "format": "repro.genscale/v1",
        }
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        total = 0
        for batch in iter_fact_batches(config):
            lines = [
                json.dumps([relation, list(values)], separators=(",", ":"))
                for relation, values in batch
            ]
            handle.write("\n".join(lines) + "\n")
            total += len(batch)
        handle.write(json.dumps({"facts": total}, sort_keys=True) + "\n")
        return total

    if args.output == "-":
        stream(sys.stdout)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            total = stream(handle)
        print(f"wrote {args.output} ({total} facts)")
    return 0


def _cmd_chase(args: argparse.Namespace) -> int:
    setting, instance = load_document(args.document)
    if setting.egds():
        result = chase_with_egds(
            setting.st_tgds, setting.egds(), instance, alphabet=setting.alphabet
        )
        if result.failed:
            left, right = result.failure_witness  # type: ignore[misc]
            print(f"chase FAILED: egd equates constants {left!r} and {right!r}")
            print("no solution exists")
            return 1
    else:
        result = chase_pattern(setting.st_tgds, instance, alphabet=setting.alphabet)
    pattern = result.expect_pattern()
    if args.json:
        print(json.dumps(pattern_to_dict(pattern), indent=2, sort_keys=True))
    else:
        print(pattern.pretty())
        print(
            f"-- {result.stats.st_applications} trigger(s), "
            f"{result.stats.null_merges} merge(s)"
        )
    return 0


def _engine_from_args(args: argparse.Namespace):
    """Build the query engine selected by ``--engine`` (with fresh stats).

    ``--backend csr`` makes the compiled engine freeze each cacheable
    graph to the interned-CSR storage backend before evaluation (the
    reference oracle ignores the flag — it has no storage strategy).
    """
    stats = EvalStats()
    if getattr(args, "engine", "compiled") == "reference":
        return ReferenceEngine(stats=stats)
    return QueryEngine(
        stats=stats,
        backend=getattr(args, "backend", "dict"),
        kernel=getattr(args, "kernel", None),
    )


def _maybe_print_stats(args: argparse.Namespace, engine) -> None:
    if getattr(args, "stats", False):
        print(f"engine: {engine.name}")
        print(f"stats: {engine.stats.summary()}")


def _cmd_exists(args: argparse.Namespace) -> int:
    setting, instance = load_document(args.document)
    config = CandidateSearchConfig(star_bound=args.star_bound)
    engine = _engine_from_args(args)
    result = decide_existence(
        setting, instance, search_config=config, engine=engine, solver=args.solver
    )
    print(f"status: {result.status.value}")
    print(f"method: {result.method}")
    if result.detail:
        print(f"detail: {result.detail}")
    if result.witness is not None and args.witness:
        print(json.dumps(graph_to_dict(result.witness), indent=2, sort_keys=True))
    _maybe_print_stats(args, engine)
    return {"exists": 0, "not-exists": 1, "unknown": 2}[result.status.value]


def _cmd_certain(args: argparse.Namespace) -> int:
    setting, instance = load_document(args.document)
    query = parse_nre(args.query)
    config = CandidateSearchConfig(star_bound=args.star_bound)
    engine = _engine_from_args(args)
    if args.pair:
        from repro.core.certain import find_counterexample_solution

        pair = tuple(args.pair)
        counterexample = find_counterexample_solution(
            setting, instance, query, pair, config=config, engine=engine,
            solver=args.solver,
        )
        if counterexample is None:
            print(f"{pair} is a certain answer")
            _maybe_print_stats(args, engine)
            return 0
        print(f"{pair} is NOT certain; counterexample solution:")
        print(json.dumps(graph_to_dict(counterexample), indent=2, sort_keys=True))
        _maybe_print_stats(args, engine)
        return 1
    result = certain_answers_nre(
        setting, instance, query, config=config, engine=engine, solver=args.solver
    )
    if result.no_solution:
        print("no solution exists: every tuple is (vacuously) certain")
        _maybe_print_stats(args, engine)
        return 0
    print(f"method: {result.method}")
    for pair in sorted(result.answers, key=repr):
        print(f"  {pair[0]}  {pair[1]}")
    if not result.answers:
        print("  (no certain answers)")
    _maybe_print_stats(args, engine)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import run_server

    run_server(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_limit=0 if args.no_cache else args.cache_limit,
        snapshot_dir=args.snapshot_dir,
        metrics_port=args.metrics_port,
    )
    return 0


def _parse_service_address(address: str) -> tuple[str, int]:
    """``HOST:PORT`` (or bare ``PORT``, defaulting to localhost)."""
    host, _, port_text = address.rpartition(":")
    if not host:
        host = "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise SystemExit(f"invalid service address {address!r} "
                         "(expected HOST:PORT or PORT)") from None
    return host, port


def _cmd_stats(args: argparse.Namespace) -> int:
    """``repro stats <addr>``: a live telemetry snapshot, human-rendered."""
    from repro.service.client import ServiceClient, ServiceError

    host, port = _parse_service_address(args.address)
    try:
        with ServiceClient(host, port, timeout=args.timeout) as client:
            body = client.metrics()
    except (ServiceError, OSError) as error:
        print(f"service error: {error}", file=sys.stderr)
        return 3
    if args.json:
        print(json.dumps(body, indent=2, sort_keys=True))
        return 0
    metrics = body["metrics"]
    service = body["service"]
    print(f"telemetry: {'on' if body['enabled'] else 'off'}")
    print(
        f"service: requests={service['requests']} "
        f"connections={service['connections']} "
        f"active_jobs={len(service['active_jobs'])}"
    )
    cache = service.get("cache")
    if cache:
        print(
            f"cache: entries={cache['entries']}/{cache['limit']} "
            f"hits={cache['hits']} misses={cache['misses']} "
            f"evictions={cache['evictions']}"
        )
    traces = body.get("traces", {})
    if traces:
        print(
            f"traces: recorded={traces['recorded']} "
            f"slow={traces['slow_recorded']}"
        )
    if metrics["counters"]:
        print("counters:")
        for name in sorted(metrics["counters"]):
            print(f"  {name} = {metrics['counters'][name]}")
    if metrics["gauges"]:
        print("gauges:")
        for name in sorted(metrics["gauges"]):
            print(f"  {name} = {metrics['gauges'][name]}")
    if metrics["histograms"]:
        print("histograms:")
        for name in sorted(metrics["histograms"]):
            snap = metrics["histograms"][name]
            mean_ms = (snap["sum"] / snap["count"] * 1000) if snap["count"] else 0.0
            print(
                f"  {name}: count={snap['count']} "
                f"mean={mean_ms:.3f}ms total={snap['sum']:.6f}s"
            )
    return 0


def _render_span(node: dict, depth: int = 0) -> list[str]:
    """Indent one span subtree into printable lines."""
    duration_ms = float(node.get("duration_s", 0.0)) * 1000
    attrs = node.get("attrs") or {}
    attr_text = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    line = f"{'  ' * depth}{node.get('name', '?')}  {duration_ms:.3f}ms"
    if attr_text:
        line += f"  [{attr_text}]"
    lines = [line]
    for child in node.get("children", ()):
        lines.extend(_render_span(child, depth + 1))
    if node.get("dropped_children"):
        lines.append(
            f"{'  ' * (depth + 1)}(+{node['dropped_children']} spans dropped)"
        )
    return lines


def _cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace <addr>``: recent (or slow) request traces, rendered."""
    from repro.service.client import ServiceClient, ServiceError

    host, port = _parse_service_address(args.address)
    try:
        with ServiceClient(host, port, timeout=args.timeout) as client:
            body = client.traces(limit=args.limit, slow=args.slow)
    except (ServiceError, OSError) as error:
        print(f"service error: {error}", file=sys.stderr)
        return 3
    if args.json:
        print(json.dumps(body, indent=2, sort_keys=True))
        return 0
    stats = body["stats"]
    ring = "slow-request ring" if args.slow else "recent ring"
    print(
        f"{ring}: showing {len(body['traces'])} of "
        f"{stats['slow_recorded'] if args.slow else stats['recorded']} recorded"
    )
    for trace in body["traces"]:
        print()
        print("\n".join(_render_span(trace)))
    if not body["traces"]:
        print("(no traces recorded — is REPRO_TELEMETRY off on the server?)")
    return 0


def _submit_status_code(op: str, params: dict, result: dict) -> int:
    """Mirror the direct commands' exit codes for service responses."""
    if op == "exists":
        return {"exists": 0, "not-exists": 1, "unknown": 2}[result["status"]]
    if op == "certain" and params.get("pair") is not None:
        return 0 if result["certain"] else 1
    if op == "chase":
        return 1 if result["failed"] else 0
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    op = args.request
    params: dict = {}
    if op in ("exists", "certain", "chase", "batch"):
        params["document"] = _read_document_dict(args.document)
    if op == "certain":
        params["query"] = args.query
        if args.pair:
            params["pair"] = list(args.pair)
    if op == "batch":
        op = "evaluate_batch"
        params["queries"] = list(args.queries)
    if op in ("exists", "certain", "evaluate_batch"):
        if args.star_bound is not None:
            params["star_bound"] = args.star_bound
        if getattr(args, "engine", None):
            params["engine"] = args.engine
        if getattr(args, "solver", None):
            params["solver"] = args.solver
        if getattr(args, "backend", None):
            params["backend"] = args.backend
        if getattr(args, "kernel", None):
            params["kernel"] = args.kernel
    if op == "cancel":
        params["job"] = args.job
    if op == "traces":
        if args.limit is not None:
            params["limit"] = args.limit
        if args.slow:
            params["slow"] = True

    with ServiceClient(args.host, args.port, timeout=args.timeout) as client:
        try:
            envelope = client.request(
                op,
                params or None,
                deadline_s=args.deadline,
                no_cache=args.no_result_cache,
            )
        except (ServiceError, OSError) as error:
            print(f"service error: {error}", file=sys.stderr)
            return 3
    if not envelope.get("ok"):
        error = envelope.get("error", {})
        print(
            f"error[{error.get('code', '?')}]: {error.get('message', '')}",
            file=sys.stderr,
        )
        return 3
    print(json.dumps(envelope["result"], indent=2, sort_keys=True))
    if envelope.get("cached"):
        print("(served from the result cache)", file=sys.stderr)
    return _submit_status_code(op, params, envelope["result"])


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.errors import SnapshotError
    from repro.graph.snapshot import load_snapshot, save_snapshot

    if args.action == "save":
        with open(args.graph, encoding="utf-8") as handle:
            graph = graph_from_dict(json.load(handle))
        save_snapshot(graph, args.snapshot)
        print(
            f"wrote {args.snapshot}: |V|={graph.node_count()} "
            f"|E|={graph.edge_count()} (frozen csr, format-stamped)"
        )
        return 0
    try:
        graph = load_snapshot(args.snapshot)
    except SnapshotError as error:
        print(f"snapshot error: {error}", file=sys.stderr)
        return 2
    if args.action == "load":
        text = json.dumps(graph_to_dict(graph), indent=2, sort_keys=True)
        if args.output == "-":
            print(text)
        else:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.output}")
        return 0
    # info
    token = graph.fingerprint()
    print(f"snapshot: {args.snapshot}")
    print(f"backend: {graph.backend_name} (frozen)")
    print(f"nodes: {graph.node_count()}")
    print(f"edges: {graph.edge_count()}")
    print(f"alphabet: {sorted(map(str, graph.alphabet))}")
    print(f"fingerprintable: {token is not None}")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    with open(args.graph, encoding="utf-8") as handle:
        data: dict[str, Any] = json.load(handle)
    if "edges" in data and data.get("edges") and len(data["edges"][0]) == 3 and (
        isinstance(data["edges"][0][1], dict)
    ):
        from repro.io.json_io import pattern_from_dict

        print(pattern_to_dot(pattern_from_dict(data), name=args.name))
    else:
        print(graph_to_dot(graph_from_dict(data), name=args.name))
    return 0


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=("compiled", "reference"),
        default="compiled",
        help="query evaluation back-end: the compiled product-automaton "
        "engine (default) or the set-algebraic reference oracle",
    )
    parser.add_argument(
        "--solver",
        choices=SOLVER_NAMES,
        default=None,
        help="SAT back-end for the complete fragment decisions: the "
        "incremental CDCL solver (default; honours REPRO_SOLVER) or the "
        "chronological DPLL differential oracle — answers are identical",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="dict",
        help="storage backend for query evaluation: the mutation-friendly "
        "dict indexes (default) or frozen interned-CSR arrays — answers "
        "are identical, csr is the bulk-traversal fast path",
    )
    parser.add_argument(
        "--kernel",
        choices=KERNEL_NAMES,
        default=None,
        help="execution kernel: numpy array-at-a-time bulk search (vector; "
        "the default when numpy is importable, honours REPRO_KERNEL), the "
        "pure-Python scalar oracle, or per-automaton generated code "
        "(codegen; fastest for single-pair and warm repeated queries) — "
        "answers are identical",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the engine's evaluation counters after the run",
    )
    parser.add_argument(
        "--no-automaton-cache",
        action="store_true",
        help="disable the cross-process on-disk cache of compiled NRE "
        "automata (repro.graph.autocache) for this invocation",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Relational-to-graph data exchange with target constraints",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="write the paper's running example")
    demo.add_argument("-o", "--output", default="-", help="output path or - for stdout")
    demo.set_defaults(handler=_cmd_demo)

    genscale = commands.add_parser(
        "genscale",
        help="stream a deterministic scale-workload tenant (medlit/social)",
    )
    genscale.add_argument(
        "--family",
        choices=["medlit", "social"],
        required=True,
        help="workload family: medlit knowledge graph or social network",
    )
    genscale.add_argument(
        "--nodes", type=int, required=True, help="entity-universe size (≥ 1)"
    )
    genscale.add_argument(
        "--seed", type=int, default=7, help="generator seed (default 7)"
    )
    genscale.add_argument(
        "--batch-size",
        type=int,
        default=10_000,
        help="facts held in memory at a time while streaming (default 10000)",
    )
    genscale.add_argument(
        "--format",
        choices=["jsonl", "document"],
        default="jsonl",
        help="jsonl streams facts in O(batch) memory; document materialises "
        "a full exchange document for the other commands",
    )
    genscale.add_argument(
        "-o", "--output", default="-", help="output path or - for stdout"
    )
    genscale.set_defaults(handler=_cmd_genscale)

    chase = commands.add_parser("chase", help="chase an exchange document")
    chase.add_argument("document", help="exchange document (JSON)")
    chase.add_argument("--json", action="store_true", help="emit the pattern as JSON")
    chase.set_defaults(handler=_cmd_chase)

    exists = commands.add_parser("exists", help="decide existence of solutions")
    exists.add_argument("document")
    exists.add_argument("--star-bound", type=int, default=2)
    exists.add_argument("--witness", action="store_true", help="print the witness graph")
    _add_engine_arguments(exists)
    exists.set_defaults(handler=_cmd_exists)

    certain = commands.add_parser("certain", help="certain answers of an NRE query")
    certain.add_argument("document")
    certain.add_argument("query", help="NRE, e.g. 'f . f*[h] . f- . (f-)*'")
    certain.add_argument("--star-bound", type=int, default=2)
    certain.add_argument(
        "--pair",
        nargs=2,
        metavar=("U", "V"),
        help="decide one tuple instead of computing the whole set "
        "(exit 0 = certain, 1 = counterexample found)",
    )
    _add_engine_arguments(certain)
    certain.set_defaults(handler=_cmd_certain)

    render = commands.add_parser("render", help="render a graph JSON file as DOT")
    render.add_argument("graph", help="graph or pattern JSON file")
    render.add_argument("--name", default="G")
    render.set_defaults(handler=_cmd_render)

    snapshot = commands.add_parser(
        "snapshot",
        help="save/load frozen CSR graph snapshots (version-stamped files)",
    )
    snapshot_actions = snapshot.add_subparsers(dest="action", required=True)
    snap_save = snapshot_actions.add_parser(
        "save", help="freeze a graph JSON file into a snapshot"
    )
    snap_save.add_argument("graph", help="graph JSON file (graph_to_dict shape)")
    snap_save.add_argument("snapshot", help="output snapshot path")
    snap_load = snapshot_actions.add_parser(
        "load", help="load a snapshot back into graph JSON"
    )
    snap_load.add_argument("snapshot", help="snapshot file")
    snap_load.add_argument(
        "-o", "--output", default="-", help="output path or - for stdout"
    )
    snap_info = snapshot_actions.add_parser(
        "info", help="print a snapshot's counts and format facts"
    )
    snap_info.add_argument("snapshot", help="snapshot file")
    snapshot.set_defaults(handler=_cmd_snapshot)

    serve = commands.add_parser(
        "serve", help="run the persistent JSON-lines exchange service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (0 = inline single-threaded lane)",
    )
    serve.add_argument(
        "--cache-limit",
        type=int,
        default=1024,
        help="result-cache entries kept by the server",
    )
    serve.add_argument(
        "--no-cache", action="store_true", help="disable the server result cache"
    )
    serve.add_argument(
        "--snapshot-dir",
        default=None,
        help="directory for frozen per-tenant witness snapshots: warm "
        "tenants skip re-chasing after a restart (sets REPRO_SNAPSHOT_DIR "
        "for the worker pool)",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="also bind a plain-HTTP /metrics + /healthz introspection "
        "listener on this port (0 = ephemeral; Prometheus text format)",
    )
    serve.set_defaults(handler=_cmd_serve)

    stats = commands.add_parser(
        "stats", help="live telemetry snapshot of a running service"
    )
    stats.add_argument("address", help="service address (HOST:PORT or PORT)")
    stats.add_argument("--json", action="store_true", help="dump raw JSON")
    stats.add_argument(
        "--timeout", type=float, default=30.0, help="client socket timeout"
    )
    stats.set_defaults(handler=_cmd_stats)

    trace = commands.add_parser(
        "trace", help="recent request traces of a running service"
    )
    trace.add_argument("address", help="service address (HOST:PORT or PORT)")
    trace.add_argument(
        "--limit", type=int, default=5, help="how many traces to fetch"
    )
    trace.add_argument(
        "--slow", action="store_true", help="read the slow-request ring"
    )
    trace.add_argument("--json", action="store_true", help="dump raw JSON")
    trace.add_argument(
        "--timeout", type=float, default=30.0, help="client socket timeout"
    )
    trace.set_defaults(handler=_cmd_trace)

    submit = commands.add_parser(
        "submit", help="send one request to a running service"
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, required=True)
    submit.add_argument(
        "--deadline", type=float, default=None, help="per-request budget in seconds"
    )
    submit.add_argument(
        "--timeout", type=float, default=120.0, help="client socket timeout"
    )
    submit.add_argument(
        "--no-result-cache",
        action="store_true",
        help="ask the server to bypass its result cache for this request",
    )
    requests = submit.add_subparsers(dest="request", required=True)

    def _compute_request(name: str, **kwargs) -> argparse.ArgumentParser:
        sub = requests.add_parser(name, **kwargs)
        sub.add_argument("document", help="exchange document (JSON)")
        return sub

    sub_exists = _compute_request("exists", help="decide existence via the service")
    sub_certain = _compute_request("certain", help="certain answers via the service")
    sub_certain.add_argument("query", help="NRE query")
    sub_certain.add_argument("--pair", nargs=2, metavar=("U", "V"))
    sub_batch = _compute_request(
        "batch", help="batched certain answers over one document"
    )
    sub_batch.add_argument("queries", nargs="+", help="NRE queries")
    _compute_request("chase", help="chase via the service")
    for sub in (sub_exists, sub_certain, sub_batch):
        sub.add_argument("--star-bound", type=int, default=None)
        sub.add_argument("--engine", choices=("compiled", "reference"), default=None)
        sub.add_argument("--solver", choices=SOLVER_NAMES, default=None)
        sub.add_argument("--backend", choices=BACKEND_NAMES, default=None)
        sub.add_argument("--kernel", choices=KERNEL_NAMES, default=None)
    requests.add_parser("ping", help="liveness probe")
    requests.add_parser("stats", help="server telemetry snapshot")
    requests.add_parser("metrics", help="server metrics-registry snapshot")
    sub_traces = requests.add_parser("traces", help="recent request traces")
    sub_traces.add_argument("--limit", type=int, default=None)
    sub_traces.add_argument("--slow", action="store_true")
    requests.add_parser("shutdown", help="stop the server")
    cancel = requests.add_parser("cancel", help="cancel an in-flight request id")
    cancel.add_argument("job", help="request id to cancel")
    submit.set_defaults(handler=_cmd_submit)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "no_automaton_cache", False):
        os.environ["REPRO_AUTOMATON_CACHE"] = "off"
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly, as CLIs do.
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
