"""Concrete syntax for relational atoms and conjunctive queries.

Grammar (whitespace-insensitive)::

    query     := atoms [ "->" "(" outputs ")" ]
    atoms     := atom { "," atom }
    atom      := NAME "(" term { "," term } ")"
    term      := NAME            -- a variable (lowercase start) or
                                    a constant (quoted, or uppercase/digit start)
    outputs   := NAME { "," NAME }

Identifiers starting with a lowercase letter are variables, matching the
convention of the paper (``x1``, ``y``).  Single- or double-quoted strings
are constants; so are bare tokens starting with an uppercase letter or a
digit.  Example::

    Flight(x1, x2, x3), Hotel(x1, x4)
    E(x, y), E(y, z) -> (x, z)
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.relational.query import ConjunctiveQuery, RelationalAtom, Variable

_TOKEN = re.compile(
    r"""\s*(?:
        (?P<arrow>->)            |
        (?P<lpar>\()             |
        (?P<rpar>\))             |
        (?P<comma>,)             |
        (?P<quoted>'[^']*'|"[^"]*") |
        (?P<name>[A-Za-z_][A-Za-z0-9_]*|\d+)
    )""",
    re.VERBOSE,
)


class _Tokens:
    """A tiny cursor over the token stream, with one-token lookahead."""

    def __init__(self, text: str):
        self.text = text
        self.items: list[tuple[str, str, int]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN.match(text, pos)
            if match is None or match.end() == pos:
                if text[pos:].strip():
                    raise ParseError("unexpected character", text, pos)
                break
            kind = match.lastgroup or ""
            self.items.append((kind, match.group(kind), match.start(kind)))
            pos = match.end()
        self.index = 0

    def peek(self) -> tuple[str, str, int] | None:
        if self.index < len(self.items):
            return self.items[self.index]
        return None

    def next(self, expected: str | None = None) -> tuple[str, str, int]:
        item = self.peek()
        if item is None:
            raise ParseError(
                f"unexpected end of input (expected {expected or 'a token'})", self.text
            )
        if expected is not None and item[0] != expected:
            raise ParseError(f"expected {expected}, found {item[1]!r}", self.text, item[2])
        self.index += 1
        return item

    def done(self) -> bool:
        return self.index >= len(self.items)


def _term_from(kind: str, value: str) -> object:
    if kind == "quoted":
        return value[1:-1]
    if value[0].islower() or value[0] == "_":
        return Variable(value)
    return value  # uppercase/digit start: a constant


def _parse_atom(tokens: _Tokens) -> RelationalAtom:
    _, name, pos = tokens.next("name")
    if not name[0].isupper():
        raise ParseError("relation names must start uppercase", tokens.text, pos)
    tokens.next("lpar")
    terms: list[object] = []
    while True:
        kind, value, _ = tokens.next()
        if kind not in ("name", "quoted"):
            raise ParseError("expected a term", tokens.text)
        terms.append(_term_from(kind, value))
        kind, _, _ = tokens.next()
        if kind == "rpar":
            break
        if kind != "comma":
            raise ParseError("expected ',' or ')'", tokens.text)
    return RelationalAtom(name, tuple(terms))


def parse_atom(text: str) -> RelationalAtom:
    """Parse a single relational atom, e.g. ``"Flight(x1, x2, x3)"``."""
    tokens = _Tokens(text)
    atom = _parse_atom(tokens)
    if not tokens.done():
        raise ParseError("trailing input after atom", text)
    return atom


def parse_cq(text: str) -> ConjunctiveQuery:
    """Parse a conjunctive query with an optional output clause.

    >>> q = parse_cq("Flight(x1, x2, x3), Hotel(x1, x4)")
    >>> len(q.atoms), len(q.outputs)
    (2, 5)
    >>> q2 = parse_cq("E(x, y), E(y, z) -> (x, z)")
    >>> [v.name for v in q2.outputs]
    ['x', 'z']
    """
    tokens = _Tokens(text)
    atoms = [_parse_atom(tokens)]
    while not tokens.done():
        kind, _, pos = tokens.peek()  # type: ignore[misc]
        if kind == "comma":
            tokens.next("comma")
            atoms.append(_parse_atom(tokens))
        elif kind == "arrow":
            break
        else:
            raise ParseError("expected ',' or '->'", text, pos)

    outputs: list[Variable] | None = None
    if not tokens.done():
        tokens.next("arrow")
        tokens.next("lpar")
        outputs = []
        while True:
            kind, value, pos = tokens.next()
            if kind != "name" or not (value[0].islower() or value[0] == "_"):
                raise ParseError("output terms must be variables", text, pos)
            outputs.append(Variable(value))
            kind, _, _ = tokens.next()
            if kind == "rpar":
                break
            if kind != "comma":
                raise ParseError("expected ',' or ')' in outputs", text)
        if not tokens.done():
            raise ParseError("trailing input after outputs", text)
    return ConjunctiveQuery(atoms, outputs)
