"""Relational instances: finite sets of tuples over the constant domain.

An instance of a schema ``R`` associates to each relation symbol a finite set
of tuples over the countably infinite constant domain ``V`` (paper,
Section 2).  Constants are arbitrary hashable Python values; the paper's
``c1``, ``hx`` etc. are plain strings in the scenario modules.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.relational.schema import RelationSymbol, RelationalSchema

Constant = object
Tuple = tuple

_EMPTY: frozenset = frozenset()


class RelationalInstance:
    """A finite instance of a :class:`RelationalSchema`.

    Tuples are stored per relation symbol as ``frozenset``-like sets of plain
    Python tuples.  Arity conformance is checked on every insertion.

    >>> schema = RelationalSchema()
    >>> R = schema.declare("R", 1)
    >>> instance = RelationalInstance(schema)
    >>> instance.add("R", ("c1",))
    >>> sorted(instance.tuples("R"))
    [('c1',)]
    """

    def __init__(
        self,
        schema: RelationalSchema,
        facts: Mapping[str, Iterable[Tuple]] | None = None,
    ):
        self.schema = schema
        self._data: dict[str, set[Tuple]] = {symbol.name: set() for symbol in schema}
        # relation -> first-column value -> tuples; maintained on insert so
        # join steps with a bound first position read O(matches), not O(n).
        self._by_first: dict[str, dict[Constant, set[Tuple]]] = {
            symbol.name: {} for symbol in schema
        }
        if facts:
            for name, tuples in facts.items():
                for tup in tuples:
                    self.add(name, tup)

    def _symbol(self, relation: str | RelationSymbol) -> RelationSymbol:
        if isinstance(relation, RelationSymbol):
            declared = self.schema.get(relation.name)
            if declared != relation:
                raise SchemaError(f"relation {relation} is not part of the schema")
            return relation
        return self.schema[relation]

    def add(self, relation: str | RelationSymbol, values: Iterable[Constant]) -> None:
        """Insert the tuple ``values`` into ``relation``.

        Raises :class:`~repro.errors.SchemaError` on arity mismatch or on an
        undeclared relation.
        """
        symbol = self._symbol(relation)
        tup = tuple(values)
        if len(tup) != symbol.arity:
            raise SchemaError(
                f"tuple {tup!r} has arity {len(tup)}, but {symbol} expects {symbol.arity}"
            )
        self._data[symbol.name].add(tup)
        if tup:
            self._by_first[symbol.name].setdefault(tup[0], set()).add(tup)

    def remove(self, relation: str | RelationSymbol, values: Iterable[Constant]) -> bool:
        """Delete the tuple ``values`` from ``relation`` if present.

        Returns whether a tuple was actually removed (``False`` makes
        delete-of-absent a cheap no-op, which the incremental chase relies
        on to net out insert/delete churn).  The first-column index is kept
        in sync, so :meth:`tuples_with_first` stays exact after deletions.
        Raises :class:`~repro.errors.SchemaError` on arity mismatch or on
        an undeclared relation, exactly like :meth:`add`.

        >>> schema = RelationalSchema()
        >>> _ = schema.declare("R", 2)
        >>> inst = RelationalInstance(schema, {"R": [("a", "b")]})
        >>> inst.remove("R", ("a", "b")), inst.remove("R", ("a", "b"))
        (True, False)
        >>> sorted(inst.tuples("R")), sorted(inst.tuples_with_first("R", "a"))
        ([], [])
        """
        symbol = self._symbol(relation)
        tup = tuple(values)
        if len(tup) != symbol.arity:
            raise SchemaError(
                f"tuple {tup!r} has arity {len(tup)}, but {symbol} expects {symbol.arity}"
            )
        data = self._data[symbol.name]
        if tup not in data:
            return False
        data.remove(tup)
        if tup:
            index = self._by_first[symbol.name]
            bucket = index.get(tup[0])
            if bucket is not None:
                bucket.discard(tup)
                if not bucket:
                    del index[tup[0]]
        return True

    def add_all(self, relation: str | RelationSymbol, tuples: Iterable[Iterable[Constant]]) -> None:
        """Insert every tuple from ``tuples`` into ``relation``."""
        for tup in tuples:
            self.add(relation, tup)

    def tuples(self, relation: str | RelationSymbol) -> frozenset[Tuple]:
        """Return the set of tuples currently stored for ``relation``."""
        symbol = self._symbol(relation)
        return frozenset(self._data[symbol.name])

    def iter_tuples(self, relation: str | RelationSymbol) -> Iterator[Tuple]:
        """Iterate the tuples of ``relation`` without materialising a copy.

        The iterator reads the live storage: do not insert into
        ``relation`` while consuming it (use :meth:`tuples` for a
        snapshot).

        >>> schema = RelationalSchema()
        >>> _ = schema.declare("R", 2)
        >>> inst = RelationalInstance(schema, {"R": [("a", "b")]})
        >>> list(inst.iter_tuples("R"))
        [('a', 'b')]
        """
        symbol = self._symbol(relation)
        return iter(self._data[symbol.name])

    def tuples_with_first(
        self, relation: str | RelationSymbol, value: Constant
    ) -> "frozenset[Tuple] | set[Tuple]":
        """Return the tuples of ``relation`` whose first column is ``value``.

        Served from an index maintained on insertion — the fast path of
        the trigger-matching joins when the first position is bound.  The
        returned set is a live view of the index bucket: iterate it, but
        do not insert into ``relation`` while doing so (and never mutate
        the returned set itself).

        >>> schema = RelationalSchema()
        >>> _ = schema.declare("R", 2)
        >>> inst = RelationalInstance(schema, {"R": [("a", "b"), ("c", "d")]})
        >>> sorted(inst.tuples_with_first("R", "a"))
        [('a', 'b')]
        """
        symbol = self._symbol(relation)
        return self._by_first[symbol.name].get(value, _EMPTY)

    def count(self, relation: str | RelationSymbol) -> int:
        """Return the number of tuples in ``relation`` (no copying).

        >>> schema = RelationalSchema()
        >>> _ = schema.declare("R", 1)
        >>> inst = RelationalInstance(schema, {"R": [("a",), ("b",)]})
        >>> inst.count("R")
        2
        """
        symbol = self._symbol(relation)
        return len(self._data[symbol.name])

    def contains(self, relation: str | RelationSymbol, values: Iterable[Constant]) -> bool:
        """Return whether the tuple ``values`` is present in ``relation``."""
        symbol = self._symbol(relation)
        return tuple(values) in self._data[symbol.name]

    def active_domain(self) -> frozenset[Constant]:
        """Return every constant mentioned anywhere in the instance."""
        domain: set[Constant] = set()
        for tuples in self._data.values():
            for tup in tuples:
                domain.update(tup)
        return frozenset(domain)

    def size(self) -> int:
        """Return the total number of facts across all relations."""
        return sum(len(tuples) for tuples in self._data.values())

    def fingerprint(self) -> frozenset:
        """Return a hashable snapshot of the instance's content.

        Two instances with equal facts (per relation) produce equal
        fingerprints regardless of insertion order or object identity —
        the key the persistent SAT pipeline caches on.  Computed fresh on
        every call (the instance is mutable, so caching it here would go
        stale); cost is one pass over the facts.

        >>> schema = RelationalSchema()
        >>> _ = schema.declare("R", 1)
        >>> a = RelationalInstance(schema, {"R": [("x",), ("y",)]})
        >>> b = RelationalInstance(schema, {"R": [("y",), ("x",)]})
        >>> a.fingerprint() == b.fingerprint()
        True
        """
        return frozenset(
            (name, frozenset(tuples)) for name, tuples in self._data.items()
        )

    def __len__(self) -> int:
        return self.size()

    def __iter__(self) -> Iterator[tuple[str, Tuple]]:
        """Iterate over ``(relation_name, tuple)`` facts."""
        for name, tuples in self._data.items():
            for tup in sorted(tuples, key=repr):
                yield name, tup

    def copy(self) -> "RelationalInstance":
        """Return an independent deep copy sharing the (immutable) schema."""
        clone = RelationalInstance(self.schema)
        for name, tuples in self._data.items():
            clone._data[name] = set(tuples)
        for name, index in self._by_first.items():
            clone._by_first[name] = {value: set(tups) for value, tups in index.items()}
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationalInstance):
            return NotImplemented
        return self.schema == other.schema and self._data == other._data

    def __repr__(self) -> str:
        parts = []
        for name, tuples in self._data.items():
            if tuples:
                facts = ", ".join(f"{name}{tup!r}" for tup in sorted(tuples, key=repr))
                parts.append(facts)
        return f"RelationalInstance({'; '.join(parts)})"
