"""Relational substrate: source schemas, instances, and conjunctive queries.

This package implements the *source* side of the relational-to-graph data
exchange setting of the paper (Section 2, "Source schemas and queries"):

* :class:`~repro.relational.schema.RelationSymbol` and
  :class:`~repro.relational.schema.RelationalSchema` — a finite collection of
  relation symbols with fixed arities;
* :class:`~repro.relational.instance.RelationalInstance` — a finite set of
  tuples over the shared constant domain ``V`` for each symbol;
* :class:`~repro.relational.query.ConjunctiveQuery` — conjunctions of
  relational atoms over variables, with evaluation by backtracking joins in
  :mod:`repro.relational.evaluate`;
* :func:`~repro.relational.parser.parse_cq` — a small concrete syntax, e.g.
  ``"Flight(x1, x2, x3), Hotel(x1, x4)"``.
"""

from repro.relational.schema import RelationSymbol, RelationalSchema
from repro.relational.instance import RelationalInstance
from repro.relational.query import RelationalAtom, ConjunctiveQuery
from repro.relational.evaluate import evaluate_cq, cq_homomorphisms
from repro.relational.parser import parse_cq, parse_atom

__all__ = [
    "RelationSymbol",
    "RelationalSchema",
    "RelationalInstance",
    "RelationalAtom",
    "ConjunctiveQuery",
    "evaluate_cq",
    "cq_homomorphisms",
    "parse_cq",
    "parse_atom",
]
