"""Conjunctive-query evaluation by backtracking joins.

The evaluator enumerates homomorphisms from the query body into the instance
(the standard semantics of CQs).  Atoms are processed in an order chosen to
bind variables early — a greedy "most-bound-first, then smallest-relation"
heuristic — which keeps the search close to a left-deep join plan without
building intermediate relations.

When an atom's first position is already bound, the candidate tuples are
read from the instance's first-column hash index
(:meth:`~repro.relational.instance.RelationalInstance.tuples_with_first`)
instead of scanning the whole relation; an optional
:class:`~repro.chase.result.ChaseStats` records those index hits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Mapping

from repro.relational.instance import RelationalInstance
from repro.relational.query import ConjunctiveQuery, RelationalAtom, Variable, is_variable

if TYPE_CHECKING:  # annotation-only import; avoids an import cycle
    from repro.chase.result import ChaseStats

Assignment = dict[Variable, object]


def _atom_order(query: ConjunctiveQuery, instance: RelationalInstance) -> list[RelationalAtom]:
    """Order atoms greedily: prefer atoms sharing variables with already
    chosen atoms (bound variables prune the scan), tie-break on relation size.
    """
    remaining = list(query.atoms)
    ordered: list[RelationalAtom] = []
    bound: set[Variable] = set()
    while remaining:
        def score(atom: RelationalAtom) -> tuple[int, int]:
            atom_vars = set(atom.variables())
            unbound = len(atom_vars - bound)
            return (unbound, instance.count(atom.relation))

        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variables())
    return ordered


def _match_atom(
    atom: RelationalAtom,
    instance: RelationalInstance,
    assignment: Assignment,
    stats: "ChaseStats | None" = None,
) -> Iterator[Assignment]:
    """Yield extensions of ``assignment`` matching ``atom`` in ``instance``.

    Uses the first-column index when the atom's first position is a
    constant or an already-bound variable.
    """
    first = atom.terms[0] if atom.terms else None
    if first is not None and not is_variable(first):
        candidates = instance.tuples_with_first(atom.relation, first)
        if stats is not None:
            stats.index_hits += 1
    elif first is not None and first in assignment:
        candidates = instance.tuples_with_first(atom.relation, assignment[first])
        if stats is not None:
            stats.index_hits += 1
    else:
        candidates = instance.iter_tuples(atom.relation)
    for tup in candidates:
        extension: Assignment = {}
        ok = True
        for term, value in zip(atom.terms, tup):
            if is_variable(term):
                current = assignment.get(term, extension.get(term, _UNSET))
                if current is _UNSET:
                    extension[term] = value
                elif current != value:
                    ok = False
                    break
            elif term != value:
                ok = False
                break
        if ok:
            merged = dict(assignment)
            merged.update(extension)
            yield merged


_UNSET = object()


def cq_homomorphisms(
    query: ConjunctiveQuery,
    instance: RelationalInstance,
    seed: Mapping[Variable, object] | None = None,
    stats: "ChaseStats | None" = None,
) -> Iterator[Assignment]:
    """Yield every homomorphism from ``query``'s body into ``instance``.

    A homomorphism maps each body variable to a constant such that every atom
    becomes a fact of the instance.  ``seed`` optionally pre-binds variables
    (used when checking dependencies: the body match seeds the head check).
    ``stats`` optionally records index hits into a
    :class:`~repro.chase.result.ChaseStats`.

    Homomorphisms are yielded as fresh dictionaries; mutating one does not
    affect the enumeration.  The enumeration reads the instance's live
    storage — materialise it (``list(...)``) before inserting new facts
    into the instance, as the chase engines do.
    """
    query.validate(instance.schema)
    ordered = _atom_order(query, instance)

    def extend(index: int, assignment: Assignment) -> Iterator[Assignment]:
        if index == len(ordered):
            yield dict(assignment)
            return
        for extended in _match_atom(ordered[index], instance, assignment, stats):
            yield from extend(index + 1, extended)

    initial: Assignment = dict(seed) if seed else {}
    yield from extend(0, initial)


def cq_match_rows(
    query: ConjunctiveQuery,
    instance: RelationalInstance,
    variables: tuple[Variable, ...],
    seed: Mapping[Variable, object] | None = None,
    stats: "ChaseStats | None" = None,
) -> list[tuple]:
    """Project every body homomorphism onto ``variables``, in one pass.

    The batch entry point of the evaluator: where
    :func:`cq_homomorphisms` yields one fresh dict per match (the right
    shape for callers that inspect individual bindings), this runs the
    same backtracking join but projects each match straight onto a value
    tuple at the leaf — no per-match dict copy, no later re-discovery.
    The pattern chase uses it to collect *all* fireable triggers of a
    tgd in one call and apply them as a batch.

    >>> from repro.relational import RelationalSchema, RelationalInstance
    >>> from repro.relational.parser import parse_cq
    >>> schema = RelationalSchema()
    >>> _ = schema.declare("E", 2)
    >>> inst = RelationalInstance(schema, {"E": [("a", "b"), ("b", "c")]})
    >>> q = parse_cq("E(x, y) -> (x, y)")
    >>> x, y = q.outputs
    >>> sorted(cq_match_rows(q, inst, (y, x)))
    [('b', 'a'), ('c', 'b')]
    """
    query.validate(instance.schema)
    ordered = _atom_order(query, instance)
    rows: list[tuple] = []
    append = rows.append
    depth = len(ordered)

    def extend(index: int, assignment: Assignment) -> None:
        if index == depth:
            append(tuple(assignment[v] for v in variables))
            return
        for extended in _match_atom(ordered[index], instance, assignment, stats):
            extend(index + 1, extended)

    extend(0, dict(seed) if seed else {})
    return rows


def evaluate_cq(
    query: ConjunctiveQuery,
    instance: RelationalInstance,
) -> frozenset[tuple]:
    """Evaluate ``query`` on ``instance`` and return the set of answer tuples.

    Each answer is the projection of a body homomorphism onto the query's
    output variables, in their declared order.

    >>> from repro.relational import RelationalSchema, RelationalInstance
    >>> from repro.relational.parser import parse_cq
    >>> schema = RelationalSchema()
    >>> _ = schema.declare("E", 2)
    >>> inst = RelationalInstance(schema, {"E": [("a", "b"), ("b", "c")]})
    >>> q = parse_cq("E(x, y), E(y, z) -> (x, z)")
    >>> sorted(evaluate_cq(q, inst))
    [('a', 'c')]
    """
    answers = set()
    for hom in cq_homomorphisms(query, instance):
        answers.add(tuple(hom[v] for v in query.outputs))
    return frozenset(answers)
