"""Relational schemas: finite collections of relation symbols with arities.

The paper (Section 2) defines a source schema ``R`` as a finite collection of
relational symbols, each with a positive integer arity.  We mirror that
definition exactly; no typing of attributes is needed because the shared
domain ``V`` of constants is untyped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import SchemaError


@dataclass(frozen=True, order=True)
class RelationSymbol:
    """A relation symbol with a name and a positive arity.

    Instances are immutable and hashable, so they can key dictionaries and
    populate sets.  Equality is structural: two symbols are the same exactly
    when both the name and the arity coincide.

    >>> Flight = RelationSymbol("Flight", 3)
    >>> Flight.name, Flight.arity
    ('Flight', 3)
    """

    name: str
    arity: int

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"relation name must be a non-empty string, got {self.name!r}")
        if not isinstance(self.arity, int) or self.arity < 1:
            raise SchemaError(
                f"relation {self.name!r} must have positive integer arity, got {self.arity!r}"
            )

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


class RelationalSchema:
    """A finite collection of :class:`RelationSymbol` with unique names.

    The schema behaves as a read-only mapping from names to symbols:

    >>> schema = RelationalSchema([RelationSymbol("R", 1), RelationSymbol("P", 2)])
    >>> schema["R"].arity
    1
    >>> "P" in schema
    True
    >>> len(schema)
    2
    """

    def __init__(self, symbols: Iterable[RelationSymbol] = ()):
        self._symbols: dict[str, RelationSymbol] = {}
        for symbol in symbols:
            self.add(symbol)

    def add(self, symbol: RelationSymbol) -> None:
        """Add ``symbol``; adding the same symbol twice is idempotent.

        Raises :class:`~repro.errors.SchemaError` when a *different* symbol
        with the same name is already present.
        """
        existing = self._symbols.get(symbol.name)
        if existing is not None and existing != symbol:
            raise SchemaError(
                f"conflicting declarations for relation {symbol.name!r}: "
                f"arity {existing.arity} vs {symbol.arity}"
            )
        self._symbols[symbol.name] = symbol

    def declare(self, name: str, arity: int) -> RelationSymbol:
        """Create, register, and return a symbol in one step."""
        symbol = RelationSymbol(name, arity)
        self.add(symbol)
        return symbol

    def __getitem__(self, name: str) -> RelationSymbol:
        try:
            return self._symbols[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def get(self, name: str) -> RelationSymbol | None:
        """Return the symbol named ``name`` or ``None`` when absent."""
        return self._symbols.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._symbols

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(self._symbols.values())

    def __len__(self) -> int:
        return len(self._symbols)

    def names(self) -> list[str]:
        """Return the relation names in declaration order."""
        return list(self._symbols)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationalSchema):
            return NotImplemented
        return set(self._symbols.values()) == set(other._symbols.values())

    def __hash__(self) -> int:
        return hash(frozenset(self._symbols.values()))

    def __repr__(self) -> str:
        body = ", ".join(str(s) for s in self)
        return f"RelationalSchema({{{body}}})"
