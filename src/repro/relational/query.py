"""Conjunctive queries over relational schemas.

A *source query* in the paper is a conjunction of atoms over ``R`` that uses
only variables (Section 2).  For generality (and because s-t tgd bodies are
exactly source queries), atom arguments here may be either
:class:`Variable` objects or constants; the paper's fragment is obtained by
using variables everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SchemaError
from repro.relational.schema import RelationalSchema


@dataclass(frozen=True, order=True)
class Variable:
    """A first-order variable, identified by name.

    Variables compare and hash by name, so the same name used in two atoms
    denotes the same variable — exactly the semantics of conjunctive queries.
    """

    name: str

    def __hash__(self) -> int:
        # Hash the name directly: str objects memoise their hash, so this
        # skips the generated hash's per-call field-tuple allocation —
        # variables key every join assignment the chase builds.
        return hash(self.name)

    def __str__(self) -> str:
        return self.name


Term = object  # a Variable or a constant


def is_variable(term: Term) -> bool:
    """Return whether ``term`` is a :class:`Variable`."""
    return isinstance(term, Variable)


@dataclass(frozen=True)
class RelationalAtom:
    """An atom ``R(t1, ..., tk)`` with terms that are variables or constants."""

    relation: str
    terms: tuple[Term, ...]

    def variables(self) -> tuple[Variable, ...]:
        """Return the variables of the atom, in order of first occurrence."""
        seen: dict[Variable, None] = {}
        for term in self.terms:
            if is_variable(term) and term not in seen:
                seen[term] = None
        return tuple(seen)

    def constants(self) -> frozenset[Term]:
        """Return the constants appearing in the atom."""
        return frozenset(t for t in self.terms if not is_variable(t))

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({args})"


class ConjunctiveQuery:
    """A conjunction of :class:`RelationalAtom` with a tuple of output variables.

    ``outputs`` lists the free (answer) variables; when omitted, every
    variable of the body is free, which matches how s-t tgd bodies are used
    (all body variables are universally quantified and exported to the head).

    >>> x, y = Variable("x"), Variable("y")
    >>> q = ConjunctiveQuery([RelationalAtom("R", (x, y))], outputs=(x,))
    >>> str(q)
    'R(x, y) -> (x)'
    """

    def __init__(
        self,
        atoms: Iterable[RelationalAtom],
        outputs: Sequence[Variable] | None = None,
    ):
        self.atoms: tuple[RelationalAtom, ...] = tuple(atoms)
        if not self.atoms:
            raise SchemaError("a conjunctive query needs at least one atom")
        self._hash: int | None = None
        body_vars = self.variables()
        if outputs is None:
            self.outputs: tuple[Variable, ...] = body_vars
        else:
            self.outputs = tuple(outputs)
            unknown = [v for v in self.outputs if v not in body_vars]
            if unknown:
                names = ", ".join(v.name for v in unknown)
                raise SchemaError(f"output variables not in query body: {names}")

    def variables(self) -> tuple[Variable, ...]:
        """Return all body variables in order of first occurrence."""
        seen: dict[Variable, None] = {}
        for atom in self.atoms:
            for var in atom.variables():
                seen.setdefault(var, None)
        return tuple(seen)

    def constants(self) -> frozenset[Term]:
        """Return all constants appearing in the body."""
        result: set[Term] = set()
        for atom in self.atoms:
            result.update(atom.constants())
        return frozenset(result)

    def validate(self, schema: RelationalSchema) -> None:
        """Check every atom against ``schema`` (existence and arity)."""
        for atom in self.atoms:
            symbol = schema[atom.relation]
            if len(atom.terms) != symbol.arity:
                raise SchemaError(
                    f"atom {atom} has {len(atom.terms)} terms, but {symbol} "
                    f"expects {symbol.arity}"
                )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self.atoms == other.atoms and self.outputs == other.outputs

    def __hash__(self) -> int:
        # Memoised: queries are immutable and hashed hot by caches.
        if self._hash is None:
            self._hash = hash((self.atoms, self.outputs))
        return self._hash

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.atoms)
        heads = ", ".join(v.name for v in self.outputs)
        return f"{body} -> ({heads})"

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({self})"
