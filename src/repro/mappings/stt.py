"""Source-to-target tuple-generating dependencies (s-t tgds).

An s-t tgd is ``∀x̄. (φ_R(x̄) → ∃ȳ. ψ_Σ(x̄, ȳ))`` where φ is a conjunctive
query over the relational source and ψ a CNRE over the target alphabet
(paper, Section 2, "Schema mappings").  The frontier — the variables of x̄
that appear in ψ — is inferred: every head variable that also occurs in the
body is universally quantified, the rest of the head variables are
existential.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Iterator

from repro.engine.matcher import TriggerMatcher
from repro.errors import SchemaError
from repro.graph.cnre import CNREQuery
from repro.graph.database import GraphDatabase
from repro.relational.evaluate import cq_homomorphisms
from repro.relational.instance import RelationalInstance
from repro.relational.query import ConjunctiveQuery, Variable

if TYPE_CHECKING:  # annotation-only import; avoids an import cycle
    from repro.chase.result import ChaseStats

Node = Hashable


class SourceToTargetTgd:
    """An s-t tgd with a relational body and a CNRE head.

    >>> from repro.mappings.parser import parse_st_tgd
    >>> tgd = parse_st_tgd(
    ...     "Flight(x1, x2, x3), Hotel(x1, x4) -> "
    ...     "(x2, f . f*, y), (y, h, x4), (y, f . f*, x3)")
    >>> sorted(v.name for v in tgd.frontier)
    ['x2', 'x3', 'x4']
    >>> sorted(v.name for v in tgd.existentials)
    ['y']
    """

    def __init__(self, body: ConjunctiveQuery, head: CNREQuery, name: str = ""):
        self.body = body
        self.head = head
        self.name = name
        self._hash: int | None = None
        body_vars = set(body.variables())
        head_vars = head.variables()
        self.frontier: tuple[Variable, ...] = tuple(
            v for v in head_vars if v in body_vars
        )
        self.existentials: tuple[Variable, ...] = tuple(
            v for v in head_vars if v not in body_vars
        )
        if head.constants():
            raise SchemaError(
                "s-t tgd heads use variables only (paper, Section 2); "
                f"found constants {sorted(map(repr, head.constants()))}"
            )

    def body_matches(
        self, instance: RelationalInstance, stats: "ChaseStats | None" = None
    ) -> Iterator[dict[Variable, Node]]:
        """Yield homomorphisms of the body into the source instance.

        ``stats`` optionally records index hits into a
        :class:`~repro.chase.result.ChaseStats`.
        """
        yield from cq_homomorphisms(self.body, instance, stats=stats)

    def head_satisfied(
        self,
        graph: GraphDatabase,
        frontier_values: dict[Variable, Node],
    ) -> bool:
        """Return whether ∃ȳ. ψ holds in ``graph`` under ``frontier_values``."""
        seed = {v: frontier_values[v] for v in self.frontier}
        for _ in TriggerMatcher(graph).matches(self.head, seed=seed):
            return True
        return False

    def violations(
        self, instance: RelationalInstance, graph: GraphDatabase
    ) -> Iterator[dict[Variable, Node]]:
        """Yield body matches whose head is not satisfied in ``graph``."""
        for match in self.body_matches(instance):
            frontier_values = {v: match[v] for v in self.frontier}
            if not self.head_satisfied(graph, frontier_values):
                yield match

    def is_satisfied(
        self, instance: RelationalInstance, graph: GraphDatabase
    ) -> bool:
        """Return whether ``(instance, graph)`` satisfies the tgd."""
        for _ in self.violations(instance, graph):
            return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourceToTargetTgd):
            return NotImplemented
        return self.body == other.body and self.head == other.head

    def __hash__(self) -> int:
        # Memoised: tgds are immutable after construction and hashed hot
        # (the SAT-pipeline cache keys on the full tgd tuple).
        if self._hash is None:
            self._hash = hash((self.body, self.head))
        return self._hash

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body.atoms)
        head = " ∧ ".join(str(a) for a in self.head.atoms)
        return f"{body} → ∃{','.join(v.name for v in self.existentials) or '∅'}. {head}"

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"SourceToTargetTgd{label}({self})"
