"""Target equality-generating dependencies (egds).

An egd is ``∀x̄. (ψ_Σ(x̄) → x₁ = x₂)`` with ψ a CNRE over the target alphabet
and x₁, x₂ among its variables (paper, Section 2, "Target constraints").
A graph satisfies the egd when every homomorphism of ψ assigns the same node
to x₁ and x₂.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.engine.matcher import TriggerMatcher
from repro.errors import SchemaError
from repro.graph.cnre import CNREQuery
from repro.graph.database import GraphDatabase
from repro.relational.query import Variable

Node = Hashable


class TargetEgd:
    """An egd ``ψ_Σ(x̄) → x₁ = x₂``.

    >>> from repro.mappings.parser import parse_egd
    >>> egd = parse_egd("(x1, h, x3), (x2, h, x3) -> x1 = x2")
    >>> egd.left.name, egd.right.name
    ('x1', 'x2')
    """

    def __init__(self, body: CNREQuery, left: Variable, right: Variable, name: str = ""):
        body_vars = set(body.variables())
        for var in (left, right):
            if var not in body_vars:
                raise SchemaError(f"egd equality variable {var} not in body")
        self.body = body
        self.left = left
        self.right = right
        self.name = name
        self._hash: int | None = None

    def violations(self, graph: GraphDatabase) -> Iterator[tuple[Node, Node]]:
        """Yield pairs ``(h(x₁), h(x₂))`` with ``h(x₁) ≠ h(x₂)``.

        Each yielded pair is a witness that the egd fires and is violated;
        the egd chase consumes these to decide merges.  Matching runs on
        the shared indexed :class:`~repro.engine.matcher.TriggerMatcher`.
        """
        seen: set[tuple[Node, Node]] = set()
        for hom in TriggerMatcher(graph).matches(self.body):
            left_value, right_value = hom[self.left], hom[self.right]
            if left_value != right_value:
                pair = (left_value, right_value)
                if pair not in seen:
                    seen.add(pair)
                    yield pair

    def is_satisfied(self, graph: GraphDatabase) -> bool:
        """Return whether ``graph`` satisfies the egd."""
        for _ in self.violations(graph):
            return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TargetEgd):
            return NotImplemented
        return (
            self.body == other.body
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        # Memoised: the egd is immutable after construction, and hot paths
        # (lru-cached encodes, the SAT-pipeline cache key) hash whole
        # constraint tuples repeatedly.
        if self._hash is None:
            self._hash = hash((self.body, self.left, self.right))
        return self._hash

    def __str__(self) -> str:
        body = " ∧ ".join(str(a) for a in self.body.atoms)
        return f"{body} → {self.left} = {self.right}"

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"TargetEgd{label}({self})"
