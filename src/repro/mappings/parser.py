"""Concrete syntax for dependencies.

The syntax mirrors the paper's notation with ASCII punctuation::

    s-t tgd     Flight(x1,x2,x3), Hotel(x1,x4) -> (x2, f.f*, y), (y, h, x4), (y, f.f*, x3)
    egd         (x1, h, x3), (x2, h, x3) -> x1 = x2
    target tgd  (x, a, y) -> (x, b, z), (z, c, y)
    sameAs      (x1, h, x3), (x2, h, x3) -> (x1, sameAs, x2)

CNRE atoms are written ``(subject, nre, object)`` where the NRE uses the
syntax of :mod:`repro.graph.parser`.  Identifiers starting with a lowercase
letter are variables; quoted strings and identifiers starting uppercase or
with a digit are constants (node ids).
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.graph.cnre import CNREAtom, CNREQuery
from repro.graph.nre import Label
from repro.graph.parser import parse_nre
from repro.mappings.egd import TargetEgd
from repro.mappings.sameas import SAME_AS_LABEL, SameAsConstraint
from repro.mappings.stt import SourceToTargetTgd
from repro.mappings.target_tgd import TargetTgd
from repro.relational.parser import parse_cq
from repro.relational.query import Variable


def _split_top_level(text: str, separator: str) -> list[str]:
    """Split ``text`` on ``separator`` occurrences outside (), [] and quotes."""
    parts: list[str] = []
    depth = 0
    quote: str | None = None
    current: list[str] = []
    for char in text:
        if quote is not None:
            current.append(char)
            if char == quote:
                quote = None
            continue
        if char in "'\"":
            quote = char
            current.append(char)
        elif char in "([":
            depth += 1
            current.append(char)
        elif char in ")]":
            depth -= 1
            if depth < 0:
                raise ParseError("unbalanced brackets", text)
            current.append(char)
        elif char == separator and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if depth != 0 or quote is not None:
        raise ParseError("unbalanced brackets or quotes", text)
    parts.append("".join(current).strip())
    return parts


def _parse_term(text: str) -> object:
    text = text.strip()
    if not text:
        raise ParseError("empty term in CNRE atom", text)
    if text[0] in "'\"":
        if len(text) < 2 or text[-1] != text[0]:
            raise ParseError("unterminated quoted constant", text)
        return text[1:-1]
    if text[0].islower() or text[0] == "_":
        return Variable(text)
    return text  # uppercase or digit start: a node-id constant


def _parse_cnre_atom(chunk: str) -> CNREAtom:
    chunk = chunk.strip()
    if not (chunk.startswith("(") and chunk.endswith(")")):
        raise ParseError(f"CNRE atom must be parenthesised: {chunk!r}", chunk)
    inner = chunk[1:-1]
    parts = _split_top_level(inner, ",")
    if len(parts) != 3:
        raise ParseError(
            f"CNRE atom needs exactly (subject, nre, object), got {len(parts)} parts",
            chunk,
        )
    subject = _parse_term(parts[0])
    expr = parse_nre(parts[1])
    obj = _parse_term(parts[2])
    return CNREAtom(subject, expr, obj)


def parse_cnre_atoms(text: str) -> CNREQuery:
    """Parse a comma-separated conjunction of ``(s, nre, o)`` atoms.

    >>> q = parse_cnre_atoms("(x, f . f*, y), (y, h, z)")
    >>> len(q.atoms)
    2
    """
    chunks = _split_top_level(text, ",")
    atoms = [_parse_cnre_atom(chunk) for chunk in chunks if chunk]
    if not atoms:
        raise ParseError("no CNRE atoms found", text)
    return CNREQuery(atoms)


def _split_arrow(text: str) -> tuple[str, str]:
    pieces = text.split("->")
    if len(pieces) != 2:
        raise ParseError("dependency needs exactly one '->'", text)
    return pieces[0].strip(), pieces[1].strip()


def parse_st_tgd(text: str, name: str = "") -> SourceToTargetTgd:
    """Parse an s-t tgd: relational body, CNRE head.

    >>> tgd = parse_st_tgd("R(x), P(y) -> (x, a, y)")
    >>> len(tgd.body.atoms), len(tgd.head.atoms)
    (2, 1)
    """
    body_text, head_text = _split_arrow(text)
    body = parse_cq(body_text)
    head = parse_cnre_atoms(head_text)
    return SourceToTargetTgd(body, head, name=name)


def parse_egd(text: str, name: str = "") -> TargetEgd:
    """Parse an egd: CNRE body, equality head ``x = y``.

    >>> egd = parse_egd("(x1, h, x3), (x2, h, x3) -> x1 = x2")
    >>> str(egd.left), str(egd.right)
    ('x1', 'x2')
    """
    body_text, head_text = _split_arrow(text)
    body = parse_cnre_atoms(body_text)
    sides = head_text.split("=")
    if len(sides) != 2:
        raise ParseError("egd head must be 'x = y'", text)
    left, right = _parse_term(sides[0]), _parse_term(sides[1])
    if not isinstance(left, Variable) or not isinstance(right, Variable):
        raise ParseError("egd equality sides must be variables", text)
    return TargetEgd(body, left, right, name=name)


def parse_target_tgd(text: str, name: str = "") -> TargetTgd:
    """Parse a target tgd: CNRE body, CNRE head."""
    body_text, head_text = _split_arrow(text)
    body = parse_cnre_atoms(body_text)
    head = parse_cnre_atoms(head_text)
    return TargetTgd(body, head, name=name)


def parse_sameas(text: str, name: str = "") -> SameAsConstraint:
    """Parse a sameAs constraint: CNRE body, head ``(x, sameAs, y)``.

    The head must be a single atom whose NRE is the bare ``sameAs`` label and
    whose endpoints are body variables.
    """
    body_text, head_text = _split_arrow(text)
    body = parse_cnre_atoms(body_text)
    head = parse_cnre_atoms(head_text)
    if len(head.atoms) != 1:
        raise ParseError("sameAs head must be a single atom", text)
    atom = head.atoms[0]
    if atom.nre != Label(SAME_AS_LABEL):
        raise ParseError(f"sameAs head label must be {SAME_AS_LABEL!r}", text)
    if not isinstance(atom.subject, Variable) or not isinstance(atom.object, Variable):
        raise ParseError("sameAs head endpoints must be variables", text)
    return SameAsConstraint(body, atom.subject, atom.object, name=name)
