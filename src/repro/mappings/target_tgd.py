"""Target tuple-generating dependencies.

A target tgd is ``∀x̄. (φ_Σ(x̄) → ∃ȳ. ψ_Σ(x̄, ȳ))`` with both sides CNREs over
the target alphabet (paper, Section 2).  sameAs constraints are the special
case in which the head is a single ``sameAs``-labeled atom between two body
variables — see :mod:`repro.mappings.sameas`.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.engine.matcher import TriggerMatcher
from repro.graph.cnre import CNREQuery
from repro.graph.database import GraphDatabase
from repro.relational.query import Variable

Node = Hashable


class TargetTgd:
    """A target tgd ``φ_Σ(x̄) → ∃ȳ. ψ_Σ(x̄, ȳ)``.

    The frontier (shared variables) is inferred exactly as for s-t tgds.
    """

    def __init__(self, body: CNREQuery, head: CNREQuery, name: str = ""):
        self.body = body
        self.head = head
        self.name = name
        body_vars = set(body.variables())
        head_vars = head.variables()
        self.frontier: tuple[Variable, ...] = tuple(
            v for v in head_vars if v in body_vars
        )
        self.existentials: tuple[Variable, ...] = tuple(
            v for v in head_vars if v not in body_vars
        )

    def violations(self, graph: GraphDatabase) -> Iterator[dict[Variable, Node]]:
        """Yield body homomorphisms whose head has no extension in ``graph``.

        Matching runs on the shared indexed
        :class:`~repro.engine.matcher.TriggerMatcher`.
        """
        matcher = TriggerMatcher(graph)
        yield from self.violations_among(graph, matcher.matches(self.body), matcher)

    def violations_among(
        self,
        graph: GraphDatabase,
        homs: Iterator[dict[Variable, Node]],
        matcher: TriggerMatcher | None = None,
    ) -> Iterator[dict[Variable, Node]]:
        """Filter a stream of body homomorphisms down to the violations.

        This is the single definition of the tgd's violation semantics
        (frontier projection seeding an existential head check);
        :meth:`violations` feeds it the full trigger set, while the
        semi-naive chase feeds it a delta-restricted one together with its
        own matcher.
        """
        matcher = matcher if matcher is not None else TriggerMatcher(graph)
        for hom in homs:
            seed = {v: hom[v] for v in self.frontier}
            satisfied = False
            for _ in matcher.matches(self.head, seed=seed):
                satisfied = True
                break
            if not satisfied:
                yield hom

    def is_satisfied(self, graph: GraphDatabase) -> bool:
        """Return whether ``graph`` satisfies the target tgd."""
        for _ in self.violations(graph):
            return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TargetTgd):
            return NotImplemented
        return self.body == other.body and self.head == other.head

    def __hash__(self) -> int:
        return hash((self.body, self.head))

    def __str__(self) -> str:
        body = " ∧ ".join(str(a) for a in self.body.atoms)
        head = " ∧ ".join(str(a) for a in self.head.atoms)
        existentials = ",".join(v.name for v in self.existentials) or "∅"
        return f"{body} → ∃{existentials}. {head}"

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"TargetTgd{label}({self})"
