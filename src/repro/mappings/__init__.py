"""Schema mappings and target constraints.

The four dependency classes of the paper (Section 2):

* :class:`~repro.mappings.stt.SourceToTargetTgd` — s-t tgds
  ``∀x̄. φ_R(x̄) → ∃ȳ. ψ_Σ(x̄, ȳ)`` with a relational CQ body and a CNRE head;
* :class:`~repro.mappings.egd.TargetEgd` — target equality-generating
  dependencies ``∀x̄. ψ_Σ(x̄) → x₁ = x₂``;
* :class:`~repro.mappings.target_tgd.TargetTgd` — target tgds
  ``∀x̄. φ_Σ(x̄) → ∃ȳ. ψ_Σ(x̄, ȳ)``;
* :class:`~repro.mappings.sameas.SameAsConstraint` — the paper's relaxation
  ``∀x̄. ψ_Σ(x̄) → (x₁, sameAs, x₂)``, a special case of target tgds.

Each class knows how to check its own satisfaction against an
``(instance, graph)`` pair or a graph, and how to enumerate violations
(the chase consumes violations).  :mod:`repro.mappings.parser` provides a
concrete syntax used in the scenario modules, docs, and tests.
"""

from repro.mappings.stt import SourceToTargetTgd
from repro.mappings.egd import TargetEgd
from repro.mappings.target_tgd import TargetTgd
from repro.mappings.sameas import SameAsConstraint, SAME_AS_LABEL
from repro.mappings.parser import (
    parse_st_tgd,
    parse_egd,
    parse_target_tgd,
    parse_sameas,
    parse_cnre_atoms,
)

__all__ = [
    "SourceToTargetTgd",
    "TargetEgd",
    "TargetTgd",
    "SameAsConstraint",
    "SAME_AS_LABEL",
    "parse_st_tgd",
    "parse_egd",
    "parse_target_tgd",
    "parse_sameas",
    "parse_cnre_atoms",
]
