"""sameAs target constraints — the paper's RDF-inspired relaxation of egds.

A sameAs constraint is ``∀x̄. (ψ_Σ(x̄) → (x₁, sameAs, x₂))`` (paper,
Section 2): instead of *equating* x₁ and x₂ as an egd would, it requires a
``sameAs``-labeled edge between them.  This makes the existence of solutions
trivial (Section 4.2: any graph can be repaired by adding sameAs edges, even
between constants) while certain answers stay coNP-hard (Proposition 4.3).

The constraint is a special case of :class:`~repro.mappings.target_tgd.TargetTgd`
(:meth:`SameAsConstraint.as_target_tgd` performs the embedding), but has a
dedicated class because the chase treats it specially: violations are
repaired by *adding one edge*, never by inventing nulls.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.engine.matcher import TriggerMatcher
from repro.errors import SchemaError
from repro.graph.cnre import CNREAtom, CNREQuery
from repro.graph.database import GraphDatabase
from repro.graph.nre import label
from repro.mappings.target_tgd import TargetTgd
from repro.relational.query import Variable

Node = Hashable

SAME_AS_LABEL = "sameAs"
"""The distinguished edge label for sameAs constraints (cf. RDF/OWL sameAs)."""


class SameAsConstraint:
    """A constraint ``ψ_Σ(x̄) → (x₁, sameAs, x₂)``.

    >>> from repro.mappings.parser import parse_sameas
    >>> c = parse_sameas("(x1, h, x3), (x2, h, x3) -> (x1, sameAs, x2)")
    >>> c.left.name, c.right.name
    ('x1', 'x2')
    """

    def __init__(self, body: CNREQuery, left: Variable, right: Variable, name: str = ""):
        body_vars = set(body.variables())
        for var in (left, right):
            if var not in body_vars:
                raise SchemaError(f"sameAs head variable {var} not in body")
        self.body = body
        self.left = left
        self.right = right
        self.name = name

    def violations(self, graph: GraphDatabase) -> Iterator[tuple[Node, Node]]:
        """Yield pairs ``(h(x₁), h(x₂))`` lacking the required sameAs edge.

        ``sameAs`` is read as implicitly reflexive (the RDF/OWL semantics):
        a body match with ``h(x₁) = h(x₂)`` never demands an explicit
        self-loop.  The paper's Figure 1(c) solution G3 carries sameAs edges
        only between the *distinct* cities sharing a hotel, confirming this
        reading.
        """
        yield from self.violations_among(graph, TriggerMatcher(graph).matches(self.body))

    def violations_among(
        self, graph: GraphDatabase, homs: Iterator[dict[Variable, Node]]
    ) -> Iterator[tuple[Node, Node]]:
        """Filter a stream of body homomorphisms down to violated pairs.

        This is the single definition of the constraint's violation
        semantics (implicit reflexivity, pair dedup, satisfaction check);
        :meth:`violations` feeds it the full trigger set, while the
        semi-naive chase feeds it a delta-restricted one.
        """
        seen: set[tuple[Node, Node]] = set()
        for hom in homs:
            pair = (hom[self.left], hom[self.right])
            if pair[0] == pair[1] or pair in seen:
                continue
            seen.add(pair)
            if not graph.has_edge(pair[0], SAME_AS_LABEL, pair[1]):
                yield pair

    def is_satisfied(self, graph: GraphDatabase) -> bool:
        """Return whether every firing of the body has its sameAs edge."""
        for _ in self.violations(graph):
            return False
        return True

    def as_target_tgd(self) -> TargetTgd:
        """Embed the constraint into the target-tgd class (Section 4.2).

        The embedding is literal: the resulting tgd demands a sameAs edge
        for *every* body match, including reflexive ones — it does not
        inherit this class's implicit-reflexivity reading.  Use it where
        the strict Section 2 definition is wanted.
        """
        head = CNREQuery([CNREAtom(self.left, label(SAME_AS_LABEL), self.right)])
        return TargetTgd(self.body, head, name=self.name or "sameAs")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SameAsConstraint):
            return NotImplemented
        return (
            self.body == other.body
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash((self.body, self.left, self.right))

    def __str__(self) -> str:
        body = " ∧ ".join(str(a) for a in self.body.atoms)
        return f"{body} → ({self.left}, {SAME_AS_LABEL}, {self.right})"

    def __repr__(self) -> str:
        label_text = f" {self.name!r}" if self.name else ""
        return f"SameAsConstraint{label_text}({self})"
