"""Weak acyclicity: a termination guarantee for the target-tgd chase.

The classical condition of Fagin–Kolaitis–Miller–Popa (the paper's
reference [11]) adapted to the graph setting: each edge label ``a`` of Σ
behaves as a binary relation with two *positions* — ``(a, "src")`` and
``(a, "dst")``.  The *dependency graph* of a set of target tgds has the
positions as vertices and, for every tgd ``φ(x̄) → ∃ȳ. ψ(x̄, ȳ)``, every
universally quantified variable ``x`` occurring in body position ``p``:

* a **regular edge** ``p → q`` for every head position ``q`` where ``x``
  occurs — values may flow from p to q;
* a **special edge** ``p ⇒ q`` for every head position ``q`` holding an
  *existential* variable — a value in p causes invention of a fresh value
  in q.

The tgd set is **weakly acyclic** iff no cycle goes through a special
edge; then the chase terminates in polynomially many steps, because fresh
values cannot feed their own creation.

Scope: the analysis reads single-symbol head/body atoms exactly; an atom
with a composite NRE contributes conservatively — every label it mentions
is treated as if the atom occupied both positions of that label (an
over-approximation that can only flag *more* cycles, never fewer, so
"weakly acyclic" verdicts remain sound guarantees of termination).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.graph.classes import alphabet_of
from repro.graph.nre import Label
from repro.mappings.target_tgd import TargetTgd
from repro.relational.query import Variable, is_variable

Position = tuple[str, str]  # (label, "src" | "dst")


@dataclass
class DependencyGraph:
    """The position dependency graph with regular and special edges."""

    positions: set[Position] = field(default_factory=set)
    regular: set[tuple[Position, Position]] = field(default_factory=set)
    special: set[tuple[Position, Position]] = field(default_factory=set)

    def all_edges(self) -> set[tuple[Position, Position]]:
        """Regular and special edges together."""
        return self.regular | self.special


def _atom_positions(atom) -> list[tuple[object, Position]]:
    """(term, position) pairs contributed by one CNRE atom.

    Single-symbol atoms place their subject at ``(a, src)`` and object at
    ``(a, dst)``.  Composite atoms over-approximate: both endpoints are
    charged to both positions of every mentioned label.
    """
    if isinstance(atom.nre, Label):
        return [
            (atom.subject, (atom.nre.name, "src")),
            (atom.object, (atom.nre.name, "dst")),
        ]
    contributions: list[tuple[object, Position]] = []
    for lab in alphabet_of(atom.nre):
        for term in (atom.subject, atom.object):
            contributions.append((term, (lab, "src")))
            contributions.append((term, (lab, "dst")))
    return contributions


def dependency_graph(tgds: Iterable[TargetTgd]) -> DependencyGraph:
    """Build the position dependency graph of a target-tgd set."""
    graph = DependencyGraph()
    for tgd in tgds:
        body_positions: dict[Variable, list[Position]] = {}
        for atom in tgd.body.atoms:
            for term, position in _atom_positions(atom):
                graph.positions.add(position)
                if is_variable(term):
                    body_positions.setdefault(term, []).append(position)

        head_variable_positions: dict[Variable, list[Position]] = {}
        existential_positions: list[Position] = []
        existentials = set(tgd.existentials)
        for atom in tgd.head.atoms:
            for term, position in _atom_positions(atom):
                graph.positions.add(position)
                if is_variable(term):
                    if term in existentials:
                        existential_positions.append(position)
                    else:
                        head_variable_positions.setdefault(term, []).append(position)

        frontier = set(tgd.frontier)
        for variable, sources in body_positions.items():
            for p in sources:
                for q in head_variable_positions.get(variable, []):
                    graph.regular.add((p, q))
                if variable in frontier:
                    # A frontier value propagating into the head triggers
                    # invention of fresh values at every existential position.
                    for q in existential_positions:
                        graph.special.add((p, q))
    return graph


def _strongly_connected_components(
    vertices: set[Position], edges: set[tuple[Position, Position]]
) -> list[set[Position]]:
    """Tarjan's algorithm, iterative to dodge recursion limits."""
    adjacency: dict[Position, list[Position]] = {v: [] for v in vertices}
    for source, target in edges:
        adjacency[source].append(target)

    index_of: dict[Position, int] = {}
    low: dict[Position, int] = {}
    on_stack: set[Position] = set()
    stack: list[Position] = []
    components: list[set[Position]] = []
    counter = [0]

    for root in vertices:
        if root in index_of:
            continue
        work: list[tuple[Position, int]] = [(root, 0)]
        while work:
            vertex, child_index = work[-1]
            if child_index == 0:
                index_of[vertex] = low[vertex] = counter[0]
                counter[0] += 1
                stack.append(vertex)
                on_stack.add(vertex)
            children = adjacency[vertex]
            advanced = False
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index_of:
                    work[-1] = (vertex, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[vertex] = min(low[vertex], index_of[child])
            if advanced:
                continue
            work.pop()
            if low[vertex] == index_of[vertex]:
                component: set[Position] = set()
                while True:
                    node = stack.pop()
                    on_stack.discard(node)
                    component.add(node)
                    if node == vertex:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[vertex])
    return components


def is_weakly_acyclic(tgds: Sequence[TargetTgd] | Iterable[TargetTgd]) -> bool:
    """Whether the target-tgd set is weakly acyclic (chase terminates).

    >>> from repro.mappings.parser import parse_target_tgd
    >>> is_weakly_acyclic([parse_target_tgd("(x, a, y), (y, a, z) -> (x, a, z)")])
    True
    >>> is_weakly_acyclic([parse_target_tgd("(x, a, y) -> (y, a, z)")])
    False
    """
    graph = dependency_graph(tgds)
    components = _strongly_connected_components(graph.positions, graph.all_edges())
    component_of: dict[Position, int] = {}
    for index, component in enumerate(components):
        for position in component:
            component_of[position] = index
    for source, target in graph.special:
        if component_of[source] == component_of[target]:
            # A special edge inside one SCC closes a cycle through itself.
            return False
    return True
