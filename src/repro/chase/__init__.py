"""Chase engines for relational-to-graph data exchange.

Five procedures, matching the paper's sections:

* :func:`~repro.chase.pattern_chase.chase_pattern` — the graph-pattern chase
  for arbitrary s-t tgds (Section 3.2, after [5]); output: a pattern that is
  a universal representative when there are no target constraints;
* :func:`~repro.chase.relational_chase.chase_relational` — the Section 3.1
  fragment (single-symbol heads): the classical relational chase with egds,
  producing an actual graph with labeled-null nodes (Figure 2);
* :func:`~repro.chase.egd_chase.chase_with_egds` — the Section 5 *adapted*
  chase: pattern chase followed by egd steps that merge nulls or fail on
  constant/constant conflicts; success does **not** guarantee a solution
  exists (Example 5.2) — see :mod:`repro.core.existence` for the complete
  decision procedures;
* :func:`~repro.chase.sameas_chase.solve_with_sameas` — the constructive
  polynomial solution for sameAs settings (Section 4.2): chase, instantiate,
  saturate sameAs edges;
* :func:`~repro.chase.target_tgd_chase.chase_target_tgds` — bounded
  oblivious chase of general target tgds on concrete graphs.

All engines report through :class:`~repro.chase.result.ChaseResult`, which
carries the produced pattern/graph, the failure witness if any, and step
statistics used by the benchmarks.
"""

from repro.chase.result import ChaseResult, ChaseStats
from repro.chase.pattern_chase import chase_pattern
from repro.chase.relational_chase import chase_relational
from repro.chase.egd_chase import chase_with_egds, pattern_symbol_view
from repro.chase.sameas_chase import solve_with_sameas, saturate_sameas
from repro.chase.target_tgd_chase import chase_target_tgds
from repro.chase.termination import (
    dependency_graph,
    is_weakly_acyclic,
    DependencyGraph,
)

__all__ = [
    "dependency_graph",
    "is_weakly_acyclic",
    "DependencyGraph",
    "ChaseResult",
    "ChaseStats",
    "chase_pattern",
    "chase_relational",
    "chase_with_egds",
    "pattern_symbol_view",
    "solve_with_sameas",
    "saturate_sameas",
    "chase_target_tgds",
]
