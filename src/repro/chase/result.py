"""Chase outcome containers.

A chase run ends in one of two ways:

* *success* — a pattern (pattern-level chases) or a graph (graph-level
  chases) was produced;
* *failure* — an egd attempted to equate two distinct constants; the failure
  witness records which ones.  Failure proves that no solution exists
  (Section 5 of the paper); the converse does **not** hold for the adapted
  chase (Example 5.2), which is why :class:`ChaseResult.failed` must never
  be negated into an existence claim.

Statistics are collected uniformly so benchmarks can report step counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.graph.database import GraphDatabase
from repro.patterns.pattern import GraphPattern


@dataclass
class ChaseStats:
    """Step counters for one chase run."""

    st_applications: int = 0
    """How many s-t tgd triggers fired (one head instantiation each)."""

    egd_firings: int = 0
    """How many egd violations were processed (merges or the final failure)."""

    null_merges: int = 0
    """How many null↦node substitutions were performed."""

    sameas_edges_added: int = 0
    """How many sameAs edges the saturation added."""

    tgd_applications: int = 0
    """How many target-tgd triggers fired."""

    rounds: int = 0
    """Fixpoint iterations of the outer loop."""

    index_hits: int = 0
    """How many trigger-matching steps were answered from a hash index
    (adjacency / first-column lookups) instead of a full scan."""

    @property
    def triggers_fired(self) -> int:
        """Total dependency firings of any kind, for benchmark reporting.

        >>> ChaseStats(st_applications=2, egd_firings=1).triggers_fired
        3
        """
        return (
            self.st_applications
            + self.egd_firings
            + self.tgd_applications
            + self.sameas_edges_added
        )

    def as_dict(self) -> dict[str, int]:
        """Every counter (plus derived ``triggers_fired``) as a plain dict.

        The single source of truth for wire formats and telemetry folding
        — new counters added to the dataclass show up everywhere at once.

        >>> ChaseStats(st_applications=2, egd_firings=1).as_dict()[
        ...     "triggers_fired"]
        3
        """
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["triggers_fired"] = self.triggers_fired
        return out

    def merge(self, other: "ChaseStats") -> "ChaseStats":
        """Return the component-wise sum of two stat records.

        ``rounds`` takes the maximum (parallel phases report their longest
        fixpoint), every counter adds up.

        >>> a = ChaseStats(st_applications=1, rounds=2)
        >>> b = ChaseStats(egd_firings=3, rounds=1)
        >>> merged = a.merge(b)
        >>> merged.st_applications, merged.egd_firings, merged.rounds
        (1, 3, 2)
        """
        return ChaseStats(
            st_applications=self.st_applications + other.st_applications,
            egd_firings=self.egd_firings + other.egd_firings,
            null_merges=self.null_merges + other.null_merges,
            sameas_edges_added=self.sameas_edges_added + other.sameas_edges_added,
            tgd_applications=self.tgd_applications + other.tgd_applications,
            rounds=max(self.rounds, other.rounds),
            index_hits=self.index_hits + other.index_hits,
        )


@dataclass
class ChaseResult:
    """The outcome of a chase run.

    Exactly one of ``pattern`` / ``graph`` is set by each engine (the
    pattern chase and egd chase produce patterns; the relational, sameAs and
    target-tgd chases produce graphs).  ``failed`` implies both may be the
    partially-chased object for inspection, but the run proved that **no
    solution exists**; ``failure_witness`` then names the two constants the
    offending egd tried to merge.
    """

    pattern: GraphPattern | None = None
    graph: GraphDatabase | None = None
    failed: bool = False
    failure_witness: tuple[object, object] | None = None
    stats: ChaseStats = field(default_factory=ChaseStats)

    @property
    def succeeded(self) -> bool:
        """Whether the chase ran to completion without failing.

        >>> ChaseResult(graph=GraphDatabase()).succeeded
        True
        >>> ChaseResult(failed=True, failure_witness=("c1", "c2")).succeeded
        False
        """
        return not self.failed

    def expect_pattern(self) -> GraphPattern:
        """Return the produced pattern, asserting the run made one.

        >>> ChaseResult(pattern=GraphPattern()).expect_pattern()
        GraphPattern(|N|=0, |D|=0)
        >>> ChaseResult(graph=GraphDatabase()).expect_pattern()
        Traceback (most recent call last):
            ...
        ValueError: this chase run produced no pattern
        """
        if self.pattern is None:
            raise ValueError("this chase run produced no pattern")
        return self.pattern

    def expect_graph(self) -> GraphDatabase:
        """Return the produced graph, asserting the run made one.

        >>> ChaseResult(graph=GraphDatabase()).expect_graph()
        GraphDatabase(|V|=0, |E|=0, Σ=[])
        >>> ChaseResult(pattern=GraphPattern()).expect_graph()
        Traceback (most recent call last):
            ...
        ValueError: this chase run produced no graph
        """
        if self.graph is None:
            raise ValueError("this chase run produced no graph")
        return self.graph
