"""The graph-pattern chase for s-t tgds (Section 3.2, after [5]).

For every s-t tgd ``φ_R(x̄) → ∃ȳ. ψ_Σ(x̄, ȳ)`` and every homomorphism ``h``
of the body into the source instance, the chase adds to the pattern one edge
``(ĥ(s), r, ĥ(o))`` per head atom ``(s, r, o)``, where ``ĥ`` extends ``h``
with one fresh labeled null per existential variable of ``ȳ``.

Because s-t tgds read only the (fixed) source, a single pass over all
triggers reaches the fixpoint: no new source facts ever appear.  The chase
is *oblivious* — each distinct body homomorphism fires once, which is the
variant [5] uses to build universal representatives and which reproduces
Figure 3 exactly (three body matches ⇒ three nulls, nine edges).

The produced pattern is a universal representative of all solutions when
the setting has no target constraints: ``Sol_Ω(I) = Rep_Σ(π)``.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.mappings.stt import SourceToTargetTgd
from repro.patterns.pattern import GraphPattern
from repro.relational.instance import RelationalInstance
from repro.relational.query import Variable, is_variable
from repro.chase.result import ChaseResult, ChaseStats

Node = Hashable


def chase_pattern(
    st_tgds: Sequence[SourceToTargetTgd] | Iterable[SourceToTargetTgd],
    instance: RelationalInstance,
    alphabet: Iterable[str] | None = None,
) -> ChaseResult:
    """Chase ``instance`` with ``st_tgds``, returning the pattern result.

    ``alphabet`` fixes the pattern's target alphabet Σ; when omitted it is
    inferred from the labels mentioned in tgd heads.

    >>> from repro.scenarios.flights import flights_setting  # doctest: +SKIP
    """
    tgds = list(st_tgds)
    sigma: set[str] = set(alphabet) if alphabet is not None else set()
    if alphabet is None:
        from repro.graph.classes import alphabet_of

        for tgd in tgds:
            for expr in tgd.head.expressions():
                sigma.update(alphabet_of(expr))

    pattern = GraphPattern(alphabet=sigma)
    stats = ChaseStats()

    for tgd in tgds:
        # Deterministic trigger order keeps null labels reproducible.  Body
        # matching runs on the source instance's first-column hash index
        # (see repro.relational.evaluate); ``stats`` records the hits.
        matches = sorted(tgd.body_matches(instance, stats=stats), key=lambda m: sorted(
            (v.name, repr(m[v])) for v in m
        ))
        # Oblivious chase with duplicate-trigger suppression: two body
        # homomorphisms agreeing on every variable are one trigger; distinct
        # homomorphisms fire separately even when they agree on the frontier
        # (that is what yields the three nulls N1..N3 in Figure 3).
        fired: set[tuple] = set()
        for match in matches:
            full_key = tuple(repr(match[v]) for v in tgd.body.variables())
            if full_key in fired:
                continue
            fired.add(full_key)
            _apply_trigger(pattern, tgd, match)
            stats.st_applications += 1

    stats.rounds = 1
    return ChaseResult(pattern=pattern, stats=stats)


def _apply_trigger(
    pattern: GraphPattern,
    tgd: SourceToTargetTgd,
    match: dict[Variable, Node],
) -> None:
    """Instantiate the head of ``tgd`` under ``match`` into ``pattern``."""
    assignment: dict[Variable, Node] = {v: match[v] for v in tgd.frontier}
    for existential in tgd.existentials:
        assignment[existential] = pattern.fresh_null()
    for atom in tgd.head.atoms:
        source = assignment[atom.subject] if is_variable(atom.subject) else atom.subject
        target = assignment[atom.object] if is_variable(atom.object) else atom.object
        pattern.add_edge(source, atom.nre, target)
