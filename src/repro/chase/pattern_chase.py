"""The graph-pattern chase for s-t tgds (Section 3.2, after [5]).

For every s-t tgd ``φ_R(x̄) → ∃ȳ. ψ_Σ(x̄, ȳ)`` and every homomorphism ``h``
of the body into the source instance, the chase adds to the pattern one edge
``(ĥ(s), r, ĥ(o))`` per head atom ``(s, r, o)``, where ``ĥ`` extends ``h``
with one fresh labeled null per existential variable of ``ȳ``.

Because s-t tgds read only the (fixed) source, a single pass over all
triggers reaches the fixpoint: no new source facts ever appear.  The chase
is *oblivious* — each distinct body homomorphism fires once, which is the
variant [5] uses to build universal representatives and which reproduces
Figure 3 exactly (three body matches ⇒ three nulls, nine edges).

The produced pattern is a universal representative of all solutions when
the setting has no target constraints: ``Sol_Ω(I) = Rep_Σ(π)``.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.mappings.stt import SourceToTargetTgd
from repro.patterns.pattern import GraphPattern
from repro.relational.evaluate import cq_match_rows
from repro.relational.instance import RelationalInstance
from repro.relational.query import Variable, is_variable
from repro.chase.result import ChaseResult, ChaseStats
from repro.telemetry import fold_stats, span

Node = Hashable


def chase_pattern(
    st_tgds: Sequence[SourceToTargetTgd] | Iterable[SourceToTargetTgd],
    instance: RelationalInstance,
    alphabet: Iterable[str] | None = None,
) -> ChaseResult:
    """Chase ``instance`` with ``st_tgds``, returning the pattern result.

    ``alphabet`` fixes the pattern's target alphabet Σ; when omitted it is
    inferred from the labels mentioned in tgd heads.

    >>> from repro.scenarios.flights import flights_setting  # doctest: +SKIP
    """
    tgds = list(st_tgds)
    sigma: set[str] = set(alphabet) if alphabet is not None else set()
    if alphabet is None:
        from repro.graph.classes import alphabet_of

        for tgd in tgds:
            for expr in tgd.head.expressions():
                sigma.update(alphabet_of(expr))

    pattern = GraphPattern(alphabet=sigma)
    stats = ChaseStats()

    with span("chase.pattern", tgds=len(tgds)):
        _fire_st_tgds(tgds, instance, pattern, stats)
    stats.rounds = 1
    fold_stats("chase", stats)
    return ChaseResult(pattern=pattern, stats=stats)


def _fire_st_tgds(
    tgds: Sequence[SourceToTargetTgd],
    instance: RelationalInstance,
    pattern: GraphPattern,
    stats: ChaseStats,
) -> None:
    """Fire every s-t tgd trigger over ``instance`` into ``pattern``."""
    for tgd in tgds:
        # All of the tgd's fireable triggers come out of *one* pass over
        # the source instance (the evaluator's batch entry point projects
        # each body homomorphism straight onto a value row — no per-match
        # dict materialisation, no re-discovery per trigger).  Body
        # matching runs on the instance's first-column hash index (see
        # repro.relational.evaluate); ``stats`` records the hits.
        variables = tuple(sorted(tgd.body.variables(), key=lambda v: v.name))
        rows = cq_match_rows(tgd.body, instance, variables, stats=stats)
        # Oblivious chase with duplicate-trigger suppression: two body
        # homomorphisms agreeing on every variable are one trigger; distinct
        # homomorphisms fire separately even when they agree on the frontier
        # (that is what yields the three nulls N1..N3 in Figure 3).
        # Deterministic trigger order keeps null labels reproducible: rows
        # are keyed by their per-variable reprs in variable-name order,
        # which sorts exactly like the per-match (name, repr) pair lists
        # the trigger loop used to sort — the names are shared across all
        # rows of one tgd, so the repr tuples alone decide the order.
        distinct: dict[tuple[str, ...], tuple] = {}
        for row in rows:
            key = tuple(repr(value) for value in row)
            if key not in distinct:
                distinct[key] = row
        batch = [distinct[key] for key in sorted(distinct)]
        _apply_triggers(pattern, tgd, variables, batch)
        stats.st_applications += len(batch)


def _apply_triggers(
    pattern: GraphPattern,
    tgd: SourceToTargetTgd,
    variables: tuple[Variable, ...],
    rows: list[tuple],
) -> None:
    """Instantiate the head of ``tgd`` under every row of ``rows``.

    The head's shape is compiled once per tgd into positional slots —
    each head-atom endpoint is either an index into the trigger row or
    an index into the trigger's fresh-null block — so applying a trigger
    is pure indexing, with the null allocation order (one null per
    existential, in declaration order) identical to the historical
    one-trigger-at-a-time loop.
    """
    slot = {variable: index for index, variable in enumerate(variables)}
    null_slot = {
        existential: index for index, existential in enumerate(tgd.existentials)
    }

    def endpoint(term):
        if not is_variable(term):
            return (_CONST, term)
        index = slot.get(term)
        if index is not None:
            return (_ROW, index)
        return (_NULL, null_slot[term])

    plan = tuple(
        (endpoint(atom.subject), atom.nre, endpoint(atom.object))
        for atom in tgd.head.atoms
    )
    null_count = len(tgd.existentials)
    fresh_null = pattern.fresh_null
    add_edge = pattern.add_edge
    for row in rows:
        nulls = [fresh_null() for _ in range(null_count)]
        for (source_kind, source_index), expr, (target_kind, target_index) in plan:
            source = (
                row[source_index]
                if source_kind is _ROW
                else nulls[source_index] if source_kind is _NULL else source_index
            )
            target = (
                row[target_index]
                if target_kind is _ROW
                else nulls[target_index] if target_kind is _NULL else target_index
            )
            add_edge(source, expr, target)


_ROW = object()
_NULL = object()
_CONST = object()
