"""The Section 3.1 fragment: relational chase with single-symbol heads.

When every NRE in s-t tgd heads is a bare symbol ``a ∈ Σ``, the target
schema behaves as a set of binary relations and the classical relational
chase applies (paper, Section 3.1): the chase of the s-t tgds materialises a
graph whose invented nodes are labeled nulls, and egd steps then merge nodes
directly on that graph (failing on constant/constant conflicts).

The output "can be essentially seen as a graph" (paper) — here it *is* a
:class:`~repro.graph.database.GraphDatabase` whose null nodes are
:class:`~repro.patterns.pattern.Null` values, and it is a universal solution
for the fragment.  Example 3.1 / Figure 2 is reproduced in
``benchmarks/bench_fig2_relational_chase.py``.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.chase.result import ChaseResult, ChaseStats
from repro.errors import NotSupportedError
from repro.graph.classes import is_single_symbol
from repro.graph.database import GraphDatabase
from repro.mappings.egd import TargetEgd
from repro.mappings.stt import SourceToTargetTgd
from repro.patterns.pattern import Null, is_null
from repro.relational.instance import RelationalInstance
from repro.relational.query import Variable, is_variable

Node = Hashable


def _check_fragment(tgds: Sequence[SourceToTargetTgd]) -> None:
    for tgd in tgds:
        for expr in tgd.head.expressions():
            if not is_single_symbol(expr):
                raise NotSupportedError(
                    "the relational chase handles the Section 3.1 fragment "
                    f"(single-symbol heads) only; offending NRE: {expr}"
                )


def chase_relational(
    st_tgds: Iterable[SourceToTargetTgd],
    egds: Sequence[TargetEgd],
    instance: RelationalInstance,
    alphabet: Iterable[str] | None = None,
) -> ChaseResult:
    """Chase in the single-symbol fragment, producing a concrete graph.

    Step 1 fires every s-t tgd trigger, adding plain labeled edges with
    fresh :class:`~repro.patterns.pattern.Null` nodes for existentials.
    Step 2 runs the egd fixpoint on the graph, merging nodes; equating two
    distinct constants fails the chase (then no solution exists — in this
    fragment the relational chase *is* sound and complete).
    """
    tgds = list(st_tgds)
    _check_fragment(tgds)
    sigma: set[str] | None = set(alphabet) if alphabet is not None else None
    graph = GraphDatabase(alphabet=sigma)
    stats = ChaseStats()
    null_counter = 0

    for tgd in tgds:
        matches = sorted(
            tgd.body_matches(instance),
            key=lambda m: sorted((v.name, repr(m[v])) for v in m),
        )
        fired: set[tuple] = set()
        for match in matches:
            key = tuple(repr(match[v]) for v in tgd.body.variables())
            if key in fired:
                continue
            fired.add(key)
            assignment: dict[Variable, Node] = {v: match[v] for v in tgd.frontier}
            for existential in tgd.existentials:
                null_counter += 1
                assignment[existential] = Null(f"N{null_counter}")
            for atom in tgd.head.atoms:
                source = (
                    assignment[atom.subject] if is_variable(atom.subject) else atom.subject
                )
                target = (
                    assignment[atom.object] if is_variable(atom.object) else atom.object
                )
                graph.add_edge(source, atom.nre.name, target)  # type: ignore[union-attr]
            stats.st_applications += 1

    return _egd_fixpoint_on_graph(graph, list(egds), stats)


def _egd_fixpoint_on_graph(
    graph: GraphDatabase, egds: list[TargetEgd], stats: ChaseStats
) -> ChaseResult:
    """Apply egd merge steps directly on a graph with null nodes."""
    while True:
        stats.rounds += 1
        violation = _first_graph_violation(egds, graph)
        if violation is None:
            return ChaseResult(graph=graph, stats=stats)
        left, right = violation
        stats.egd_firings += 1
        left_null, right_null = is_null(left), is_null(right)
        if not left_null and not right_null:
            return ChaseResult(
                graph=graph,
                failed=True,
                failure_witness=(left, right),
                stats=stats,
            )
        if left_null and not right_null:
            graph = _rename_node(graph, left, right)
        elif right_null and not left_null:
            graph = _rename_node(graph, right, left)
        else:
            older, newer = sorted((left, right))
            graph = _rename_node(graph, newer, older)
        stats.null_merges += 1


def _first_graph_violation(
    egds: list[TargetEgd], graph: GraphDatabase
) -> tuple[Node, Node] | None:
    best: tuple[Node, Node] | None = None
    best_key: tuple[str, str] | None = None
    for egd in egds:
        for left, right in egd.violations(graph):
            key = tuple(sorted((repr(left), repr(right))))
            if best_key is None or key < best_key:
                best_key = key  # type: ignore[assignment]
                best = (left, right)
    return best


def _rename_node(graph: GraphDatabase, old: Node, new: Node) -> GraphDatabase:
    """Return a copy of ``graph`` with ``old`` renamed to ``new``."""
    renamed = GraphDatabase(alphabet=graph.alphabet)
    for node in graph.nodes():
        renamed.add_node(new if node == old else node)
    for edge in graph.edges():
        source = new if edge.source == old else edge.source
        target = new if edge.target == old else edge.target
        renamed.add_edge(source, edge.label, target)
    return renamed
