"""The Section 3.1 fragment: relational chase with single-symbol heads.

When every NRE in s-t tgd heads is a bare symbol ``a ∈ Σ``, the target
schema behaves as a set of binary relations and the classical relational
chase applies (paper, Section 3.1): the chase of the s-t tgds materialises a
graph whose invented nodes are labeled nulls, and egd steps then merge nodes
directly on that graph (failing on constant/constant conflicts).

The output "can be essentially seen as a graph" (paper) — here it *is* a
:class:`~repro.graph.database.GraphDatabase` whose null nodes are
:class:`~repro.patterns.pattern.Null` values, and it is a universal solution
for the fragment.  Example 3.1 / Figure 2 is reproduced in
``benchmarks/bench_fig2_relational_chase.py``.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.chase.result import ChaseResult, ChaseStats
from repro.engine.delta import EgdViolationQueue, run_egd_fixpoint
from repro.errors import NotSupportedError
from repro.graph.classes import is_single_symbol
from repro.graph.database import GraphDatabase
from repro.mappings.egd import TargetEgd
from repro.mappings.stt import SourceToTargetTgd
from repro.patterns.pattern import Null
from repro.relational.instance import RelationalInstance
from repro.relational.query import Variable, is_variable
from repro.telemetry import fold_stats, span

Node = Hashable


def _check_fragment(tgds: Sequence[SourceToTargetTgd]) -> None:
    for tgd in tgds:
        for expr in tgd.head.expressions():
            if not is_single_symbol(expr):
                raise NotSupportedError(
                    "the relational chase handles the Section 3.1 fragment "
                    f"(single-symbol heads) only; offending NRE: {expr}"
                )


def chase_relational(
    st_tgds: Iterable[SourceToTargetTgd],
    egds: Sequence[TargetEgd],
    instance: RelationalInstance,
    alphabet: Iterable[str] | None = None,
) -> ChaseResult:
    """Chase in the single-symbol fragment, producing a concrete graph.

    Step 1 fires every s-t tgd trigger, adding plain labeled edges with
    fresh :class:`~repro.patterns.pattern.Null` nodes for existentials.
    Step 2 runs the egd fixpoint on the graph, merging nodes; equating two
    distinct constants fails the chase (then no solution exists — in this
    fragment the relational chase *is* sound and complete).
    """
    tgds = list(st_tgds)
    _check_fragment(tgds)
    sigma: set[str] | None = set(alphabet) if alphabet is not None else None
    graph = GraphDatabase(alphabet=sigma)
    stats = ChaseStats()
    with span("chase.relational", tgds=len(tgds), egds=len(egds)):
        _fire_relational_tgds(tgds, instance, graph, stats)
        result = _egd_fixpoint_on_graph(graph, list(egds), stats)
    fold_stats("chase", stats)
    return result


def _fire_relational_tgds(
    tgds: Sequence[SourceToTargetTgd],
    instance: RelationalInstance,
    graph: GraphDatabase,
    stats: ChaseStats,
) -> None:
    """Fire every single-symbol s-t tgd trigger into ``graph``."""
    null_counter = 0

    for tgd in tgds:
        matches = sorted(
            tgd.body_matches(instance, stats=stats),
            key=lambda m: sorted((v.name, repr(m[v])) for v in m),
        )
        fired: set[tuple] = set()
        for match in matches:
            key = tuple(repr(match[v]) for v in tgd.body.variables())
            if key in fired:
                continue
            fired.add(key)
            assignment: dict[Variable, Node] = {v: match[v] for v in tgd.frontier}
            for existential in tgd.existentials:
                null_counter += 1
                assignment[existential] = Null(f"N{null_counter}")
            for atom in tgd.head.atoms:
                source = (
                    assignment[atom.subject] if is_variable(atom.subject) else atom.subject
                )
                target = (
                    assignment[atom.object] if is_variable(atom.object) else atom.object
                )
                graph.add_edge(source, atom.nre.name, target)  # type: ignore[union-attr]
            stats.st_applications += 1


def _egd_fixpoint_on_graph(
    graph: GraphDatabase, egds: list[TargetEgd], stats: ChaseStats
) -> ChaseResult:
    """Apply egd merge steps directly on a graph with null nodes.

    The graph is the chase's own freshly materialised output, so merges
    rename it in place (O(degree) per merge via the incident-edge indexes)
    while an :class:`~repro.engine.delta.EgdViolationQueue` keeps the
    violation set current instead of rescanning per round.
    """
    queue = EgdViolationQueue(egds, graph, stats)
    failed, witness = run_egd_fixpoint(queue, stats)
    return ChaseResult(
        graph=graph, failed=failed, failure_witness=witness, stats=stats
    )
