"""The Section 5 *adapted* chase: pattern chase plus egd steps.

The paper extends the pattern chase with egd steps.  For each egd
``ψ_Σ(x̄) → x₁ = x₂`` and each match of ψ on the pattern with
``h(x₁) ≠ h(x₂)``:

* (i)  both images constants  → the chase **fails** (no solution exists);
* (ii) one constant, one null → the null is replaced by the constant;
* (iii) both nulls            → one replaces the other.

Matching a CNRE body *on a pattern* needs a convention, because pattern
edges carry NREs, not symbols.  We interpret the pattern through its
**symbol view**: pattern edges labeled by a bare symbol ``a`` act as actual
``a``-edges, while edges with composite NREs are opaque (they constrain
solutions but expose no concrete path the egd could traverse).  This is the
reading under which the paper's examples behave exactly as printed:

* Example 5.1 — the ``h`` edges of the Figure 3 pattern are bare symbols, so
  the hotel egd fires and merges N2 with N3, giving the Figure 5 pattern;
* Example 5.2 — the single edge ``a·(b*+c*)·a`` is composite, no egd can
  fire, the chase *succeeds* … and yet no solution exists, which is the
  incompleteness the paper demonstrates (success of the adapted chase is not
  a certificate of existence; failure is a certificate of non-existence).

The engine chases egds to a fixpoint (each step strictly decreases the node
count, so termination is immediate) with a deterministic violation order so
results are reproducible.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.chase.pattern_chase import chase_pattern
from repro.chase.result import ChaseResult, ChaseStats
from repro.graph.database import GraphDatabase
from repro.graph.nre import Label
from repro.mappings.egd import TargetEgd
from repro.mappings.stt import SourceToTargetTgd
from repro.patterns.pattern import GraphPattern, is_null
from repro.relational.instance import RelationalInstance

Node = Hashable


def pattern_symbol_view(pattern: GraphPattern) -> GraphDatabase:
    """Return the graph of the pattern's bare-symbol edges.

    Nodes are the pattern's nodes verbatim (constants and ``Null`` objects);
    an edge ``(u, a, v)`` exists iff the pattern has the edge ``(u, a, v)``
    with the *single-symbol* NRE ``a``.  Composite NREs are omitted — they
    are opaque to egd matching (see the module docstring).
    """
    view = GraphDatabase()
    for node in pattern.nodes():
        view.add_node(node)
    for edge in pattern.edges():
        if isinstance(edge.nre, Label):
            view.add_edge(edge.source, edge.nre.name, edge.target)
    return view


def _first_violation(
    egds: Sequence[TargetEgd], pattern: GraphPattern
) -> tuple[TargetEgd, Node, Node] | None:
    """Return the lexicographically first egd violation on the pattern."""
    view = pattern_symbol_view(pattern)
    best: tuple[TargetEgd, Node, Node] | None = None
    best_key: tuple[str, str] | None = None
    for egd in egds:
        for left, right in egd.violations(view):
            key = tuple(sorted((repr(left), repr(right))))
            if best_key is None or key < best_key:
                best_key = key  # type: ignore[assignment]
                best = (egd, left, right)
    return best


def chase_with_egds(
    st_tgds: Iterable[SourceToTargetTgd],
    egds: Sequence[TargetEgd],
    instance: RelationalInstance,
    alphabet: Iterable[str] | None = None,
) -> ChaseResult:
    """Run the adapted chase: s-t tgds into a pattern, then egd steps.

    Returns a :class:`~repro.chase.result.ChaseResult` whose ``pattern`` is
    the chased pattern.  ``failed=True`` (with the two constants recorded in
    ``failure_witness``) proves no solution exists.  ``failed=False`` does
    **not** prove a solution exists — use
    :func:`repro.core.existence.decide_existence` for a complete answer on
    bounded models.
    """
    seeded = chase_pattern(st_tgds, instance, alphabet=alphabet)
    pattern = seeded.expect_pattern()
    stats = seeded.stats
    return _egd_fixpoint(pattern, list(egds), stats)


def chase_pattern_with_egds(
    pattern: GraphPattern, egds: Sequence[TargetEgd]
) -> ChaseResult:
    """Run only the egd steps on an existing pattern (mutating a copy)."""
    return _egd_fixpoint(pattern.copy(), list(egds), ChaseStats())


def _egd_fixpoint(
    pattern: GraphPattern, egds: list[TargetEgd], stats: ChaseStats
) -> ChaseResult:
    while True:
        stats.rounds += 1
        violation = _first_violation(egds, pattern)
        if violation is None:
            return ChaseResult(pattern=pattern, stats=stats)
        _, left, right = violation
        stats.egd_firings += 1
        left_null, right_null = is_null(left), is_null(right)
        if not left_null and not right_null:
            # (i) two constants: the chase fails — no solution exists.
            return ChaseResult(
                pattern=pattern,
                failed=True,
                failure_witness=(left, right),
                stats=stats,
            )
        if left_null and not right_null:
            pattern.substitute(left, right)  # (ii) null := constant
        elif right_null and not left_null:
            pattern.substitute(right, left)  # (ii) symmetric
        else:
            # (iii) two nulls: replace the later-labeled one, deterministically.
            older, newer = sorted((left, right))
            pattern.substitute(newer, older)
        stats.null_merges += 1
