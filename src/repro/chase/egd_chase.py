"""The Section 5 *adapted* chase: pattern chase plus egd steps.

The paper extends the pattern chase with egd steps.  For each egd
``ψ_Σ(x̄) → x₁ = x₂`` and each match of ψ on the pattern with
``h(x₁) ≠ h(x₂)``:

* (i)  both images constants  → the chase **fails** (no solution exists);
* (ii) one constant, one null → the null is replaced by the constant;
* (iii) both nulls            → one replaces the other.

Matching a CNRE body *on a pattern* needs a convention, because pattern
edges carry NREs, not symbols.  We interpret the pattern through its
**symbol view**: pattern edges labeled by a bare symbol ``a`` act as actual
``a``-edges, while edges with composite NREs are opaque (they constrain
solutions but expose no concrete path the egd could traverse).  This is the
reading under which the paper's examples behave exactly as printed:

* Example 5.1 — the ``h`` edges of the Figure 3 pattern are bare symbols, so
  the hotel egd fires and merges N2 with N3, giving the Figure 5 pattern;
* Example 5.2 — the single edge ``a·(b*+c*)·a`` is composite, no egd can
  fire, the chase *succeeds* … and yet no solution exists, which is the
  incompleteness the paper demonstrates (success of the adapted chase is not
  a certificate of existence; failure is a certificate of non-existence).

The engine chases egds to a fixpoint (each step strictly decreases the node
count, so termination is immediate) with a deterministic violation order so
results are reproducible.  Violations are tracked by an incremental
:class:`~repro.engine.delta.EgdViolationQueue` over the pattern's symbol
view: each merge renames the surviving violations and re-matches only the
triggers routed through the merged node, instead of rescanning the whole
pattern every round as the seed implementation did.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.chase.pattern_chase import chase_pattern
from repro.chase.result import ChaseResult, ChaseStats
from repro.engine.delta import EgdViolationQueue, run_egd_fixpoint
from repro.graph.database import GraphDatabase
from repro.graph.nre import Label
from repro.mappings.egd import TargetEgd
from repro.mappings.stt import SourceToTargetTgd
from repro.patterns.pattern import GraphPattern
from repro.relational.instance import RelationalInstance
from repro.telemetry import fold_stats, span

Node = Hashable


def pattern_symbol_view(pattern: GraphPattern) -> GraphDatabase:
    """Return the graph of the pattern's bare-symbol edges.

    Nodes are the pattern's nodes verbatim (constants and ``Null`` objects);
    an edge ``(u, a, v)`` exists iff the pattern has the edge ``(u, a, v)``
    with the *single-symbol* NRE ``a``.  Composite NREs are omitted — they
    are opaque to egd matching (see the module docstring).
    """
    view = GraphDatabase()
    for node in pattern.nodes():
        view.add_node(node)
    for edge in pattern.edges():
        if isinstance(edge.nre, Label):
            view.add_edge(edge.source, edge.nre.name, edge.target)
    return view


def chase_with_egds(
    st_tgds: Iterable[SourceToTargetTgd],
    egds: Sequence[TargetEgd],
    instance: RelationalInstance,
    alphabet: Iterable[str] | None = None,
) -> ChaseResult:
    """Run the adapted chase: s-t tgds into a pattern, then egd steps.

    Returns a :class:`~repro.chase.result.ChaseResult` whose ``pattern`` is
    the chased pattern.  ``failed=True`` (with the two constants recorded in
    ``failure_witness``) proves no solution exists.  ``failed=False`` does
    **not** prove a solution exists — use
    :func:`repro.core.existence.decide_existence` for a complete answer on
    bounded models.
    """
    seeded = chase_pattern(st_tgds, instance, alphabet=alphabet)
    pattern = seeded.expect_pattern()
    stats = seeded.stats
    return _egd_fixpoint(pattern, list(egds), stats)


def chase_pattern_with_egds(
    pattern: GraphPattern, egds: Sequence[TargetEgd]
) -> ChaseResult:
    """Run only the egd steps on an existing pattern (mutating a copy)."""
    return _egd_fixpoint(pattern.copy(), list(egds), ChaseStats())


def _egd_fixpoint(
    pattern: GraphPattern, egds: list[TargetEgd], stats: ChaseStats
) -> ChaseResult:
    with span("chase.egd", egds=len(egds)):
        queue = EgdViolationQueue(egds, pattern_symbol_view(pattern), stats)
        failed, witness = run_egd_fixpoint(
            queue, stats, apply=pattern.substitute
        )
    fold_stats("chase", stats)
    return ChaseResult(
        pattern=pattern, failed=failed, failure_witness=witness, stats=stats
    )
