"""Bounded oblivious chase of general target tgds on concrete graphs.

Target tgds ``φ_Σ(x̄) → ∃ȳ. ψ_Σ(x̄, ȳ)`` can, in general, chase forever
(fresh nodes feed new triggers feeding fresh nodes — the classical
non-termination of the tgd chase; cf. [10] in the paper's references).  We
therefore run a *standard* (non-oblivious) chase — a trigger fires only when
its head has no extension yet — with an explicit round bound.  Exceeding the
bound raises :class:`~repro.errors.BoundExceeded` unless ``strict=False``,
in which case the partial graph is returned with ``failed=False`` and the
caller decides what it means.

Head instantiation materialises each head atom's NRE through its canonical
witness (see :mod:`repro.graph.witness`): a head atom ``(x, f·f*, y)`` adds a
single ``f`` edge on the shortest-derivation reading.  For the bare-symbol
heads of sameAs constraints this is exactly "add the edge".

Trigger collection is **semi-naive**: every violation found in a round is
fired in that round, which satisfies its head; since the graph only grows,
a violation in round N+1 must be a body match using at least one edge
added during round N.  Rounds after the first therefore match bodies only
against the edge delta (:meth:`~repro.engine.matcher.TriggerMatcher.delta_matches`);
bodies with composite NREs keep the full scan.  Within a round, triggers
fire in a canonical sorted order, so fresh-node allocation is reproducible
across runs.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Sequence

from repro.chase.result import ChaseResult, ChaseStats
from repro.engine.matcher import TriggerMatcher
from repro.errors import BoundExceeded
from repro.graph.database import GraphDatabase
from repro.graph.witness import enumerate_witnesses, materialize_witness, witness_tree
from repro.mappings.target_tgd import TargetTgd
from repro.relational.query import Variable, is_variable

Node = Hashable


def chase_target_tgds(
    graph: GraphDatabase,
    tgds: Sequence[TargetTgd] | Iterable[TargetTgd],
    max_rounds: int = 50,
    strict: bool = True,
) -> ChaseResult:
    """Chase ``graph`` with target tgds, bounded by ``max_rounds`` rounds.

    Returns a new graph; the input is not mutated.  One *round* processes
    every currently-violated trigger once; the chase stops at the first
    round with no violations.
    """
    dependencies = list(tgds)
    labels: set[str] = set(graph.alphabet)
    for tgd in dependencies:
        from repro.graph.classes import alphabet_of

        for expr in tgd.head.expressions():
            labels.update(alphabet_of(expr))
    current = graph.with_alphabet(labels)
    stats = ChaseStats()
    fresh_ids = itertools.count()
    matcher = TriggerMatcher(current, stats)
    last_version: int | None = None  # None = no round collected yet

    for _ in range(max_rounds):
        stats.rounds += 1
        collect_version = current.version
        violations: list[tuple[int, TargetTgd, dict[Variable, Node]]] = []
        for position, tgd in enumerate(dependencies):
            if last_version is None:
                candidates = matcher.matches(tgd.body)
            else:
                candidates = matcher.delta_matches(tgd.body, last_version)
            for hom in tgd.violations_among(current, candidates, matcher):
                violations.append((position, tgd, hom))
        last_version = collect_version
        if not violations:
            return ChaseResult(graph=current, stats=stats)
        violations.sort(
            key=lambda item: (
                item[0],
                sorted((v.name, repr(item[2][v])) for v in item[2]),
            )
        )
        for _, tgd, hom in violations:
            _apply(current, tgd, hom, fresh_ids)
            stats.tgd_applications += 1

    if strict:
        from repro.chase.termination import is_weakly_acyclic

        hint = (
            " (the tgd set is not weakly acyclic, so divergence is expected; "
            "see repro.chase.termination)"
            if not is_weakly_acyclic(dependencies)
            else " (the tgd set is weakly acyclic — raise max_rounds)"
        )
        raise BoundExceeded(
            f"target-tgd chase did not converge within {max_rounds} rounds{hint}"
        )
    return ChaseResult(graph=current, stats=stats)


def _apply(
    graph: GraphDatabase,
    tgd: TargetTgd,
    hom: dict[Variable, Node],
    fresh_ids: "itertools.count[int]",
) -> None:
    """Fire one trigger: add a usable witness of the head's NRE per atom.

    A witness is *usable* on a concrete graph when its forced merges never
    identify two distinct pre-existing nodes (a graph cannot merge nodes).
    The canonical witness is usable except when the NRE admits only
    ε-derivations between distinct endpoints; then we search the bounded
    witness enumeration for an alternative (e.g. ``a*`` between distinct
    ``x ≠ y`` takes one ``a`` step instead of zero).
    """
    assignment: dict[Variable, Node] = {v: hom[v] for v in tgd.frontier}
    for existential in tgd.existentials:
        assignment[existential] = f"_t{next(fresh_ids)}"
    allocate = lambda: f"_t{next(fresh_ids)}"  # noqa: E731 - tiny local alias
    for atom in tgd.head.atoms:
        source = assignment[atom.subject] if is_variable(atom.subject) else atom.subject
        target = assignment[atom.object] if is_variable(atom.object) else atom.object
        witness = witness_tree(atom.nre, source, target, fresh=allocate)
        if not _usable(witness):
            witness = None
            for candidate in enumerate_witnesses(
                atom.nre, source, target, star_bound=3, fresh=allocate
            ):
                if _usable(candidate):
                    witness = candidate
                    break
            if witness is None:
                raise BoundExceeded(
                    f"no concrete witness for head atom {atom} between "
                    f"distinct nodes {source!r} and {target!r}"
                )
        edges, _ = materialize_witness(witness)
        for edge_source, lab, edge_target in edges:
            graph.add_edge(edge_source, lab, edge_target)


def _is_fresh(node: Node) -> bool:
    return isinstance(node, str) and (node.startswith("_w") or node.startswith("_t"))


def _usable(witness) -> bool:
    """Whether the witness's merges avoid identifying distinct real nodes."""
    _, canonical = materialize_witness(witness)
    classes: dict[Node, set[Node]] = {}
    for node, representative in canonical.items():
        classes.setdefault(representative, set()).add(node)
    for members in classes.values():
        real = [m for m in members if not _is_fresh(m)]
        if len(set(real)) > 1:
            return False
    return True
