"""The constructive solution for sameAs settings (Section 4.2).

With sameAs constraints instead of egds, a solution always exists and is
computed in polynomial time by the three steps the paper gives:

  (i)   chase a graph pattern π with the s-t tgds only;
  (ii)  take any graph ``G`` with π → G (we take the canonical
        instantiation);
  (iii) add the sameAs edges needed to satisfy the sameAs constraints.

Step (iii) is a fixpoint: adding sameAs edges can create new matches of
bodies that themselves mention ``sameAs``, so saturation repeats until no
violation remains.  It terminates because the node set is fixed and each
round adds at least one of at most ``|V|²`` possible sameAs edges.

Two saturation strategies compute that fixpoint (``REPRO_SAMEAS``
selects; ``"unionfind"`` is the default):

* ``"journal"`` — the original edge-at-a-time loop, retained verbatim as
  the **oracle**: every body match found in one round is repaired
  immediately in journal enumeration order, and each constraint
  re-matches only through the journal delta
  (:meth:`~repro.engine.matcher.TriggerMatcher.delta_matches`).
* ``"unionfind"`` — the batched reformulation.  Generic constraints are
  evaluated through the matcher's *pair projections*
  (:meth:`~repro.engine.matcher.TriggerMatcher.pair_matches` /
  ``pair_matches_seeded``): one pass per constraint per round yields the
  projected pair set — no per-homomorphism dict materialisation — and
  the missing edges are inserted as one sorted batch.  Constraints that
  spell out the sameAs *equivalence laws* (symmetry and transitivity
  over the sameAs label) are recognised and absorbed into a union-find
  over canonical representatives: their joint fixpoint on any edge set
  is exactly "all ordered pairs of distinct nodes within one connected
  component", so the O(|V|²)-round edge-at-a-time cascade collapses into
  component merges plus one clique emission per dirty class.

The least fixpoint is unique — every constraint is a monotone rule, so
the final edge set does not depend on insertion order — and the two
strategies are pinned output-identical (graph content *and* serialized
document bytes) by a Hypothesis harness in the kernel-property suite.

The key contrast with egds (the paper's point): sameAs edges may be added
*between two constants*, so the constant/constant conflict that makes the
egd chase fail simply cannot arise.
"""

from __future__ import annotations

import os
from typing import Hashable, Iterable, Sequence

from repro.chase.pattern_chase import chase_pattern
from repro.chase.result import ChaseResult, ChaseStats
from repro.engine.matcher import TriggerMatcher, _edge_view, is_simple_query
from repro.graph.database import GraphDatabase
from repro.mappings.sameas import SAME_AS_LABEL, SameAsConstraint
from repro.mappings.stt import SourceToTargetTgd
from repro.patterns.rep import canonical_instantiation
from repro.relational.instance import RelationalInstance

Node = Hashable

SAMEAS_STRATEGIES = ("unionfind", "journal")
"""The saturation strategies ``REPRO_SAMEAS`` may select."""

_ENV_STRATEGY = "REPRO_SAMEAS"


def resolve_sameas_strategy(strategy: str | None = None) -> str:
    """Resolve the saturation strategy (explicit > env > ``"unionfind"``).

    >>> resolve_sameas_strategy("journal")
    'journal'
    >>> resolve_sameas_strategy() in SAMEAS_STRATEGIES
    True
    """
    if strategy is None:
        strategy = os.environ.get(_ENV_STRATEGY) or "unionfind"
    if strategy not in SAMEAS_STRATEGIES:
        raise ValueError(
            f"unknown sameAs strategy {strategy!r}; expected one of "
            f"{list(SAMEAS_STRATEGIES)}"
        )
    return strategy


def saturate_sameas(
    graph: GraphDatabase,
    constraints: Sequence[SameAsConstraint],
    stats: ChaseStats | None = None,
    strategy: str | None = None,
) -> GraphDatabase:
    """Add sameAs edges to ``graph`` until every constraint is satisfied.

    Returns a new graph; the input is not mutated.  The alphabet is widened
    with ``sameAs`` if needed.  ``strategy`` picks the fixpoint algorithm
    (see the module docstring); both produce the identical (unique) least
    fixpoint.
    """
    if resolve_sameas_strategy(strategy) == "journal":
        return _saturate_journal(graph, constraints, stats)
    return _saturate_unionfind(graph, constraints, stats)


def _saturate_journal(
    graph: GraphDatabase,
    constraints: Sequence[SameAsConstraint],
    stats: ChaseStats | None = None,
) -> GraphDatabase:
    """The edge-at-a-time saturation in journal order — the oracle.

    Kept verbatim: the union-find strategy's output is proven identical
    to this loop's, and the proof needs a fixed reference implementation.
    """
    sigma = set(graph.alphabet) | {SAME_AS_LABEL}
    result = graph.with_alphabet(sigma)
    counters = stats if stats is not None else ChaseStats()
    matcher = TriggerMatcher(result, counters)
    last_seen = [None] * len(constraints)  # graph version at last evaluation
    changed = True
    while changed:
        changed = False
        counters.rounds += 1
        for index, constraint in enumerate(constraints):
            since, last_seen[index] = last_seen[index], result.version
            if since is None:
                homs = matcher.matches(constraint.body)
            else:
                homs = matcher.delta_matches(constraint.body, since)
            pending = list(constraint.violations_among(result, homs))
            for left, right in pending:
                result.add_edge(left, SAME_AS_LABEL, right)
                counters.sameas_edges_added += 1
                changed = True
    return result


# --------------------------------------------------------------------- #
# The union-find strategy
# --------------------------------------------------------------------- #


def _pair_key(pair: tuple[Node, Node]) -> tuple[str, str]:
    return (repr(pair[0]), repr(pair[1]))


def _is_symmetry(constraint: SameAsConstraint) -> bool:
    """Whether the constraint is sameAs symmetry: an edge demands its
    reverse.  Matches ``(x, sameAs, y) → (y, sameAs, x)`` and the
    equivalent backward-atom spelling."""
    atoms = constraint.body.atoms
    if len(atoms) != 1 or not is_simple_query(constraint.body):
        return False
    source_term, lab, target_term = _edge_view(atoms[0])
    return (
        lab == SAME_AS_LABEL
        and source_term != target_term
        and (constraint.left, constraint.right) == (target_term, source_term)
    )


def _is_transitivity(constraint: SameAsConstraint) -> bool:
    """Whether the constraint is sameAs transitivity:
    ``(x, sameAs, z), (z, sameAs, y) → (x, sameAs, y)`` (either atom may
    be spelled backward)."""
    atoms = constraint.body.atoms
    if len(atoms) != 2 or not is_simple_query(constraint.body):
        return False
    views = [_edge_view(atom) for atom in atoms]
    for first, second in (views, views[::-1]):
        left_source, first_lab, middle_a = first
        middle_b, second_lab, right_target = second
        if (
            first_lab == SAME_AS_LABEL
            and second_lab == SAME_AS_LABEL
            and middle_a == middle_b
            and len({left_source, middle_a, right_target}) == 3
            and (constraint.left, constraint.right)
            == (left_source, right_target)
        ):
            return True
    return False


def _split_equivalence_constraints(
    constraints: Sequence[SameAsConstraint],
) -> tuple[list[SameAsConstraint], list[SameAsConstraint]]:
    """Partition into (absorbed equivalence laws, generic constraints).

    Absorption is sound only when symmetry *and* transitivity are both
    present — their joint fixpoint is the per-component clique the
    union-find emits.  Either law alone (directed transitive closure, or
    bare symmetric closure) is weaker and stays on the generic path.
    """
    symmetry = [c for c in constraints if _is_symmetry(c)]
    transitivity = [c for c in constraints if _is_transitivity(c)]
    if not symmetry or not transitivity:
        return [], list(constraints)
    absorbed = {id(c) for c in symmetry + transitivity}
    generic = [c for c in constraints if id(c) not in absorbed]
    return symmetry + transitivity, generic


class _UnionFind:
    """Union-find over sameAs components, with canonical representatives.

    Nodes enter lazily (only endpoints of sameAs edges ever join).  Find
    runs path compression; union is by size with a repr tie-break, so
    the representative of every class is deterministic for a given merge
    history.  ``dirty`` collects the roots whose class gained members
    since the last clique emission.
    """

    def __init__(self) -> None:
        self.parent: dict[Node, Node] = {}
        self.members: dict[Node, list[Node]] = {}
        self.dirty: set[Node] = set()

    def add(self, node: Node) -> Node:
        if node not in self.parent:
            self.parent[node] = node
            self.members[node] = [node]
        return self.find(node)

    def find(self, node: Node) -> Node:
        parent = self.parent
        root = node
        while parent[root] is not root:
            root = parent[root]
        while parent[node] is not root:
            parent[node], node = root, parent[node]
        return root

    def union(self, a: Node, b: Node) -> None:
        root_a = self.add(a)
        root_b = self.add(b)
        if root_a == root_b:
            return
        size_a, size_b = len(self.members[root_a]), len(self.members[root_b])
        if (size_a, repr(root_a)) < (size_b, repr(root_b)):
            root_a, root_b = root_b, root_a
        # root_a is canonical: absorb root_b's class.
        self.parent[root_b] = root_a
        self.members[root_a].extend(self.members.pop(root_b))
        self.dirty.discard(root_b)
        self.dirty.add(root_a)


def _close_equivalence(
    result: GraphDatabase,
    find: _UnionFind,
    since: int | None,
    counters: ChaseStats,
) -> bool:
    """One union-find closure step: absorb new sameAs edges, emit cliques.

    Every sameAs edge unions its endpoints' classes; every class that
    grew then receives all missing ordered pairs of distinct members
    (the joint symmetry+transitivity fixpoint), inserted in repr-sorted
    order.  Returns whether any edge was added.
    """
    if since is None:
        for source, target in result.edges_with_label(SAME_AS_LABEL):
            find.union(source, target)
    else:
        for edge in result.edges_since(since):
            if edge.label == SAME_AS_LABEL:
                find.union(edge.source, edge.target)
    if not find.dirty:
        return False
    added = False
    has_edge = result.has_edge
    add_edge = result.add_edge
    for root in sorted(find.dirty, key=repr):
        clique = sorted(find.members[root], key=repr)
        for left in clique:
            for right in clique:
                if left is not right and not has_edge(
                    left, SAME_AS_LABEL, right
                ):
                    add_edge(left, SAME_AS_LABEL, right)
                    counters.sameas_edges_added += 1
                    added = True
    find.dirty.clear()
    return added


def _saturate_unionfind(
    graph: GraphDatabase,
    constraints: Sequence[SameAsConstraint],
    stats: ChaseStats | None = None,
) -> GraphDatabase:
    """Batched saturation: pair projections + union-find closure."""
    sigma = set(graph.alphabet) | {SAME_AS_LABEL}
    result = graph.with_alphabet(sigma)
    counters = stats if stats is not None else ChaseStats()
    matcher = TriggerMatcher(result, counters)
    absorbed, generic = _split_equivalence_constraints(constraints)
    find = _UnionFind() if absorbed else None
    last_seen: list[int | None] = [None] * len(generic)
    closure_seen: int | None = None
    changed = True
    while changed:
        changed = False
        counters.rounds += 1
        for index, constraint in enumerate(generic):
            since, last_seen[index] = last_seen[index], result.version
            if since is None:
                pairs = matcher.pair_matches(
                    constraint.body, constraint.left, constraint.right
                )
            else:
                delta = result.edges_since(since)
                if not delta:
                    continue
                pairs = matcher.pair_matches_seeded(
                    constraint.body, constraint.left, constraint.right, delta
                )
            pending = sorted(
                (
                    pair
                    for pair in pairs
                    if pair[0] != pair[1]
                    and not result.has_edge(pair[0], SAME_AS_LABEL, pair[1])
                ),
                key=_pair_key,
            )
            for left, right in pending:
                result.add_edge(left, SAME_AS_LABEL, right)
            if pending:
                counters.sameas_edges_added += len(pending)
                changed = True
        if find is not None:
            since, closure_seen = closure_seen, result.version
            if _close_equivalence(result, find, since, counters):
                changed = True
    return result


def solve_with_sameas(
    st_tgds: Iterable[SourceToTargetTgd],
    constraints: Sequence[SameAsConstraint],
    instance: RelationalInstance,
    alphabet: Iterable[str] | None = None,
    star_bound: int = 2,
) -> ChaseResult:
    """Produce a solution for a sameAs setting (always succeeds).

    Runs steps (i)–(iii) of Section 4.2 and returns a
    :class:`~repro.chase.result.ChaseResult` carrying both the intermediate
    pattern and the final solution graph.
    """
    seeded = chase_pattern(st_tgds, instance, alphabet=alphabet)
    pattern = seeded.expect_pattern()
    stats = seeded.stats
    instantiation = canonical_instantiation(pattern, star_bound=star_bound)
    solution = saturate_sameas(instantiation.graph, list(constraints), stats)
    return ChaseResult(pattern=pattern, graph=solution, stats=stats)
