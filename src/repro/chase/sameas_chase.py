"""The constructive solution for sameAs settings (Section 4.2).

With sameAs constraints instead of egds, a solution always exists and is
computed in polynomial time by the three steps the paper gives:

  (i)   chase a graph pattern π with the s-t tgds only;
  (ii)  take any graph ``G`` with π → G (we take the canonical
        instantiation);
  (iii) add the sameAs edges needed to satisfy the sameAs constraints.

Step (iii) is a fixpoint: adding sameAs edges can create new matches of
bodies that themselves mention ``sameAs``, so saturation repeats until no
violation remains.  It terminates because the node set is fixed and each
round adds at least one of at most ``|V|²`` possible sameAs edges.

The key contrast with egds (the paper's point): sameAs edges may be added
*between two constants*, so the constant/constant conflict that makes the
egd chase fail simply cannot arise.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.chase.pattern_chase import chase_pattern
from repro.chase.result import ChaseResult, ChaseStats
from repro.graph.database import GraphDatabase
from repro.mappings.sameas import SAME_AS_LABEL, SameAsConstraint
from repro.mappings.stt import SourceToTargetTgd
from repro.patterns.rep import canonical_instantiation
from repro.relational.instance import RelationalInstance


def saturate_sameas(
    graph: GraphDatabase,
    constraints: Sequence[SameAsConstraint],
    stats: ChaseStats | None = None,
) -> GraphDatabase:
    """Add sameAs edges to ``graph`` until every constraint is satisfied.

    Returns a new graph; the input is not mutated.  The alphabet is widened
    with ``sameAs`` if needed.
    """
    sigma = set(graph.alphabet) | {SAME_AS_LABEL}
    result = graph.with_alphabet(sigma)
    counters = stats if stats is not None else ChaseStats()
    changed = True
    while changed:
        changed = False
        counters.rounds += 1
        for constraint in constraints:
            for left, right in list(constraint.violations(result)):
                result.add_edge(left, SAME_AS_LABEL, right)
                counters.sameas_edges_added += 1
                changed = True
    return result


def solve_with_sameas(
    st_tgds: Iterable[SourceToTargetTgd],
    constraints: Sequence[SameAsConstraint],
    instance: RelationalInstance,
    alphabet: Iterable[str] | None = None,
    star_bound: int = 2,
) -> ChaseResult:
    """Produce a solution for a sameAs setting (always succeeds).

    Runs steps (i)–(iii) of Section 4.2 and returns a
    :class:`~repro.chase.result.ChaseResult` carrying both the intermediate
    pattern and the final solution graph.
    """
    seeded = chase_pattern(st_tgds, instance, alphabet=alphabet)
    pattern = seeded.expect_pattern()
    stats = seeded.stats
    instantiation = canonical_instantiation(pattern, star_bound=star_bound)
    solution = saturate_sameas(instantiation.graph, list(constraints), stats)
    return ChaseResult(pattern=pattern, graph=solution, stats=stats)
