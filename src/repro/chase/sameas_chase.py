"""The constructive solution for sameAs settings (Section 4.2).

With sameAs constraints instead of egds, a solution always exists and is
computed in polynomial time by the three steps the paper gives:

  (i)   chase a graph pattern π with the s-t tgds only;
  (ii)  take any graph ``G`` with π → G (we take the canonical
        instantiation);
  (iii) add the sameAs edges needed to satisfy the sameAs constraints.

Step (iii) is a fixpoint: adding sameAs edges can create new matches of
bodies that themselves mention ``sameAs``, so saturation repeats until no
violation remains.  It terminates because the node set is fixed and each
round adds at least one of at most ``|V|²`` possible sameAs edges.

Saturation runs **semi-naively**: every body match found in one round is
repaired immediately, so a match that is still violated in a later round
must use at least one edge added since this constraint was last evaluated.
Each constraint therefore remembers the graph version it last saw and
re-matches only through the journal delta
(:meth:`~repro.engine.matcher.TriggerMatcher.delta_matches`); constraints
with composite-NRE bodies keep the full per-round scan.

The key contrast with egds (the paper's point): sameAs edges may be added
*between two constants*, so the constant/constant conflict that makes the
egd chase fail simply cannot arise.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.chase.pattern_chase import chase_pattern
from repro.chase.result import ChaseResult, ChaseStats
from repro.engine.matcher import TriggerMatcher
from repro.graph.database import GraphDatabase
from repro.mappings.sameas import SAME_AS_LABEL, SameAsConstraint
from repro.mappings.stt import SourceToTargetTgd
from repro.patterns.rep import canonical_instantiation
from repro.relational.instance import RelationalInstance


def saturate_sameas(
    graph: GraphDatabase,
    constraints: Sequence[SameAsConstraint],
    stats: ChaseStats | None = None,
) -> GraphDatabase:
    """Add sameAs edges to ``graph`` until every constraint is satisfied.

    Returns a new graph; the input is not mutated.  The alphabet is widened
    with ``sameAs`` if needed.
    """
    sigma = set(graph.alphabet) | {SAME_AS_LABEL}
    result = graph.with_alphabet(sigma)
    counters = stats if stats is not None else ChaseStats()
    matcher = TriggerMatcher(result, counters)
    last_seen = [None] * len(constraints)  # graph version at last evaluation
    changed = True
    while changed:
        changed = False
        counters.rounds += 1
        for index, constraint in enumerate(constraints):
            since, last_seen[index] = last_seen[index], result.version
            if since is None:
                homs = matcher.matches(constraint.body)
            else:
                homs = matcher.delta_matches(constraint.body, since)
            pending = list(constraint.violations_among(result, homs))
            for left, right in pending:
                result.add_edge(left, SAME_AS_LABEL, right)
                counters.sameas_edges_added += 1
                changed = True
    return result


def solve_with_sameas(
    st_tgds: Iterable[SourceToTargetTgd],
    constraints: Sequence[SameAsConstraint],
    instance: RelationalInstance,
    alphabet: Iterable[str] | None = None,
    star_bound: int = 2,
) -> ChaseResult:
    """Produce a solution for a sameAs setting (always succeeds).

    Runs steps (i)–(iii) of Section 4.2 and returns a
    :class:`~repro.chase.result.ChaseResult` carrying both the intermediate
    pattern and the final solution graph.
    """
    seeded = chase_pattern(st_tgds, instance, alphabet=alphabet)
    pattern = seeded.expect_pattern()
    stats = seeded.stats
    instantiation = canonical_instantiation(pattern, star_bound=star_bound)
    solution = saturate_sameas(instantiation.graph, list(constraints), stats)
    return ChaseResult(pattern=pattern, graph=solution, stats=stats)
