"""Graph patterns: universal representatives with nulls and NRE edges.

A graph pattern π = (N, D) over Σ has nodes that are either constants
(node ids from ``V``) or *labeled nulls*, and edges labeled by NREs
(paper, Section 3.2, after [4, 5]).  Its semantics is the set
``Rep_Σ(π)`` of graphs to which π maps homomorphically.

* :class:`~repro.patterns.pattern.GraphPattern` — the data structure,
  including null management and the merge operations the egd chase needs;
* :mod:`repro.patterns.homomorphism` — backtracking search for
  homomorphisms π → G (identity on constants, NRE-edge satisfaction);
* :mod:`repro.patterns.rep` — ``Rep_Σ`` membership and canonical
  instantiation of a pattern into a concrete graph.
"""

from repro.patterns.pattern import GraphPattern, Null, PatternEdge, is_null
from repro.patterns.homomorphism import (
    find_homomorphism,
    all_homomorphisms,
    has_homomorphism,
)
from repro.patterns.rep import (
    in_rep,
    canonical_instantiation,
    enumerate_instantiations,
)

__all__ = [
    "GraphPattern",
    "Null",
    "PatternEdge",
    "is_null",
    "find_homomorphism",
    "all_homomorphisms",
    "has_homomorphism",
    "in_rep",
    "canonical_instantiation",
    "enumerate_instantiations",
]
