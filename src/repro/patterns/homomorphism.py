"""Homomorphisms from graph patterns into graph databases.

Following the paper (Section 3.2), a homomorphism from π = (N, D) into
``G = (V, E)`` is a total function ``h : N → V`` such that

1. ``h`` is the identity on ``N ∩ V`` (constants are pinned), and
2. for every edge ``(u, r, v) ∈ D``, ``(h(u), h(v)) ∈ ⟦r⟧_G``.

The search backtracks over null assignments.  For each null we precompute a
candidate set by intersecting, over every incident pattern edge, the
projections of the edge's NRE relation; most-constrained nulls are assigned
first.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.graph.database import GraphDatabase
from repro.graph.eval import evaluate_nre
from repro.graph.nre import NRE
from repro.patterns.pattern import GraphPattern, Null, is_null

Node = Hashable
Homomorphism = dict[Node, Node]


def _nre_relations(
    pattern: GraphPattern, graph: GraphDatabase
) -> dict[NRE, frozenset[tuple[Node, Node]]]:
    cache: dict[NRE, frozenset[tuple[Node, Node]]] = {}
    shared: dict[NRE, frozenset[tuple[Node, Node]]] = {}
    for expr in pattern.expressions():
        cache[expr] = evaluate_nre(graph, expr, _cache=shared)
    return cache


def _candidates(
    pattern: GraphPattern,
    graph: GraphDatabase,
    relations: dict[NRE, frozenset[tuple[Node, Node]]],
) -> dict[Null, set[Node]]:
    """Per-null candidate sets from unary projections of incident edges."""
    candidates: dict[Null, set[Node]] = {
        null: set(graph.nodes()) for null in pattern.nulls()
    }
    for edge in pattern.edges():
        relation = relations[edge.nre]
        if is_null(edge.source):
            sources = {u for u, _ in relation}
            if not is_null(edge.target) and edge.target in graph.nodes():
                sources = {u for u, v in relation if v == edge.target}
            candidates[edge.source] &= sources
        if is_null(edge.target):
            targets = {v for _, v in relation}
            if not is_null(edge.source) and edge.source in graph.nodes():
                targets = {v for u, v in relation if u == edge.source}
            candidates[edge.target] &= targets
    return candidates


def all_homomorphisms(
    pattern: GraphPattern, graph: GraphDatabase
) -> Iterator[Homomorphism]:
    """Yield every homomorphism from ``pattern`` into ``graph``.

    Each yielded mapping is total over the pattern's nodes (constants map to
    themselves).  Yields nothing when some pattern constant is absent from
    the graph — condition 1 is then unsatisfiable.
    """
    graph_nodes = graph.nodes()
    for constant in pattern.constants():
        if constant not in graph_nodes:
            return

    relations = _nre_relations(pattern, graph)
    candidates = _candidates(pattern, graph, relations)
    if any(not domain for domain in candidates.values()):
        return

    nulls = sorted(candidates, key=lambda n: len(candidates[n]))
    edges = list(pattern.edges())

    def consistent(assignment: Homomorphism) -> bool:
        for edge in edges:
            source = assignment.get(edge.source, edge.source)
            target = assignment.get(edge.target, edge.target)
            source_known = not is_null(source)
            target_known = not is_null(target)
            if source_known and target_known:
                if (source, target) not in relations[edge.nre]:
                    return False
        return True

    def assign(index: int, assignment: Homomorphism) -> Iterator[Homomorphism]:
        if index == len(nulls):
            total = {c: c for c in pattern.constants()}
            total.update(assignment)
            yield total
            return
        null = nulls[index]
        for candidate in sorted(candidates[null], key=repr):
            assignment[null] = candidate
            if consistent(assignment):
                yield from assign(index + 1, assignment)
            del assignment[null]

    if consistent({}):
        yield from assign(0, {})


def find_homomorphism(
    pattern: GraphPattern, graph: GraphDatabase
) -> Homomorphism | None:
    """Return one homomorphism π → G, or ``None`` when none exists."""
    for hom in all_homomorphisms(pattern, graph):
        return hom
    return None


def has_homomorphism(pattern: GraphPattern, graph: GraphDatabase) -> bool:
    """Return whether π → G (i.e. whether ``G ∈ Rep_Σ(π)``)."""
    return find_homomorphism(pattern, graph) is not None
