"""The graph-pattern data structure.

A pattern π = (N, D) has ``N ⊆ V ∪ 𝒩`` (constants union labeled nulls) and
``D ⊆ N × NRE(Σ) × N`` (paper, Section 3.2).  Patterns are the output of the
pattern chase and the carrier of the egd chase, which needs two mutations:

* replacing a null by a constant, and
* merging two nulls,

both implemented here as :meth:`GraphPattern.substitute`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

from repro.errors import SchemaError
from repro.graph.nre import NRE

Node = Hashable


@dataclass(frozen=True, order=True)
class Null:
    """A labeled null — a placeholder node invented by the chase.

    Nulls compare by label, so ``Null("N1")`` in two patterns denotes the
    same null.  The pattern's :meth:`GraphPattern.fresh_null` allocator
    guarantees unique labels within one pattern.
    """

    label: str

    def __hash__(self) -> int:
        # Hash the label directly: str objects memoise their hash, so
        # this skips the generated hash's per-call field-tuple allocation
        # — nulls are graph nodes, hashed on every index operation.
        return hash(self.label)

    def __str__(self) -> str:
        return f"⊥{self.label}"


def is_null(node: object) -> bool:
    """Return whether ``node`` is a labeled null."""
    return isinstance(node, Null)


@dataclass(frozen=True)
class PatternEdge:
    """An NRE-labeled pattern edge ``(source, nre, target)``."""

    source: Node
    nre: NRE
    target: Node

    def __str__(self) -> str:
        return f"({self.source}) -[{self.nre}]-> ({self.target})"

    def sort_key(self) -> tuple[str, str, str]:
        """A stable display/processing order (lexicographic on reprs).

        Computed once per edge and cached — edges are immutable, and the
        chase sorts edge sets repeatedly for deterministic output.
        """
        cached = self.__dict__.get("_sort_key")
        if cached is None:
            cached = (repr(self.source), str(self.nre), repr(self.target))
            object.__setattr__(self, "_sort_key", cached)
        return cached

    def __lt__(self, other: object) -> bool:  # stable ordering for display
        if not isinstance(other, PatternEdge):
            return NotImplemented
        return self.sort_key() < other.sort_key()


class GraphPattern:
    """A graph pattern over an alphabet Σ.

    >>> from repro.graph.parser import parse_nre
    >>> pi = GraphPattern(alphabet={"f", "h"})
    >>> n1 = pi.fresh_null()
    >>> pi.add_edge("c1", parse_nre("f . f*"), n1)
    >>> pi.add_edge(n1, parse_nre("h"), "hx")
    >>> pi.node_count(), pi.edge_count()
    (3, 2)
    """

    def __init__(
        self,
        alphabet: Iterable[str] | None = None,
        edges: Iterable[tuple[Node, NRE, Node]] = (),
        nodes: Iterable[Node] = (),
    ):
        self.alphabet: frozenset[str] | None = (
            frozenset(alphabet) if alphabet is not None else None
        )
        self._nodes: set[Node] = set()
        self._edges: set[PatternEdge] = set()
        # node -> incident edges; keeps substitute() at O(degree), which
        # the delta-chase engine relies on for fast merge steps.
        self._touching: dict[Node, set[PatternEdge]] = {}
        self._null_counter = itertools.count(1)
        for node in nodes:
            self.add_node(node)
        for source, expr, target in edges:
            self.add_edge(source, expr, target)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def fresh_null(self) -> Null:
        """Allocate a null with a label unused in this pattern (``N1, N2, …``)."""
        while True:
            candidate = Null(f"N{next(self._null_counter)}")
            if candidate not in self._nodes:
                return candidate

    def add_node(self, node: Node) -> None:
        """Add a node (constant or null); idempotent."""
        self._nodes.add(node)

    def add_edge(self, source: Node, expr: NRE, target: Node) -> None:
        """Add the pattern edge ``(source, expr, target)``; endpoints auto-added."""
        if not isinstance(expr, NRE):
            raise SchemaError(f"pattern edge label must be an NRE, got {expr!r}")
        self._nodes.add(source)
        self._nodes.add(target)
        edge = PatternEdge(source, expr, target)
        self._edges.add(edge)
        self._touching.setdefault(source, set()).add(edge)
        self._touching.setdefault(target, set()).add(edge)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def nodes(self) -> frozenset[Node]:
        """Return all nodes (constants and nulls)."""
        return frozenset(self._nodes)

    def edges(self) -> frozenset[PatternEdge]:
        """Return all NRE-labeled edges."""
        return frozenset(self._edges)

    def nulls(self) -> frozenset[Null]:
        """Return the nulls of the pattern."""
        return frozenset(n for n in self._nodes if is_null(n))

    def constants(self) -> frozenset[Node]:
        """Return the constant (non-null) nodes of the pattern."""
        return frozenset(n for n in self._nodes if not is_null(n))

    def node_count(self) -> int:
        """Return the number of nodes."""
        return len(self._nodes)

    def edge_count(self) -> int:
        """Return the number of edges."""
        return len(self._edges)

    def expressions(self) -> frozenset[NRE]:
        """Return the distinct NREs used on edges."""
        return frozenset(edge.nre for edge in self._edges)

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    def __iter__(self) -> Iterator[PatternEdge]:
        return iter(sorted(self._edges, key=PatternEdge.sort_key))

    # ------------------------------------------------------------------ #
    # Mutation (for the egd chase)
    # ------------------------------------------------------------------ #

    def substitute(self, old: Node, new: Node) -> None:
        """Replace node ``old`` by ``new`` everywhere (the egd chase step).

        Used both to replace a null by a constant and to merge two nulls.
        Replacing a constant by anything else is refused — that is exactly
        the situation in which the chase *fails* (Section 5), and failure is
        the caller's decision to make, not a silent rewrite.
        """
        if old not in self._nodes:
            raise SchemaError(f"cannot substitute unknown node {old!r}")
        if not is_null(old):
            raise SchemaError(
                f"refusing to substitute constant {old!r}; egd chase must fail instead"
            )
        if old == new:
            return
        self._nodes.discard(old)
        self._nodes.add(new)
        affected = list(self._touching.pop(old, ()))
        for edge in affected:
            self._edges.discard(edge)
            for endpoint in (edge.source, edge.target):
                if endpoint != old:
                    self._touching.get(endpoint, set()).discard(edge)
            source = new if edge.source == old else edge.source
            target = new if edge.target == old else edge.target
            self.add_edge(source, edge.nre, target)

    def copy(self) -> "GraphPattern":
        """Return an independent copy (null allocator restarts but skips
        labels already present, so fresh nulls stay fresh)."""
        clone = GraphPattern(alphabet=self.alphabet)
        clone._nodes = set(self._nodes)
        clone._edges = set(self._edges)
        clone._touching = {node: set(edges) for node, edges in self._touching.items()}
        return clone

    # ------------------------------------------------------------------ #
    # Equality / display
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphPattern):
            return NotImplemented
        return self._nodes == other._nodes and self._edges == other._edges

    def __repr__(self) -> str:
        return f"GraphPattern(|N|={len(self._nodes)}, |D|={len(self._edges)})"

    def pretty(self) -> str:
        """Return a multi-line human-readable rendering."""
        lines = [f"GraphPattern over Σ={sorted(self.alphabet or [])}"]
        for edge in sorted(self._edges, key=PatternEdge.sort_key):
            lines.append(f"  {edge}")
        isolated = self._nodes - {e.source for e in self._edges} - {
            e.target for e in self._edges
        }
        for node in sorted(isolated, key=repr):
            lines.append(f"  ({node})")
        return "\n".join(lines)
