"""``Rep_Σ`` membership and instantiation of patterns into concrete graphs.

``Rep_Σ(π)`` is the set of graphs G with π → G (paper, Section 3.2).
Membership is just the homomorphism test.  The other direction — producing
*some* G in ``Rep_Σ(π)`` — is *instantiation*: every NRE edge is replaced by
a concrete witness tree (see :mod:`repro.graph.witness`), and the node
identifications forced by the chosen witnesses are resolved by union-find.

Instantiation underlies three results of the paper:

* solutions always exist without target constraints (Section 3.2);
* the constructive solution for sameAs settings (Section 4.2, steps i–iii);
* the minimal-solution enumeration behind certain answers
  (:mod:`repro.core.certain`), which needs *all* instantiations up to a
  star-unrolling bound, not just the canonical one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterator

from repro.errors import EvaluationError
from repro.graph.database import GraphDatabase
from repro.graph.witness import (
    WitnessTree,
    default_fresh_factory,
    enumerate_witnesses,
    witness_tree,
)
from repro.patterns.homomorphism import has_homomorphism
from repro.patterns.pattern import GraphPattern, PatternEdge, is_null

Node = Hashable


def in_rep(pattern: GraphPattern, graph: GraphDatabase) -> bool:
    """Return whether ``graph ∈ Rep_Σ(pattern)`` (i.e. π → G)."""
    return has_homomorphism(pattern, graph)


@dataclass
class Instantiation:
    """A concrete graph built from a pattern, with its node mapping.

    ``assignment`` maps every pattern node to its node in ``graph`` (the
    mapping is a homomorphism π → graph by construction).
    """

    graph: GraphDatabase
    assignment: dict[Node, Node]


class _UnionFind:
    """Union-find preferring constant representatives over nulls over fresh."""

    def __init__(self) -> None:
        self.parent: dict[Node, Node] = {}

    def find(self, node: Node) -> Node:
        self.parent.setdefault(node, node)
        root = node
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[node] != root:
            self.parent[node], node = root, self.parent[node]
        return root

    @staticmethod
    def _rank(node: Node) -> int:
        if isinstance(node, str) and node.startswith("_w"):
            return 2  # fresh witness node: weakest
        if is_null(node):
            return 1
        return 0  # constant: strongest

    def union(self, left: Node, right: Node) -> bool:
        """Merge the classes of ``left`` and ``right``.

        Returns ``False`` when the merge would identify two distinct
        constants — the caller treats that as an invalid instantiation.
        """
        root_left, root_right = self.find(left), self.find(right)
        if root_left == root_right:
            return True
        rank_left, rank_right = self._rank(root_left), self._rank(root_right)
        if rank_left == 0 and rank_right == 0:
            return False
        if rank_left <= rank_right:
            self.parent[root_right] = root_left
        else:
            self.parent[root_left] = root_right
        return True


def _assemble(
    pattern: GraphPattern,
    witnesses: list[WitnessTree],
    alphabet: frozenset[str] | None,
) -> Instantiation | None:
    """Combine per-edge witnesses into a graph, or ``None`` if merges clash."""
    uf = _UnionFind()
    for node in pattern.nodes():
        uf.find(node)
    for witness in witnesses:
        for left, right in witness.merges:
            if not uf.union(left, right):
                return None

    graph = GraphDatabase(alphabet=alphabet)
    for node in pattern.nodes():
        graph.add_node(_concrete(uf.find(node)))
    for witness in witnesses:
        for source, lab, target in witness.edges:
            graph.add_edge(_concrete(uf.find(source)), lab, _concrete(uf.find(target)))
    assignment = {node: _concrete(uf.find(node)) for node in pattern.nodes()}
    return Instantiation(graph=graph, assignment=assignment)


def _concrete(node: Node) -> Node:
    """Nulls become node ids named after their label; constants pass through."""
    if is_null(node):
        return node.label
    return node


def canonical_instantiation(
    pattern: GraphPattern,
    star_bound: int = 2,
    alphabet: frozenset[str] | None = None,
) -> Instantiation:
    """Build a concrete graph ``G`` with π → G.

    Tries the canonical (shortest) witness for every edge first; if that
    combination forces two distinct constants together (e.g. a ``f*`` edge
    between two constants taken zero times), falls back to enumerating
    witness combinations with up to ``star_bound`` star unrollings.

    Raises :class:`~repro.errors.EvaluationError` when no combination within
    the bound works (cannot happen for patterns produced by the chase from
    satisfiable settings — see the module docstring of
    :mod:`repro.core.existence`).
    """
    sigma = alphabet if alphabet is not None else pattern.alphabet
    fresh = default_fresh_factory()
    edges = sorted(pattern.edges(), key=PatternEdge.sort_key)
    canonical = [witness_tree(e.nre, e.source, e.target, fresh) for e in edges]
    result = _assemble(pattern, canonical, sigma)
    if result is not None:
        return result
    for instantiation in enumerate_instantiations(
        pattern, star_bound=star_bound, alphabet=sigma
    ):
        return instantiation
    raise EvaluationError(
        f"no instantiation of the pattern within star bound {star_bound}"
    )


def assemble_witnesses(
    pattern: GraphPattern,
    witnesses: list[WitnessTree],
    alphabet: frozenset[str] | None = None,
) -> Instantiation | None:
    """Combine chosen per-edge witnesses into a concrete graph.

    Returns ``None`` when the witnesses' forced merges would identify two
    distinct constants.  ``witnesses`` may cover only a *prefix* of the
    pattern's edges: the result is then the partial instantiation used by
    the pruned backtracking search in :mod:`repro.core.search` (nodes of
    the pattern are always present; only the chosen witnesses' edges are).
    """
    sigma = alphabet if alphabet is not None else pattern.alphabet
    return _assemble(pattern, witnesses, sigma)


def enumerate_instantiations(
    pattern: GraphPattern,
    star_bound: int = 1,
    alphabet: frozenset[str] | None = None,
    limit: int | None = None,
) -> Iterator[Instantiation]:
    """Yield instantiations over all witness combinations within the bound.

    Combinations whose forced merges would identify two distinct constants
    are skipped.  The enumeration is the product of per-edge witness choices,
    so it grows exponentially with the pattern size; ``limit`` truncates it.
    """
    sigma = alphabet if alphabet is not None else pattern.alphabet
    fresh = default_fresh_factory()
    edges = sorted(pattern.edges(), key=PatternEdge.sort_key)
    per_edge: list[list[WitnessTree]] = [
        list(enumerate_witnesses(e.nre, e.source, e.target, star_bound, fresh))
        for e in edges
    ]
    produced = 0
    for combo in itertools.product(*per_edge):
        instantiation = _assemble(pattern, list(combo), sigma)
        if instantiation is None:
            continue
        yield instantiation
        produced += 1
        if limit is not None and produced >= limit:
            return
