"""Exception hierarchy for the ``repro`` library.

Every error deliberately raised by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while still distinguishing the fine-grained categories.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A schema is malformed or an object does not conform to its schema.

    Raised, for instance, when a tuple's arity does not match its relation
    symbol, or when a query mentions a relation absent from the schema.
    """


class ParseError(ReproError):
    """A textual expression (NRE, CQ, dependency) could not be parsed."""

    def __init__(self, message: str, text: str = "", position: int | None = None):
        self.text = text
        self.position = position
        if position is not None:
            message = f"{message} (at position {position} in {text!r})"
        super().__init__(message)


class EvaluationError(ReproError):
    """A query or expression could not be evaluated against an instance."""


class ChaseFailure(ReproError):
    """The chase failed: an egd attempted to equate two distinct constants.

    Chase failure is *semantic* information, not a bug: it proves that no
    solution exists (Section 5 of the paper).  The chase engines raise this
    only when asked for an exception-style API; the primary API returns a
    :class:`repro.chase.result.ChaseResult` carrying the failure.
    """

    def __init__(self, message: str, constants: tuple[object, object] | None = None):
        self.constants = constants
        super().__init__(message)


class BoundExceeded(ReproError):
    """A bounded decision procedure exhausted its budget inconclusively.

    Raised by the bounded existence and certain-answer procedures when the
    configured search bound is reached without a definite answer and the
    caller asked for strict behaviour.
    """


class FrozenGraphError(ReproError):
    """A mutation was attempted on a frozen (read-optimized) graph.

    Raised by the CSR storage backend's mutation hooks: a graph produced
    by :meth:`repro.graph.database.GraphDatabase.freeze` (or loaded from a
    snapshot) is immutable by construction.  Call
    :meth:`~repro.graph.database.GraphDatabase.thaw` to obtain a mutable
    dict-backed copy.
    """


class SnapshotError(ReproError):
    """A graph snapshot file is unreadable, foreign, or corrupt.

    Raised by :mod:`repro.graph.snapshot` when a file fails the magic,
    format-version, or payload-shape checks.  Unlike the best-effort
    automaton cache (:mod:`repro.graph.autocache`), snapshot loads are
    explicit user requests, so failures surface loudly instead of
    degrading silently.
    """


class NotSupportedError(ReproError):
    """The requested operation is outside the implemented fragment.

    Example: running the Section 3.1 relational chase on an s-t tgd whose
    head uses a Kleene star (the fragment admits single-symbol NREs only).
    """
