"""The compiled NRE query engine.

This module is the query-side counterpart of the delta-chase engine: where
:mod:`repro.engine.matcher` made *trigger matching* incremental, this makes
*query evaluation* compiled and shared.  The certain-answer pipeline
(:mod:`repro.core.certain` / :mod:`repro.core.search`) enumerates many
near-identical candidate solutions and asks the same NRE/CNRE questions of
each; the seed code re-ran the set-algebraic evaluator from scratch per
candidate, materialising full all-pairs relations even to decide one pair.
:class:`QueryEngine` removes that waste along three axes:

* **compile once** — NREs are lowered through the cached
  :func:`repro.graph.automaton.compile_nre` into ε-free, label-indexed
  :class:`~repro.graph.automaton.CompiledAutomaton` form; one compilation
  serves every candidate;
* **ask only what is asked** — :meth:`QueryEngine.holds` decides a single
  pair with an early-exit product BFS and :meth:`QueryEngine.reachable`
  evaluates a single source, so ``is_certain_answer`` never materialises an
  all-pairs relation; nested ``[·]`` tests are memoised per (sub-automaton,
  node) inside each graph's runner;
* **share across candidates** — results are cached per graph *content*,
  keyed on the :meth:`~repro.graph.database.GraphDatabase.fingerprint`
  derived from the append-only edge journal, so sibling candidates in
  :mod:`repro.core.search` (and the same witness re-examined by existence
  and certain-answer passes) reuse each other's work instead of restarting.

The set-algebraic evaluator (:mod:`repro.graph.eval`) is unchanged and kept
as the differential-testing oracle; :class:`ReferenceEngine` exposes it
behind the same interface so both paths stay runnable end to end (the CLI's
``--engine {compiled,reference}`` flag switches between them).

>>> from repro.graph.database import GraphDatabase
>>> from repro.graph.parser import parse_nre
>>> engine = QueryEngine()
>>> g = GraphDatabase(edges=[("u", "a", "v"), ("v", "a", "w")])
>>> sorted(engine.pairs(g, parse_nre("a . a")))
[('u', 'w')]
>>> engine.holds(g, parse_nre("a*"), "u", "w")
True
>>> engine.stats.all_pairs_queries, engine.stats.single_pair_queries
(1, 1)
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Hashable, Iterable

from repro import kernels
from repro.graph.automaton import NREAutomaton, _Runner, compile_nre
from repro.graph.database import Fingerprint, GraphDatabase
from repro.graph.eval import evaluate_nre
from repro.graph.nre import NRE

Node = Hashable
Pair = tuple[Node, Node]
PairSet = frozenset[Pair]


@dataclass
class EvalStats:
    """Observability counters for a query engine (mirrors ``ChaseStats``).

    >>> stats = EvalStats()
    >>> stats.all_pairs_queries += 1
    >>> "all_pairs_queries=1" in stats.summary()
    True
    """

    all_pairs_queries: int = 0
    """Full-relation evaluations requested."""

    single_source_queries: int = 0
    """Single-source reachability evaluations requested."""

    batched_source_queries: int = 0
    """Sources answered through batched multi-source evaluations."""

    single_pair_queries: int = 0
    """Single-pair (early-exit) decisions requested."""

    automata_compiled: int = 0
    """Distinct NREs this engine compiled (cache-miss compilations)."""

    automaton_states: int = 0
    """Total Thompson states across those compiled automata."""

    nested_tests: int = 0
    """Nested ``[·]`` test evaluations actually run."""

    nested_test_cache_hits: int = 0
    """Nested test answers served from a runner's memo table."""

    graph_cache_hits: int = 0
    """Queries that found their graph's state in the cross-candidate cache."""

    graph_cache_misses: int = 0
    """Queries that had to open a fresh per-graph state."""

    uncacheable_graphs: int = 0
    """Queries on destructively-mutated graphs (no fingerprint, no sharing)."""

    csr_refreezes: int = 0
    """CSR freezes served by journal replay from the previous frozen tip
    (only the update batch's labels rebuilt) instead of a cold freeze."""

    def as_dict(self) -> dict[str, int]:
        """Every counter as a plain dict (telemetry folding, reporting).

        >>> EvalStats(graph_cache_hits=3).as_dict()["graph_cache_hits"]
        3
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self) -> str:
        """Return a one-line ``key=value`` rendering of every counter."""
        return " ".join(
            f"{f.name}={getattr(self, f.name)}" for f in fields(self)
        )


class _GraphState:
    """Per-graph evaluation state: one runner plus three result caches."""

    __slots__ = ("graph", "runner", "pairs", "reach", "holds")

    def __init__(
        self, graph: GraphDatabase, stats: EvalStats, kernel: str | None = None
    ):
        self.graph = graph
        self.runner = _Runner(graph, stats, kernel)
        self.pairs: dict[NRE, PairSet] = {}
        self.reach: dict[tuple[NRE, Node], frozenset[Node]] = {}
        self.holds: dict[tuple[NRE, Node, Node], bool] = {}

    def rebind(self, graph: GraphDatabase) -> None:
        """Point the runner at ``graph`` (same content, different object).

        Cached states outlive the graph object they were built from; when a
        content-equal graph hits the cache, rebinding guarantees the runner
        reads a graph that *currently* matches the fingerprint (the original
        object could have been destructively mutated since).  A state whose
        graph is *frozen* never rebinds: frozen graphs cannot drift from
        their fingerprint, and keeping them pinned is what lets a
        ``backend="csr"`` engine serve dict-backed lookups from the frozen
        twin it built on the first miss.
        """
        if self.graph is not graph and not self.graph.is_frozen:
            self.graph = graph
            self.runner.rebind(graph)


BACKEND_NAMES = ("dict", "csr")
"""The storage back-ends an engine can evaluate on (see ``--backend``)."""


class QueryEngine:
    """Compiled, memoising NRE evaluation over many graphs.

    ``max_graphs`` bounds the cross-candidate cache (LRU eviction); the
    per-expression automaton table is unbounded but tiny (one entry per
    distinct query/subexpression ever evaluated).

    ``backend`` selects the storage representation evaluation runs on
    (:mod:`repro.graph.backends`): ``"dict"`` (default) evaluates graphs
    as handed in, while ``"csr"`` freezes each cacheable graph to the
    interned-CSR backend on its first appearance — the runner then takes
    the integer-id bulk-traversal fast path for every query against that
    fingerprint, which is the profitable trade whenever a graph is queried
    more than once (the chased-result serving shape).  Answers are
    byte-identical across back-ends; only the physical evaluation differs.
    Graphs that cannot be fingerprinted (destructively mutated) are never
    frozen implicitly — they evaluate on their own backend.

    ``kernel`` selects the execution kernel (:mod:`repro.kernels`):
    ``"vector"`` runs the numpy array-at-a-time product search on
    CSR-backed graphs, ``"scalar"`` the pure-Python loops, ``"codegen"``
    the generated-code kernel (:mod:`repro.graph.codegen` — each automaton
    lowered once to specialized Python, the single-pair/warm-query fast
    path), and ``None`` defers to ``REPRO_KERNEL``/the built-in default.
    ``self.kernel`` holds the *resolved* choice (``"vector"`` degrades to
    ``"scalar"`` without numpy; ``"codegen"`` is pure Python and never
    degrades); answers are identical on every kernel.
    """

    name = "compiled"

    def __init__(
        self,
        stats: EvalStats | None = None,
        max_graphs: int = 256,
        backend: str = "dict",
        kernel: str | None = None,
    ):
        if backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown storage backend {backend!r}; expected one of "
                f"{list(BACKEND_NAMES)}"
            )
        self.stats = stats if stats is not None else EvalStats()
        self.max_graphs = max_graphs
        self.backend = backend
        self.kernel = kernels.resolve_kernel(kernel)
        self._automata: dict[NRE, NREAutomaton] = {}
        self._cache: OrderedDict[Fingerprint, _GraphState] = OrderedDict()
        # The most recently frozen graph (backend="csr" only): an update
        # batch typically extends its journal, so the next freeze replays
        # just the suffix instead of rebuilding every CSR buffer.
        self._frozen_tip: GraphDatabase | None = None

    # ------------------------------------------------------------------ #
    # Query API
    # ------------------------------------------------------------------ #

    def pairs(self, graph: GraphDatabase, expr: NRE) -> PairSet:
        """Return ``⟦expr⟧_graph`` as a frozenset of pairs (all-pairs mode)."""
        self.stats.all_pairs_queries += 1
        state = self._state(graph)
        cached = state.pairs.get(expr)
        if cached is None:
            automaton = self._automaton(expr).compiled()
            answers = state.runner.reachable_many(automaton, graph.nodes())
            cached = state.pairs[expr] = frozenset(
                (source, target)
                for source, targets in answers.items()
                for target in targets
            )
        return cached

    def reachable(
        self, graph: GraphDatabase, expr: NRE, source: Node
    ) -> frozenset[Node]:
        """Return ``{v | (source, v) ∈ ⟦expr⟧_graph}`` (single-source mode)."""
        self.stats.single_source_queries += 1
        if source not in graph:
            return frozenset()
        state = self._state(graph)
        key = (expr, source)
        cached = state.reach.get(key)
        if cached is not None:
            return cached
        pairs = state.pairs.get(expr)
        if pairs is not None:
            cached = frozenset(v for u, v in pairs if u == source)
        else:
            cached = state.runner.reachable(self._automaton(expr).compiled(), source)
        state.reach[key] = cached
        return cached

    def reachable_many(
        self, graph: GraphDatabase, expr: NRE, sources: Iterable[Node]
    ) -> dict[Node, frozenset[Node]]:
        """Batched :meth:`reachable`: one answer set per source.

        The bulk-traversal entry point: on the vector kernel every
        uncached source runs through *one* multi-source product search
        (:meth:`_Runner.reachable_many`), so the per-query numpy dispatch
        overhead is amortised over the whole sweep.  Per-source cache
        entries are consulted first and populated afterwards, so mixing
        this with :meth:`reachable` stays coherent.
        """
        sources = list(sources)
        self.stats.batched_source_queries += len(sources)
        state = self._state(graph)
        answers: dict[Node, frozenset[Node]] = {}
        misses: list[Node] = []
        pairs = state.pairs.get(expr)
        for source in sources:
            if source not in graph:
                answers[source] = frozenset()
                continue
            cached = state.reach.get((expr, source))
            if cached is None and pairs is not None:
                cached = frozenset(v for u, v in pairs if u == source)
                state.reach[(expr, source)] = cached
            if cached is not None:
                answers[source] = cached
            else:
                misses.append(source)
        if misses:
            fresh = state.runner.reachable_many(
                self._automaton(expr).compiled(), misses
            )
            for source, targets in fresh.items():
                state.reach[(expr, source)] = targets
                answers[source] = targets
        return answers

    def holds(
        self, graph: GraphDatabase, expr: NRE, source: Node, target: Node
    ) -> bool:
        """Decide ``(source, target) ∈ ⟦expr⟧_graph`` with early exit.

        Consults the all-pairs and single-source caches first, so a pair
        already implied by broader cached work costs one dictionary lookup.
        """
        self.stats.single_pair_queries += 1
        if source not in graph or target not in graph:
            return False
        state = self._state(graph)
        pairs = state.pairs.get(expr)
        if pairs is not None:
            return (source, target) in pairs
        reach = state.reach.get((expr, source))
        if reach is not None:
            return target in reach
        key = (expr, source, target)
        cached = state.holds.get(key)
        if cached is None:
            cached = state.holds[key] = state.runner.holds(
                self._automaton(expr).compiled(), source, target
            )
        return cached

    def answers_over(
        self, graph: GraphDatabase, expr: NRE, domain: Iterable[Node]
    ) -> PairSet:
        """Return ``⟦expr⟧_graph`` restricted to ``domain × domain``.

        The certain-answer engine only ever reports tuples over the source
        active domain, which is typically far smaller than the solution
        graph — so this runs one batched multi-source query over the
        domain instead of materialising the full relation.
        """
        members = set(domain)
        result: set[Pair] = set()
        for source, targets in self.reachable_many(graph, expr, members).items():
            for target in targets:
                if target in members:
                    result.add((source, target))
        return frozenset(result)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _automaton(self, expr: NRE) -> NREAutomaton:
        automaton = self._automata.get(expr)
        if automaton is None:
            automaton = self._automata[expr] = compile_nre(expr)
            self.stats.automata_compiled += 1
            self.stats.automaton_states += automaton.state_count
        return automaton

    def _state(self, graph: GraphDatabase) -> _GraphState:
        token = graph.fingerprint()
        if token is None:
            # Destructively-mutated graph: evaluate with a transient state
            # (nested-test memoisation still applies within one query).
            self.stats.uncacheable_graphs += 1
            return _GraphState(graph, self.stats, self.kernel)
        state = self._cache.get(token)
        if state is not None:
            self._cache.move_to_end(token)
            self.stats.graph_cache_hits += 1
            state.rebind(graph)
            return state
        self.stats.graph_cache_misses += 1
        if self.backend == "csr":
            # Freeze once per fingerprint; every later query against this
            # content runs the interned integer-id fast path.
            graph = self._freeze_incremental(graph, token)
        state = _GraphState(graph, self.stats, self.kernel)
        self._cache[token] = state
        while len(self._cache) > self.max_graphs:
            self._cache.popitem(last=False)
        return state

    def _freeze_incremental(
        self, graph: GraphDatabase, token: Fingerprint
    ) -> GraphDatabase:
        """Freeze ``graph``, replaying from the last frozen tip when possible.

        When ``graph``'s journal extends the previous frozen graph's journal
        (the live-update serving shape: each batch appends edges), the new
        frozen twin is built with
        :meth:`~repro.graph.database.GraphDatabase.refreeze` — only the
        batch's labels rebuild their CSR buffers.  The replayed result is
        accepted only if its fingerprint equals ``token`` (isolated-node
        additions or interleaved deletions make the journals diverge);
        otherwise this falls back to a cold :meth:`freeze`.
        """
        tip = self._frozen_tip
        if tip is not None and not graph.is_frozen:
            tip_token = tip.fingerprint()
            if tip_token is not None:
                tip_journal = tip_token.key[1]
                journal = token.key[1]
                if (
                    len(journal) >= len(tip_journal)
                    and journal[: len(tip_journal)] == tip_journal
                ):
                    candidate = tip.refreeze(journal[len(tip_journal) :])
                    if candidate.fingerprint() == token:
                        self.stats.csr_refreezes += 1
                        self._frozen_tip = candidate
                        return candidate
        frozen = graph if graph.is_frozen else graph.freeze()
        self._frozen_tip = frozen
        return frozen

    def clear(self) -> None:
        """Drop all per-graph state (the automaton table survives)."""
        self._cache.clear()
        self._frozen_tip = None


class ReferenceEngine:
    """The set-algebraic oracle behind the same interface as the engine.

    No compilation, no cross-candidate caching, no early exit — every call
    materialises the full relation with :func:`repro.graph.eval.evaluate_nre`
    exactly as the seed code did.  Useful as the ``--engine reference`` CLI
    path and as the oracle half of differential tests.
    """

    name = "reference"

    def __init__(self, stats: EvalStats | None = None):
        self.stats = stats if stats is not None else EvalStats()

    def pairs(self, graph: GraphDatabase, expr: NRE) -> PairSet:
        """Return ``⟦expr⟧_graph`` via the reference evaluator."""
        self.stats.all_pairs_queries += 1
        return evaluate_nre(graph, expr)

    def reachable(
        self, graph: GraphDatabase, expr: NRE, source: Node
    ) -> frozenset[Node]:
        """Single-source answers, filtered from the full relation."""
        self.stats.single_source_queries += 1
        return frozenset(v for u, v in evaluate_nre(graph, expr) if u == source)

    def reachable_many(
        self, graph: GraphDatabase, expr: NRE, sources: Iterable[Node]
    ) -> dict[Node, frozenset[Node]]:
        """Per-source answers, all filtered from one full relation."""
        sources = list(sources)
        self.stats.batched_source_queries += len(sources)
        relation = evaluate_nre(graph, expr)
        answers: dict[Node, set[Node]] = {source: set() for source in sources}
        for u, v in relation:
            if u in answers:
                answers[u].add(v)
        return {source: frozenset(targets) for source, targets in answers.items()}

    def holds(
        self, graph: GraphDatabase, expr: NRE, source: Node, target: Node
    ) -> bool:
        """Single-pair membership, decided on the full relation."""
        self.stats.single_pair_queries += 1
        return (source, target) in evaluate_nre(graph, expr)

    def answers_over(
        self, graph: GraphDatabase, expr: NRE, domain: Iterable[Node]
    ) -> PairSet:
        """The full relation restricted to ``domain × domain``."""
        self.stats.all_pairs_queries += 1
        members = set(domain)
        return frozenset(
            (u, v)
            for u, v in evaluate_nre(graph, expr)
            if u in members and v in members
        )


_DEFAULT_ENGINES: dict[tuple[str, str], QueryEngine] = {}


def default_engine(backend: str = "dict", kernel: str | None = None) -> QueryEngine:
    """Return the process-wide shared :class:`QueryEngine` for ``backend``.

    Core modules that are not handed an explicit engine share this one, so
    candidate solutions examined by different entry points (existence, then
    certain answers) still hit one another's caches.  One engine is kept
    per (storage backend, resolved kernel) combination — the service
    workers route requests carrying ``backend``/``kernel`` parameters to
    the matching warm instance.
    """
    key = (backend, kernels.resolve_kernel(kernel))
    engine = _DEFAULT_ENGINES.get(key)
    if engine is None:
        engine = _DEFAULT_ENGINES[key] = QueryEngine(backend=backend, kernel=key[1])
    return engine


def live_engines() -> list[QueryEngine]:
    """Every process-wide shared engine currently warm.

    The introspection hook worker processes use to flush accumulated
    :class:`EvalStats` counters into the telemetry registry at response
    time (``repro.telemetry.fold_stats`` folds by delta, so repeated
    flushes of these cumulative objects never double count).
    """
    return list(_DEFAULT_ENGINES.values())
