"""Incremental violation maintenance for egd fixpoints.

The seed egd chases recomputed *every* violation from scratch after each
merge step — O(full trigger search) per merge, the dominant cost
``benchmarks/bench_chase_scaling.py`` exposes.  :class:`EgdViolationQueue`
keeps the violation set of a set of egds up to date across merges instead:

* the initial set is computed once with the indexed
  :class:`~repro.engine.matcher.TriggerMatcher`;
* when a merge renames ``old`` to ``new``, surviving violations are renamed
  in place (a homomorphism survives a node rename, so no rescan is needed
  to keep them) and the only *new* violations possible are those routed
  through an edge rewritten onto ``new`` — exactly what
  :meth:`~repro.engine.matcher.TriggerMatcher.matches_touching` enumerates.

Egds whose bodies use composite NREs are handled by recomputation on every
query (the seed behaviour), so the queue's answers — and therefore the
chase's observable results — are identical to a full rescan; the fig1–fig7
equivalence tests in ``tests/test_engine`` assert exactly that.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Hashable, Sequence

from repro.engine.matcher import TriggerMatcher, is_simple_query
from repro.graph.database import GraphDatabase
from repro.patterns.pattern import is_null

if TYPE_CHECKING:  # annotation-only imports; avoids an import cycle
    from repro.chase.result import ChaseStats
    from repro.mappings.egd import TargetEgd

Node = Hashable
Pair = tuple[Node, Node]
PairKey = tuple[str, str]


class EgdViolationQueue:
    """The violation set of some egds over a mutable graph, merge-aware.

    ``view`` is the graph the egd bodies are matched on (a pattern's symbol
    view, or a concrete chased graph); the queue mutates it through
    :meth:`merge`, so callers hand over ownership of the view.

    >>> from repro.mappings.parser import parse_egd
    >>> g = GraphDatabase(edges=[("a", "h", "hx"), ("b", "h", "hx")])
    >>> queue = EgdViolationQueue([parse_egd(
    ...     "(x1, h, x3), (x2, h, x3) -> x1 = x2")], g)
    >>> sorted(queue.first_violation())
    ['a', 'b']
    >>> _ = queue.merge("b", "a")
    >>> queue.first_violation() is None
    True
    """

    def __init__(
        self,
        egds: "Sequence[TargetEgd]",
        view: GraphDatabase,
        stats: "ChaseStats | None" = None,
        seed_initial: bool = True,
    ):
        self.view = view
        self.matcher = TriggerMatcher(view, stats)
        self._simple = [egd for egd in egds if is_simple_query(egd.body)]
        self._fallback = [egd for egd in egds if not is_simple_query(egd.body)]
        # Violation identity is the *unordered node pair* (reprs are used
        # only for ordering, like the seed's violation selection, so nodes
        # with colliding reprs cannot coalesce two distinct violations).
        self._pairs: dict[frozenset, tuple[Pair, PairKey]] = {}
        # node -> identities of maintained pairs mentioning it, so a merge
        # only touches the violations of the merged node, not the whole set.
        self._by_node: dict[Node, set[frozenset]] = {}
        # min-heap over (order key, seq, identity) with lazy deletion:
        # popped entries whose identity left _pairs are skipped on peek.
        self._heap: list[tuple[PairKey, int, frozenset]] = []
        self._seq = itertools.count()
        self._repr_cache: dict[Node, str] = {}
        # ``seed_initial=False`` skips the initial full scan: the caller
        # asserts the view currently has no violations (it sits at a prior
        # fixpoint) and will feed later deltas through :meth:`rescan_since`.
        # The queue orders violations through the heap, never through the
        # matcher's enumeration order — so every scan below consumes the
        # matcher's *projected pair set* (pair_matches / _seeded), which
        # skips homomorphism materialisation and takes the indexed (and,
        # on frozen CSR views, vectorized) join fast paths.
        if seed_initial:
            for egd in self._simple:
                for left, right in self.matcher.pair_matches(
                    egd.body, egd.left, egd.right
                ):
                    self._consider(left, right)

    def _repr(self, node: Node) -> str:
        cached = self._repr_cache.get(node)
        if cached is None:
            cached = self._repr_cache[node] = repr(node)
        return cached

    def _key(self, left: Node, right: Node) -> PairKey:
        """The deterministic order key the chase uses to pick violations."""
        left_repr, right_repr = self._repr(left), self._repr(right)
        if left_repr <= right_repr:
            return (left_repr, right_repr)
        return (right_repr, left_repr)

    def _consider(self, left: Node, right: Node) -> None:
        if left != right:
            identity = frozenset((left, right))
            if identity not in self._pairs:
                key = self._key(left, right)
                # Store the pair in order-key orientation: violations now
                # arrive as unordered sets (the matcher's pair
                # projections), so first-arrival orientation would vary
                # with hash seeding — and the orientation is observable
                # through the chase's failure witness.
                if self._repr(left) > self._repr(right):
                    left, right = right, left
                self._pairs[identity] = ((left, right), key)
                self._by_node.setdefault(left, set()).add(identity)
                self._by_node.setdefault(right, set()).add(identity)
                heapq.heappush(self._heap, (key, next(self._seq), identity))

    def _discard(self, identity: frozenset) -> None:
        entry = self._pairs.pop(identity, None)
        if entry is not None:
            for node in entry[0]:
                identities = self._by_node.get(node)
                if identities is not None:
                    identities.discard(identity)

    def first_violation(self) -> Pair | None:
        """Return the violation with the least order key, or ``None``.

        Maintained violations of simple-bodied egds are read from the
        queue; composite-bodied egds are re-matched on the current view
        (their bodies are opaque to delta reasoning).
        """
        while self._heap and self._heap[0][2] not in self._pairs:
            heapq.heappop(self._heap)  # lazily drop entries a merge resolved
        best_key: PairKey | None = None
        best: Pair | None = None
        if self._heap:
            best_key = self._heap[0][0]
            best = self._pairs[self._heap[0][2]][0]
        for egd in self._fallback:
            for left, right in egd.violations(self.view):
                key = self._key(left, right)
                if best_key is None or key < best_key:
                    best_key, best = key, (left, right)
        return best

    def rescan_since(self, version: int) -> None:
        """Add violations routed through edges inserted after ``version``.

        The semi-naive complement of the constructor's full scan: if the
        view was violation-free at ``version`` (an earlier fixpoint), any
        new violation of a simple-bodied egd must use at least one edge the
        journal recorded after that point, so only those seeded joins run.
        The incremental chase calls this after applying an update batch's
        edge insertions to an already-converged merged graph.

        >>> from repro.mappings.parser import parse_egd
        >>> g = GraphDatabase(edges=[("a", "h", "hx")])
        >>> egd = parse_egd("(x1, h, x3), (x2, h, x3) -> x1 = x2")
        >>> queue = EgdViolationQueue([egd], g)
        >>> v = g.version
        >>> g.add_edge("b", "h", "hx")
        >>> queue.rescan_since(v)
        >>> sorted(queue.first_violation())
        ['a', 'b']
        """
        for egd in self._simple:
            for left, right in self.matcher.pair_matches_seeded(
                egd.body, egd.left, egd.right, self.view.edges_since(version)
            ):
                self._consider(left, right)

    def merge(self, old: Node, new: Node) -> None:
        """Record the merge ``old ↦ new``: rename the view and the queue.

        Renames the view's node in place, rewrites the maintained pairs
        (dropping those the merge resolved), and re-matches each simple egd
        through the rewritten edges to pick up any violations the merge
        *created* (cascading merges).  Only the edges the rename actually
        rewrote are re-matched — a homomorphism built purely from edges
        that predate the rename existed before it, so its violation is
        already maintained; ``new``'s untouched incident edges cannot
        seed anything new.
        """
        rewritten = self.view.rename_node(old, new)
        for identity in list(self._by_node.get(old, ())):
            (left, right), _ = self._pairs[identity]
            self._discard(identity)
            left = new if left == old else left
            right = new if right == old else right
            self._consider(left, right)
        self._by_node.pop(old, None)
        for egd in self._simple:
            for left, right in self.matcher.pair_matches_seeded(
                egd.body, egd.left, egd.right, rewritten
            ):
                self._consider(left, right)


def run_egd_fixpoint(queue, stats, apply=None) -> tuple[bool, tuple[Node, Node] | None]:
    """Drive ``queue`` to its fixpoint with the paper's merge rules.

    The one egd-step loop shared by the pattern chase (Section 5) and the
    graph-level relational chase (Section 3.1): pick the least violation;
    two constants fail the chase, a null merges into a constant, and of
    two nulls the later-sorted one merges into the earlier.  ``apply`` is
    invoked with ``(old, new)`` before the queue's own view is renamed
    (the pattern chase substitutes on the pattern there); ``stats`` gets
    the rounds/egd_firings/null_merges accounting.

    Returns ``(failed, failure_witness)``.

    >>> from repro.chase.result import ChaseStats
    >>> from repro.mappings.parser import parse_egd
    >>> g = GraphDatabase(edges=[("a", "h", "hx"), ("b", "h", "hx")])
    >>> egd = parse_egd("(x1, h, x3), (x2, h, x3) -> x1 = x2")
    >>> run_egd_fixpoint(EgdViolationQueue([egd], g), ChaseStats())
    (True, ('a', 'b'))
    """
    while True:
        stats.rounds += 1
        violation = queue.first_violation()
        if violation is None:
            return False, None
        left, right = violation
        stats.egd_firings += 1
        left_null, right_null = is_null(left), is_null(right)
        if not left_null and not right_null:
            # (i) two constants: the chase fails — no solution exists.
            return True, (left, right)
        if left_null and not right_null:
            old, new = left, right  # (ii) null := constant
        elif right_null and not left_null:
            old, new = right, left  # (ii) symmetric
        else:
            # (iii) two nulls: replace the later-labeled one, deterministically.
            new, old = sorted((left, right))
        if apply is not None:
            apply(old, new)
        queue.merge(old, new)
        stats.null_merges += 1
