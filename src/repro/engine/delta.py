"""Incremental violation maintenance for egd fixpoints.

The seed egd chases recomputed *every* violation from scratch after each
merge step — O(full trigger search) per merge, the dominant cost
``benchmarks/bench_chase_scaling.py`` exposes.  :class:`EgdViolationQueue`
keeps the violation set of a set of egds up to date across merges instead:

* the initial set is computed once with the indexed
  :class:`~repro.engine.matcher.TriggerMatcher`;
* when a merge renames ``old`` to ``new``, surviving violations are renamed
  in place (a homomorphism survives a node rename, so no rescan is needed
  to keep them) and the only *new* violations possible are those routed
  through an edge rewritten onto ``new`` — exactly what
  :meth:`~repro.engine.matcher.TriggerMatcher.matches_touching` enumerates.

Egds whose bodies are unions of words are *decomposed* into simple chain
egds first (:func:`decompose_egd` — each ``(x, a·b, y)`` atom becomes
``(x, a, z), (z, b, y)``), so they ride the maintained fast paths too;
the decomposition preserves the violation set projected to the equated
pair, so the chase's observable results are unchanged (the word-egd
regimes of ``tests/test_engine/test_incremental.py`` pin byte-identity).
Only genuinely composite bodies (stars, nesting) are handled by
recomputation on every query (the seed behaviour); the fig1–fig7
equivalence tests in ``tests/test_engine`` assert those answers are
identical to a full rescan.
"""

from __future__ import annotations

import heapq
import itertools
from itertools import product
from typing import TYPE_CHECKING, Hashable, Sequence

from repro.engine.matcher import TriggerMatcher, is_simple_query
from repro.errors import NotSupportedError
from repro.graph.cnre import CNREAtom, CNREQuery
from repro.graph.database import GraphDatabase
from repro.graph.nre import NRE, Backward, Concat, Label, Union
from repro.patterns.pattern import is_null
from repro.relational.query import Variable

if TYPE_CHECKING:  # annotation-only imports; avoids an import cycle
    from repro.chase.result import ChaseStats
    from repro.mappings.egd import TargetEgd

Node = Hashable
Pair = tuple[Node, Node]
PairKey = tuple[str, str]


def _functional_profile(egd: "TargetEgd") -> "tuple[str, str] | None":
    """Detect functional-dependency-shaped egds, or return ``None``.

    A *functional* egd is ``(x1, L, k), (x2, L, k) -> x1 = x2`` (or the
    mirrored ``(k, L, x1), (k, L, x2)`` form, possibly written with
    backward labels): both atoms traverse the same single label, share a
    key variable on the same side, and equate the two member variables.
    Returns ``(label, direction)`` where direction ``"in"`` means the
    members reach the key along *incoming* edges of the key (so the
    group of a key is ``predecessors(key, label)``), and ``"out"`` means
    ``successors(key, label)``.

    Such egds say "the key determines the member": every key's member
    group collapses to a single node.  Maintaining the full violation
    set is O(k²) pairs per group — fatal for Zipf-skewed workloads where
    one hot key can own thousands of members — but a *star* anchored at
    the group's least member carries exactly the same merge sequence in
    O(k) maintained pairs (each merge keeps the lesser node, so the
    anchor survives and the remaining star pairs stay valid).
    """
    atoms = egd.body.atoms
    if len(atoms) != 2:
        return None
    normalized: list[tuple] = []  # (source, label, target) edge templates
    for atom in atoms:
        expr = atom.nre
        if not isinstance(atom.subject, Variable) or not isinstance(
            atom.object, Variable
        ):
            return None
        if isinstance(expr, Label):
            normalized.append((atom.subject, expr.name, atom.object))
        elif isinstance(expr, Backward):
            normalized.append((atom.object, expr.name, atom.subject))
        else:
            return None
    (s1, l1, t1), (s2, l2, t2) = normalized
    if l1 != l2:
        return None
    members = {egd.left, egd.right}
    if len(members) != 2:
        return None
    if t1 == t2 and {s1, s2} == members and t1 not in members:
        return (l1, "in")
    if s1 == s2 and {t1, t2} == members and s1 not in members:
        return (l1, "out")
    return None


def _word_parts(expr: NRE) -> "list[NRE] | None":
    """Flatten ``expr`` into a word (a concat of bare labels), or ``None``."""
    if isinstance(expr, (Label, Backward)):
        return [expr]
    if isinstance(expr, Concat):
        left = _word_parts(expr.left)
        right = _word_parts(expr.right)
        if left is None or right is None:
            return None
        return left + right
    return None


def _atom_alternatives(expr: NRE) -> "list[list[NRE]] | None":
    """Expand top-level unions of ``expr`` into a list of words, or ``None``."""
    if isinstance(expr, Union):
        left = _atom_alternatives(expr.left)
        right = _atom_alternatives(expr.right)
        if left is None or right is None:
            return None
        return left + right
    parts = _word_parts(expr)
    return None if parts is None else [parts]


def decompose_egd(egd: "TargetEgd", index: int) -> "list[TargetEgd]":
    """Rewrite an egd with union-of-words atoms into simple chain egds.

    Each atom ``(x, a·b, y)`` becomes a chain ``(x, a, z), (z, b, y)`` with
    a fresh intermediate variable; a top-level union contributes one egd
    per branch combination.  The returned egds have the same violation set
    as ``egd`` once projected to ``(left, right)``, but their bodies are
    *simple*, so the violation queue's maintained fast paths apply.
    Raises :class:`~repro.errors.NotSupportedError` for bodies outside the
    union-of-words fragment (stars, nesting).

    >>> from repro.mappings.parser import parse_egd
    >>> chains = decompose_egd(
    ...     parse_egd("(x1, f . h, x3), (x2, h, x3) -> x1 = x2"), 0)
    >>> [len(chain.body.atoms) for chain in chains]
    [3]
    >>> from repro.graph.parser import parse_nre
    >>> from repro.mappings.egd import TargetEgd
    >>> union = TargetEgd(
    ...     CNREQuery([CNREAtom(Variable("x"), parse_nre("a + b"), Variable("y"))]),
    ...     Variable("x"), Variable("y"))
    >>> len(decompose_egd(union, 1))
    2
    """
    from repro.mappings.egd import TargetEgd

    per_atom: list[tuple[CNREAtom, list[list[NRE]]]] = []
    for atom in egd.body.atoms:
        alternatives = _atom_alternatives(atom.nre)
        if alternatives is None:
            raise NotSupportedError(
                "egd chain decomposition handles bodies that are "
                f"unions of words only; offending NRE: {atom.nre}"
            )
        per_atom.append((atom, alternatives))
    chains: list[TargetEgd] = []
    choice_space = [range(len(alternatives)) for _, alternatives in per_atom]
    for branch_no, choices in enumerate(product(*choice_space)):
        atoms: list[CNREAtom] = []
        for atom_no, ((atom, alternatives), pick) in enumerate(zip(per_atom, choices)):
            parts = alternatives[pick]
            terms: list = [atom.subject]
            for step_no in range(1, len(parts)):
                terms.append(Variable(f"__inc{index}_{branch_no}_{atom_no}_{step_no}"))
            terms.append(atom.object)
            for step_no, part in enumerate(parts):
                atoms.append(CNREAtom(terms[step_no], part, terms[step_no + 1]))
        chains.append(
            TargetEgd(CNREQuery(atoms), egd.left, egd.right, name=egd.name)
        )
    return chains


class EgdViolationQueue:
    """The violation set of some egds over a mutable graph, merge-aware.

    ``view`` is the graph the egd bodies are matched on (a pattern's symbol
    view, or a concrete chased graph); the queue mutates it through
    :meth:`merge`, so callers hand over ownership of the view.

    >>> from repro.mappings.parser import parse_egd
    >>> g = GraphDatabase(edges=[("a", "h", "hx"), ("b", "h", "hx")])
    >>> queue = EgdViolationQueue([parse_egd(
    ...     "(x1, h, x3), (x2, h, x3) -> x1 = x2")], g)
    >>> sorted(queue.first_violation())
    ['a', 'b']
    >>> _ = queue.merge("b", "a")
    >>> queue.first_violation() is None
    True
    """

    def __init__(
        self,
        egds: "Sequence[TargetEgd]",
        view: GraphDatabase,
        stats: "ChaseStats | None" = None,
        seed_initial: bool = True,
    ):
        self.view = view
        self.matcher = TriggerMatcher(view, stats)
        # Union-of-word bodies are decomposed into simple chains up front
        # (same violation set projected to the equated pair), so only
        # genuinely composite bodies (stars, nesting) pay the per-query
        # recomputation fallback.
        self._simple: list["TargetEgd"] = []
        self._fallback: list["TargetEgd"] = []
        # Functional egds (key determines member — see _functional_profile)
        # skip pair enumeration entirely: each violating key group is kept
        # as a star of O(k) pairs anchored at its least member, instead of
        # the O(k²) pairs the generic join would emit.
        self._functional: list[tuple[str, str]] = []

        def classify(egd: "TargetEgd") -> None:
            profile = _functional_profile(egd)
            if profile is not None:
                if profile not in self._functional:
                    self._functional.append(profile)
            else:
                self._simple.append(egd)

        for index, egd in enumerate(egds):
            if is_simple_query(egd.body):
                classify(egd)
                continue
            try:
                chains = decompose_egd(egd, index)
            except NotSupportedError:
                self._fallback.append(egd)
                continue
            if all(is_simple_query(chain.body) for chain in chains):
                for chain in chains:
                    classify(chain)
            else:
                self._fallback.append(egd)
        # Violation identity is the *unordered node pair* (reprs are used
        # only for ordering, like the seed's violation selection, so nodes
        # with colliding reprs cannot coalesce two distinct violations).
        self._pairs: dict[frozenset, tuple[Pair, PairKey]] = {}
        # node -> identities of maintained pairs mentioning it, so a merge
        # only touches the violations of the merged node, not the whole set.
        self._by_node: dict[Node, set[frozenset]] = {}
        # min-heap over (order key, seq, identity) with lazy deletion:
        # popped entries whose identity left _pairs are skipped on peek.
        self._heap: list[tuple[PairKey, int, frozenset]] = []
        self._seq = itertools.count()
        self._repr_cache: dict[Node, str] = {}
        # ``seed_initial=False`` skips the initial full scan: the caller
        # asserts the view currently has no violations (it sits at a prior
        # fixpoint) and will feed later deltas through :meth:`rescan_since`.
        # The queue orders violations through the heap, never through the
        # matcher's enumeration order — so every scan below consumes the
        # matcher's *projected pair set* (pair_matches / _seeded), which
        # skips homomorphism materialisation and takes the indexed (and,
        # on frozen CSR views, vectorized) join fast paths.
        if seed_initial:
            for label, direction in self._functional:
                index = (
                    view.backward_index(label)
                    if direction == "in"
                    else view.forward_index(label)
                )
                for members in index.values():
                    if len(members) > 1:
                        self._star(members)
            for egd in self._simple:
                for left, right in self.matcher.pair_matches(
                    egd.body, egd.left, egd.right
                ):
                    self._consider(left, right)

    def _repr(self, node: Node) -> str:
        cached = self._repr_cache.get(node)
        if cached is None:
            cached = self._repr_cache[node] = repr(node)
        return cached

    def _key(self, left: Node, right: Node) -> PairKey:
        """The deterministic order key the chase uses to pick violations."""
        left_repr, right_repr = self._repr(left), self._repr(right)
        if left_repr <= right_repr:
            return (left_repr, right_repr)
        return (right_repr, left_repr)

    def _consider(self, left: Node, right: Node) -> None:
        if left != right:
            identity = frozenset((left, right))
            if identity not in self._pairs:
                key = self._key(left, right)
                # Store the pair in order-key orientation: violations now
                # arrive as unordered sets (the matcher's pair
                # projections), so first-arrival orientation would vary
                # with hash seeding — and the orientation is observable
                # through the chase's failure witness.
                if self._repr(left) > self._repr(right):
                    left, right = right, left
                self._pairs[identity] = ((left, right), key)
                self._by_node.setdefault(left, set()).add(identity)
                self._by_node.setdefault(right, set()).add(identity)
                heapq.heappush(self._heap, (key, next(self._seq), identity))

    def _star(self, members) -> None:
        """Maintain a key group as a star anchored at its least member.

        The anchor is the member the merge rules keep (every pairwise
        merge keeps the lesser node), so ``(anchor, m)`` pairs stay valid
        across the whole collapse; the pop *order* matches the all-pairs
        encoding too, because every pair not containing the least member
        sorts after every pair that does.
        """
        anchor = min(members, key=self._repr)
        for member in members:
            if member != anchor:
                self._consider(anchor, member)

    def _restar_touched(self, edges) -> None:
        """Re-star the key groups of functional egds touched by ``edges``."""
        for label, direction in self._functional:
            keys = set()
            for edge in edges:
                if edge.label == label:
                    keys.add(edge.target if direction == "in" else edge.source)
            neighbors = (
                self.view.predecessors if direction == "in" else self.view.successors
            )
            for key in keys:
                members = neighbors(key, label)
                if len(members) > 1:
                    self._star(members)

    def _discard(self, identity: frozenset) -> None:
        entry = self._pairs.pop(identity, None)
        if entry is not None:
            for node in entry[0]:
                identities = self._by_node.get(node)
                if identities is not None:
                    identities.discard(identity)

    def first_violation(self) -> Pair | None:
        """Return the violation with the least order key, or ``None``.

        Maintained violations of simple-bodied egds are read from the
        queue; composite-bodied egds are re-matched on the current view
        (their bodies are opaque to delta reasoning).
        """
        while self._heap and self._heap[0][2] not in self._pairs:
            heapq.heappop(self._heap)  # lazily drop entries a merge resolved
        best_key: PairKey | None = None
        best: Pair | None = None
        if self._heap:
            best_key = self._heap[0][0]
            best = self._pairs[self._heap[0][2]][0]
        for egd in self._fallback:
            for left, right in egd.violations(self.view):
                key = self._key(left, right)
                if best_key is None or key < best_key:
                    best_key, best = key, (left, right)
        return best

    def rescan_since(self, version: int) -> None:
        """Add violations routed through edges inserted after ``version``.

        The semi-naive complement of the constructor's full scan: if the
        view was violation-free at ``version`` (an earlier fixpoint), any
        new violation of a simple-bodied egd must use at least one edge the
        journal recorded after that point, so only those seeded joins run.
        The incremental chase calls this after applying an update batch's
        edge insertions to an already-converged merged graph.

        >>> from repro.mappings.parser import parse_egd
        >>> g = GraphDatabase(edges=[("a", "h", "hx")])
        >>> egd = parse_egd("(x1, h, x3), (x2, h, x3) -> x1 = x2")
        >>> queue = EgdViolationQueue([egd], g)
        >>> v = g.version
        >>> g.add_edge("b", "h", "hx")
        >>> queue.rescan_since(v)
        >>> sorted(queue.first_violation())
        ['a', 'b']
        """
        inserted = self.view.edges_since(version)
        self._restar_touched(inserted)
        for egd in self._simple:
            for left, right in self.matcher.pair_matches_seeded(
                egd.body, egd.left, egd.right, inserted
            ):
                self._consider(left, right)

    def merge(self, old: Node, new: Node) -> None:
        """Record the merge ``old ↦ new``: rename the view and the queue.

        Renames the view's node in place, rewrites the maintained pairs
        (dropping those the merge resolved), and re-matches each simple egd
        through the rewritten edges to pick up any violations the merge
        *created* (cascading merges).  Only the edges the rename actually
        rewrote are re-matched — a homomorphism built purely from edges
        that predate the rename existed before it, so its violation is
        already maintained; ``new``'s untouched incident edges cannot
        seed anything new.
        """
        rewritten = self.view.rename_node(old, new)
        for identity in list(self._by_node.get(old, ())):
            (left, right), _ = self._pairs[identity]
            self._discard(identity)
            left = new if left == old else left
            right = new if right == old else right
            self._consider(left, right)
        self._by_node.pop(old, None)
        # Functional groups survive member renames through the pair rewrite
        # above (the star stays connected because merges keep the lesser
        # node).  Only a rename of a *key* needs work: the old key's group
        # unions into ``new``'s, so the united group is re-starred.  Member
        # renames deliberately do no group scan — that is what keeps a
        # k-member collapse at O(k) total pairs instead of O(k²).
        for label, direction in self._functional:
            neighbors = (
                self.view.predecessors if direction == "in" else self.view.successors
            )
            for edge in rewritten:
                if edge.label != label:
                    continue
                key = edge.target if direction == "in" else edge.source
                if key != new:
                    continue
                members = neighbors(key, label)
                if len(members) > 1:
                    self._star(members)
                break
        for egd in self._simple:
            for left, right in self.matcher.pair_matches_seeded(
                egd.body, egd.left, egd.right, rewritten
            ):
                self._consider(left, right)


def run_egd_fixpoint(queue, stats, apply=None) -> tuple[bool, tuple[Node, Node] | None]:
    """Drive ``queue`` to its fixpoint with the paper's merge rules.

    The one egd-step loop shared by the pattern chase (Section 5) and the
    graph-level relational chase (Section 3.1): pick the least violation;
    two constants fail the chase, a null merges into a constant, and of
    two nulls the later-sorted one merges into the earlier.  ``apply`` is
    invoked with ``(old, new)`` before the queue's own view is renamed
    (the pattern chase substitutes on the pattern there); ``stats`` gets
    the rounds/egd_firings/null_merges accounting.

    Returns ``(failed, failure_witness)``.

    >>> from repro.chase.result import ChaseStats
    >>> from repro.mappings.parser import parse_egd
    >>> g = GraphDatabase(edges=[("a", "h", "hx"), ("b", "h", "hx")])
    >>> egd = parse_egd("(x1, h, x3), (x2, h, x3) -> x1 = x2")
    >>> run_egd_fixpoint(EgdViolationQueue([egd], g), ChaseStats())
    (True, ('a', 'b'))
    """
    while True:
        stats.rounds += 1
        violation = queue.first_violation()
        if violation is None:
            return False, None
        left, right = violation
        stats.egd_firings += 1
        left_null, right_null = is_null(left), is_null(right)
        if not left_null and not right_null:
            # (i) two constants: the chase fails — no solution exists.
            return True, (left, right)
        if left_null and not right_null:
            old, new = left, right  # (ii) null := constant
        elif right_null and not left_null:
            old, new = right, left  # (ii) symmetric
        else:
            # (iii) two nulls: replace the later-labeled one, deterministically.
            new, old = sorted((left, right))
        if apply is not None:
            apply(old, new)
        queue.merge(old, new)
        stats.null_merges += 1
