"""The indexed delta-chase engine and the compiled query engine.

This package holds the two shared evaluation cores:

* :class:`TriggerMatcher` — indexed homomorphism enumeration over a
  :class:`~repro.graph.database.GraphDatabase`, with semi-naive *delta*
  enumeration (only triggers through recently added edges) and per-node
  enumeration (only triggers through a merged node);
* :class:`EgdViolationQueue` — an egd violation set maintained
  incrementally across merge steps instead of recomputed per round;
* :func:`is_simple_query` — the eligibility test for the fast paths
  (composite NREs fall back to the CNRE evaluator, so results never
  depend on which path ran);
* :class:`QueryEngine` / :class:`ReferenceEngine` (:mod:`repro.engine.query`)
  — compiled, memoising NRE evaluation with single-pair/single-source modes
  and a cross-candidate cache keyed on graph fingerprints, vs the
  set-algebraic oracle behind the same interface;
* :class:`EvalStats` — the query-side observability counters (the
  ``ChaseStats`` analogue).

A chase request flows as::

    dependencies ──▶ TriggerMatcher.matches          (initial trigger set)
    round N adds Δ ─▶ TriggerMatcher.delta_matches   (semi-naive round N+1)
    merge old↦new ──▶ EgdViolationQueue.merge        (rename + re-match at new)

>>> from repro.engine import TriggerMatcher, is_simple_query
>>> from repro.graph.database import GraphDatabase
>>> from repro.graph.cnre import CNREAtom, CNREQuery
>>> from repro.graph.nre import Label
>>> from repro.relational.query import Variable
>>> g = GraphDatabase(edges=[("u", "a", "v")])
>>> x, y = Variable("x"), Variable("y")
>>> q = CNREQuery([CNREAtom(x, Label("a"), y)])
>>> [(h[x], h[y]) for h in TriggerMatcher(g).matches(q)]
[('u', 'v')]
"""

from repro.engine.delta import EgdViolationQueue
from repro.engine.matcher import TriggerMatcher, is_simple_query
from repro.engine.query import (
    EvalStats,
    QueryEngine,
    ReferenceEngine,
    default_engine,
)

__all__ = [
    "TriggerMatcher",
    "EgdViolationQueue",
    "is_simple_query",
    "QueryEngine",
    "ReferenceEngine",
    "EvalStats",
    "default_engine",
]
