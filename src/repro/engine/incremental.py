"""Incremental chase maintenance under live insert/delete streams.

The batch pipeline chases every instance from scratch: any mutation bumps
the instance fingerprint and discards all warm state.  This module keeps a
chased solution *live* instead.  :class:`IncrementalChase` holds three
layers of state for one data-exchange setting and one mutable source
instance:

* the **base layer** — the set of fired s-t tgd triggers, indexed by the
  facts they join over (for DRed-style retraction) and by the target edges
  they emit (exact provenance: a target edge exists iff some live trigger
  supports it);
* the **merged layer** — the egd fixpoint of the base graph, maintained as
  a quotient: a union-find style ``rep``/class map plus an image-support
  index mapping each merged edge to the base edges it represents.  Inserts
  are handled semi-naively (:meth:`~repro.engine.delta.EgdViolationQueue.rescan_since`
  over the edge journal); deletions replay only when a removed base edge
  supported a past merge (tracked per-merge at fire time);
* the **answer layer** — certain answers per query, patched monotonically
  on insert-only batches by re-evaluating only the sources in the
  undirected cone around changed nodes.

The contract, enforced by ``tests/test_engine/test_incremental.py``, is
*byte-identity with the from-scratch oracle*: after any update stream,
:meth:`IncrementalChase.chase_result` materialises the same graph (same
oracle null names, same failure witness) as
:func:`~repro.chase.relational_chase.chase_relational` on the current
instance, and :meth:`IncrementalChase.certain_answers` returns the same
answer sets.  The supported fragment is the Section 3.1 relational chase
fragment (single-symbol tgd heads) with egds whose bodies are unions of
words — exactly the shapes the paper's figures and generators use.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Hashable, Iterable, Iterator, Mapping, Sequence

from repro.chase.relational_chase import _check_fragment, _egd_fixpoint_on_graph
from repro.chase.result import ChaseResult, ChaseStats
from repro.engine.delta import (
    EgdViolationQueue,
    decompose_egd,
    run_egd_fixpoint,
)
from repro.engine.matcher import _edge_view
from repro.engine.query import default_engine
from repro.errors import NotSupportedError, SchemaError
from repro.graph.cnre import CNREAtom, CNREQuery
from repro.graph.database import Edge, GraphDatabase
from repro.graph.nre import NRE, Label
from repro.mappings.egd import TargetEgd
from repro.telemetry import fold_stats, span
from repro.patterns.pattern import Null, is_null
from repro.relational.evaluate import cq_homomorphisms
from repro.relational.instance import RelationalInstance
from repro.relational.query import Variable, is_variable

if TYPE_CHECKING:  # annotation-only imports; avoids import cycles
    from repro.core.certain import CertainAnswers
    from repro.core.setting import DataExchangeSetting
    from repro.mappings.stt import SourceToTargetTgd

Node = Hashable
Fact = tuple[str, tuple]
Update = tuple[str, str, tuple]

_UNSET = object()


@dataclass
class UpdateStats:
    """Cumulative counters for one :class:`IncrementalChase`'s lifetime."""

    batches: int = 0
    """How many update batches were applied."""

    inserts_applied: int = 0
    """Insert operations that actually added a fact."""

    deletes_applied: int = 0
    """Delete operations that actually removed a fact."""

    noops: int = 0
    """Operations that found the fact already in its target state."""

    triggers_added: int = 0
    """s-t tgd triggers fired incrementally (seeded delta joins)."""

    triggers_retracted: int = 0
    """s-t tgd triggers retracted because a supporting fact was deleted."""

    egd_merges: int = 0
    """Node merges performed by the incremental egd fixpoint."""

    fast_deletes: int = 0
    """Base-edge deletions absorbed without rebuilding the merged layer."""

    merged_rebuilds: int = 0
    """Full rebuilds of the merged layer (bootstrap included)."""

    answer_patches: int = 0
    """Monotone cone-restricted patches of the certain-answer cache."""

    answer_invalidations: int = 0
    """Wholesale certain-answer cache drops (deletions, failure flips)."""

    def summary(self) -> dict[str, int]:
        """Return the counters as a plain dict for reporting.

        >>> UpdateStats(batches=2).summary()["batches"]
        2
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def as_dict(self) -> dict[str, int]:
        """Alias of :meth:`summary` — the uniform stats-adapter spelling.

        >>> UpdateStats(batches=2).as_dict()["batches"]
        2
        """
        return self.summary()


# --------------------------------------------------------------------- #
# Egd decomposition: union-of-words bodies -> simple chain egds
# --------------------------------------------------------------------- #


# --------------------------------------------------------------------- #
# Trigger records
# --------------------------------------------------------------------- #


class _Trigger:
    """One fired s-t tgd trigger with its exact provenance.

    ``key`` reproduces the oracle's dedup key (reprs of all body-variable
    values); ``sort_key`` its firing order; ``facts`` the source facts the
    body joined over (retraction index); ``edges`` the target edges the
    head emitted; ``nulls`` the internally named fresh nulls, one per
    existential, deterministic in ``key`` so delete-then-reinsert
    reproduces the same base graph bit for bit.
    """

    __slots__ = ("tgd_index", "key", "sort_key", "facts", "edges", "nulls")

    def __init__(self, tgd_index, key, sort_key, facts, edges, nulls):
        self.tgd_index = tgd_index
        self.key = key
        self.sort_key = sort_key
        self.facts = facts
        self.edges = edges
        self.nulls = nulls


def _make_trigger(
    tgd_index: int, tgd: "SourceToTargetTgd", hom: Mapping[Variable, Node]
) -> _Trigger:
    """Build the :class:`_Trigger` record for one body homomorphism."""
    dedupe = tuple(repr(hom[v]) for v in tgd.body.variables())
    sort_key = tuple(sorted((v.name, repr(hom[v])) for v in hom))
    assignment: dict[Variable, Node] = {v: hom[v] for v in tgd.frontier}
    nulls = []
    for position, existential in enumerate(tgd.existentials):
        null = Null(f"inc:{tgd_index}:{position}:" + "\x1f".join(dedupe))
        assignment[existential] = null
        nulls.append(null)
    facts = tuple(
        (
            atom.relation,
            tuple(hom[t] if is_variable(t) else t for t in atom.terms),
        )
        for atom in tgd.body.atoms
    )
    edges = tuple(
        Edge(
            assignment[atom.subject] if is_variable(atom.subject) else atom.subject,
            atom.nre.name,  # type: ignore[union-attr]  # fragment-checked Label
            assignment[atom.object] if is_variable(atom.object) else atom.object,
        )
        for atom in tgd.head.atoms
    )
    return _Trigger(tgd_index, (tgd_index, dedupe), sort_key, facts, edges, nulls)


# --------------------------------------------------------------------- #
# The incremental chase
# --------------------------------------------------------------------- #


class IncrementalChase:
    """A live chased solution maintained under an insert/delete stream.

    Construct once per (setting, instance); feed update batches through
    :meth:`apply_updates`; read :meth:`certain_answers` between batches.
    Answers are byte-identical to re-chasing the current instance from
    scratch, but an N-operation batch costs O(affected triggers + affected
    cone), not O(instance).

    >>> from repro.scenarios.figures import example31_setting
    >>> from repro.scenarios.flights import flights_instance
    >>> live = IncrementalChase(example31_setting(), flights_instance())
    >>> summary = live.apply_updates([("insert", "Hotel", ("02", "hz"))])
    >>> (summary["inserts"], summary["failed"])
    (1, False)
    >>> from repro.graph.parser import parse_nre
    >>> sorted(live.certain_answers(parse_nre("f . h")).answers)
    [('c1', 'hx'), ('c1', 'hy'), ('c3', 'hx'), ('c3', 'hz')]
    >>> _ = live.apply_updates([("delete", "Hotel", ("02", "hz"))])
    >>> sorted(live.certain_answers(parse_nre("f . h")).answers)
    [('c1', 'hx'), ('c1', 'hy'), ('c3', 'hx')]
    """

    def __init__(
        self,
        setting: "DataExchangeSetting",
        instance: RelationalInstance | None = None,
        engine=None,
    ):
        fragment = setting.fragment()
        _check_fragment(setting.st_tgds)
        if fragment.has_sameas or fragment.has_general_tgds:
            raise NotSupportedError(
                "incremental maintenance covers the relational-chase fragment "
                "(s-t tgds + egds); sameAs and general target tgds are not supported"
            )
        self.setting = setting
        self._tgds = list(setting.st_tgds)
        self._egds = list(setting.egds())
        self._chains: list[TargetEgd] = []
        for index, egd in enumerate(self._egds):
            self._chains.extend(decompose_egd(egd, index))
        self.instance = (
            instance.copy()
            if instance is not None
            else RelationalInstance(setting.source_schema)
        )
        self._engine = engine
        self.stats = UpdateStats()
        # --- base layer: triggers and their provenance indexes ---
        self._triggers: dict[tuple, _Trigger] = {}
        self._fact_triggers: dict[Fact, set[tuple]] = {}
        self._edge_support: dict[Edge, set[tuple]] = {}
        self._node_degree: dict[Node, int] = {}
        # --- merged layer: quotient of the base graph by the egd fixpoint ---
        self._merged = GraphDatabase(alphabet=set(setting.alphabet))
        self._rep: dict[Node, Node] = {}
        self._classes: dict[Node, set[Node]] = {}
        self._image_support: dict[Edge, set[Edge]] = {}
        self._merge_support: set[Edge] = set()
        self._provenance_exact = True
        self._queue: EgdViolationQueue | None = None
        self._failed = False
        self._witness_cache: object = _UNSET
        self._touched: set[Node] = set()
        # --- answer layer ---
        self._answers: dict[NRE, frozenset] = {}
        self._dirty: set[Node] = set()
        self._bootstrap()

    # ------------------------------------------------------------------ #
    # Public surface
    # ------------------------------------------------------------------ #

    @property
    def failed(self) -> bool:
        """Whether the chase of the current instance fails (no solution)."""
        return self._failed

    def apply_updates(self, updates: Iterable[Update | Mapping]) -> dict:
        """Apply one batch of updates and repair all three state layers.

        ``updates`` is an iterable of ``(op, relation, values)`` tuples or
        ``{"op": ..., "relation": ..., "tuple": ...}`` mappings, with op
        ``"insert"`` or ``"delete"``, applied in order.  The whole batch is
        validated (ops, relations, arities) before any state changes, so a
        malformed batch raises without corrupting the live solution.
        Returns a summary dict with the batch's ``inserts``/``deletes``/
        ``noops`` counts and the resulting ``failed`` flag.
        """
        with span("update.apply"):
            counts = self._apply_batch(updates)
        fold_stats("update", self.stats)
        return counts

    def _apply_batch(self, updates: Iterable[Update | Mapping]) -> dict:
        batch = [self._normalize(update) for update in updates]
        for _, relation, values in batch:
            symbol = self.instance.schema[relation]
            if len(values) != symbol.arity:
                raise SchemaError(
                    f"tuple {values!r} has arity {len(values)}, "
                    f"but {symbol} expects {symbol.arity}"
                )
        self._witness_cache = _UNSET
        failed_before = self._failed
        counts = {"inserts": 0, "deletes": 0, "noops": 0}
        before: dict[Fact, bool] = {}
        for op, relation, values in batch:
            fact = (relation, values)
            if fact not in before:
                before[fact] = self.instance.contains(relation, values)
            if op == "insert":
                if self.instance.contains(relation, values):
                    counts["noops"] += 1
                else:
                    self.instance.add(relation, values)
                    counts["inserts"] += 1
            else:
                if self.instance.remove(relation, values):
                    counts["deletes"] += 1
                else:
                    counts["noops"] += 1
        self.stats.batches += 1
        self.stats.inserts_applied += counts["inserts"]
        self.stats.deletes_applied += counts["deletes"]
        self.stats.noops += counts["noops"]
        added_facts = {
            fact
            for fact, present in before.items()
            if not present and self.instance.contains(*fact)
        }
        removed_facts = {
            fact
            for fact, present in before.items()
            if present and not self.instance.contains(*fact)
        }
        net_removed, net_added = self._update_base(added_facts, removed_facts)
        rebuilt = self._update_merged(net_removed, net_added)
        failed_changed = self._failed != failed_before
        if removed_facts or rebuilt or failed_changed:
            if self._answers:
                self.stats.answer_invalidations += 1
            self._answers.clear()
            self._dirty.clear()
        else:
            self._dirty |= self._touched
        self._touched = set()
        counts["failed"] = self._failed
        return counts

    def certain_answers(self, query: NRE, engine=None) -> "CertainAnswers":
        """Return the certain answers of ``query`` on the live solution.

        The merged graph is a universal solution of the current instance
        (when one exists), so certain answers are its query answers
        restricted to the source active domain — byte-identical to the
        batch pipeline's result on the same instance.  Answers are cached
        per query and patched incrementally across insert-only batches.
        """
        from repro.core.certain import CertainAnswers

        if self._failed:
            return CertainAnswers(
                answers=frozenset(),
                no_solution=True,
                solutions_examined=0,
                method="incremental(no-solution)",
            )
        engine = engine if engine is not None else self._engine
        if engine is None:
            engine = default_engine()
        self._flush_dirty(engine)
        answers = self._answers.get(query)
        if answers is None:
            domain = self.instance.active_domain()
            answers = engine.answers_over(self._merged, query, domain)
            self._answers[query] = answers
        return CertainAnswers(
            answers=answers,
            no_solution=False,
            solutions_examined=1,
            method="incremental-universal",
        )

    def failure_witness(self) -> "tuple[Node, Node] | None":
        """Return the oracle's failure witness, or ``None`` while solvable."""
        if not self._failed:
            return None
        if self._witness_cache is _UNSET:
            self._witness_cache = self.chase_result().failure_witness
        return self._witness_cache  # type: ignore[return-value]

    def chase_result(self) -> ChaseResult:
        """Materialise the live solution as a from-scratch chase result.

        Success: the quotient graph with every internal null renamed to the
        name the oracle (:func:`~repro.chase.relational_chase.chase_relational`)
        would have invented — node sets, edge sets, and null labels are
        byte-identical.  Failure: the oracle-named base graph is re-run
        through the oracle's own egd fixpoint, reproducing its failure
        witness exactly.
        """
        names = self._oracle_names()
        stats = ChaseStats(st_applications=len(self._triggers))
        graph = GraphDatabase(alphabet=set(self.setting.alphabet))
        if self._failed:
            for edge in sorted(self._edge_support, key=repr):
                graph.add_edge(
                    names.get(edge.source, edge.source),
                    edge.label,
                    names.get(edge.target, edge.target),
                )
            return _egd_fixpoint_on_graph(graph, list(self._egds), stats)
        mapping: dict[Node, Node] = {}
        for members in self._classes.values():
            named = [names.get(node, node) for node in members]
            constants = [node for node in named if not is_null(node)]
            canonical = constants[0] if constants else min(named)
            for node in members:
                mapping[node] = canonical
        for edge in sorted(self._edge_support, key=repr):
            graph.add_edge(mapping[edge.source], edge.label, mapping[edge.target])
        return ChaseResult(graph=graph, failed=False, failure_witness=None, stats=stats)

    # ------------------------------------------------------------------ #
    # Base layer
    # ------------------------------------------------------------------ #

    def _normalize(self, update) -> Update:
        """Coerce one update to ``(op, relation_name, values_tuple)``."""
        if isinstance(update, Mapping):
            op = update.get("op")
            relation = update.get("relation")
            values = update.get("tuple", update.get("values"))
        else:
            op, relation, values = update
        if op not in ("insert", "delete"):
            raise ValueError(f"unknown update op: {op!r}")
        if not isinstance(relation, str):
            relation = relation.name
        if values is None or isinstance(values, str):
            raise ValueError(f"update tuple must be a sequence, got {values!r}")
        return op, relation, tuple(values)

    def _update_base(
        self, added_facts: set[Fact], removed_facts: set[Fact]
    ) -> tuple[set[Edge], set[Edge]]:
        """Retract and fire triggers; return net (removed, added) edges."""
        removed_edges: list[Edge] = []
        dying: set[tuple] = set()
        for fact in removed_facts:
            dying |= self._fact_triggers.get(fact, set())
        for key in sorted(dying):
            removed_edges += self._remove_trigger(self._triggers.pop(key))
        added_edges: list[Edge] = []
        for fact in sorted(added_facts, key=repr):
            for trigger in self._seeded_triggers(fact):
                if trigger.key not in self._triggers:
                    added_edges += self._add_trigger(trigger)
        removed_set, added_set = set(removed_edges), set(added_edges)
        return removed_set - added_set, added_set - removed_set

    def _seeded_triggers(self, fact: Fact) -> Iterator[_Trigger]:
        """Enumerate triggers whose body can use the freshly added ``fact``."""
        relation, values = fact
        for tgd_index, tgd in enumerate(self._tgds):
            for atom in tgd.body.atoms:
                if atom.relation != relation or len(atom.terms) != len(values):
                    continue
                seed: dict[Variable, Node] = {}
                consistent = True
                for term, value in zip(atom.terms, values):
                    if is_variable(term):
                        if term in seed and seed[term] != value:
                            consistent = False
                            break
                        seed[term] = value
                    elif term != value:
                        consistent = False
                        break
                if not consistent:
                    continue
                for hom in cq_homomorphisms(tgd.body, self.instance, seed=seed):
                    yield _make_trigger(tgd_index, tgd, hom)

    def _add_trigger(self, trigger: _Trigger) -> list[Edge]:
        """Register ``trigger``; return the base edges it newly created."""
        self._triggers[trigger.key] = trigger
        self.stats.triggers_added += 1
        for fact in set(trigger.facts):
            self._fact_triggers.setdefault(fact, set()).add(trigger.key)
        born: list[Edge] = []
        for edge in set(trigger.edges):
            support = self._edge_support.get(edge)
            if support is None:
                support = self._edge_support[edge] = set()
                born.append(edge)
                for node in {edge.source, edge.target}:
                    self._node_degree[node] = self._node_degree.get(node, 0) + 1
            support.add(trigger.key)
        return born

    def _remove_trigger(self, trigger: _Trigger) -> list[Edge]:
        """Unregister ``trigger``; return the base edges that died with it."""
        self.stats.triggers_retracted += 1
        for fact in set(trigger.facts):
            keys = self._fact_triggers.get(fact)
            if keys is not None:
                keys.discard(trigger.key)
                if not keys:
                    del self._fact_triggers[fact]
        died: list[Edge] = []
        for edge in set(trigger.edges):
            support = self._edge_support[edge]
            support.discard(trigger.key)
            if not support:
                del self._edge_support[edge]
                died.append(edge)
                for node in {edge.source, edge.target}:
                    remaining = self._node_degree[node] - 1
                    if remaining:
                        self._node_degree[node] = remaining
                    else:
                        del self._node_degree[node]
        return died

    # ------------------------------------------------------------------ #
    # Merged layer
    # ------------------------------------------------------------------ #

    def _bootstrap(self) -> None:
        """Fire every trigger of the initial instance, then build the quotient."""
        for tgd_index, tgd in enumerate(self._tgds):
            for hom in cq_homomorphisms(tgd.body, self.instance):
                trigger = _make_trigger(tgd_index, tgd, hom)
                if trigger.key not in self._triggers:
                    self._add_trigger(trigger)
        self._rebuild_merged()
        self._touched = set()

    def _update_merged(self, net_removed: set[Edge], net_added: set[Edge]) -> bool:
        """Repair the quotient for a batch's net edge delta; return rebuilt."""
        self._touched = set()
        if self._failed:
            if net_removed:
                self._rebuild_merged()
                return True
            # Failure is insert-monotone: adding facts can never turn a
            # failing chase into a succeeding one, so the (stale) merged
            # layer stays parked until a deletion forces a rebuild.
            return False
        if net_removed and (
            not self._provenance_exact or (self._merge_support & net_removed)
        ):
            self._rebuild_merged()
            return True
        self._fast_update_merged(net_removed, net_added)
        return False

    def _rebuild_merged(self) -> None:
        """Rebuild the merged layer from the base edges, from scratch."""
        self.stats.merged_rebuilds += 1
        self._failed = False
        self._provenance_exact = True
        self._merge_support = set()
        self._rep = {}
        self._classes = {}
        self._image_support = {}
        self._touched = set()
        merged = GraphDatabase(alphabet=set(self.setting.alphabet))
        for edge in sorted(self._edge_support, key=repr):
            for node in (edge.source, edge.target):
                if node not in self._rep:
                    self._rep[node] = node
                    self._classes[node] = {node}
            self._image_support[edge] = {edge}
            merged.add_edge(edge.source, edge.label, edge.target)
        self._merged = merged
        self._queue = EgdViolationQueue(self._chains, merged)
        failed, _ = run_egd_fixpoint(self._queue, ChaseStats(), apply=self._on_merge)
        self._failed = failed

    def _fast_update_merged(self, net_removed: set[Edge], net_added: set[Edge]) -> None:
        """Apply a provenance-clean edge delta directly to the quotient."""
        merged = self._merged
        for edge in sorted(net_removed, key=repr):
            image = Edge(self._rep[edge.source], edge.label, self._rep[edge.target])
            support = self._image_support.get(image)
            if support is not None:
                support.discard(edge)
                if not support:
                    del self._image_support[image]
                    merged.remove_edge(image.source, image.label, image.target)
            self.stats.fast_deletes += 1
        self._drop_dead_nodes(net_removed)
        if not net_added:
            return
        version = merged.version
        for edge in sorted(net_added, key=repr):
            for node in (edge.source, edge.target):
                if node not in self._rep:
                    self._rep[node] = node
                    self._classes[node] = {node}
            image = Edge(self._rep[edge.source], edge.label, self._rep[edge.target])
            support = self._image_support.get(image)
            if support is None:
                support = self._image_support[image] = set()
                merged.add_edge(image.source, image.label, image.target)
            support.add(edge)
            self._touched.update((image.source, image.target))
        assert self._queue is not None
        self._queue.rescan_since(version)
        failed, _ = run_egd_fixpoint(self._queue, ChaseStats(), apply=self._on_merge)
        if failed:
            self._failed = True

    def _drop_dead_nodes(self, net_removed: set[Edge]) -> None:
        """Evict base nodes that lost their last edge from the quotient."""
        dead = sorted(
            {
                node
                for edge in net_removed
                for node in (edge.source, edge.target)
                if node not in self._node_degree
            },
            key=repr,
        )
        dead_reps: list[Node] = []
        for node in dead:
            rep = self._rep.get(node)
            if rep is None:
                continue
            if rep != node:
                del self._rep[node]
                self._classes[rep].discard(node)
            else:
                dead_reps.append(node)
        for node in dead_reps:
            members = self._classes[node] - {node}
            del self._rep[node]
            del self._classes[node]
            if members:
                constants = [m for m in members if not is_null(m)]
                new_rep = (
                    min(constants, key=repr) if constants else min(members, key=repr)
                )
                self._classes[new_rep] = members
                for member in members:
                    self._rep[member] = new_rep
                self._remap_images(node, new_rep)
                self._merged.rename_node(node, new_rep)
            else:
                self._merged.discard_node(node)

    def _on_merge(self, old: Node, new: Node) -> None:
        """The egd fixpoint's merge callback: record and apply ``old ↦ new``."""
        self.stats.egd_merges += 1
        if self._provenance_exact:
            self._record_merge_provenance(old, new)
        self._remap_images(old, new)
        old_members = self._classes.pop(old)
        self._classes[new] |= old_members
        for member in old_members:
            self._rep[member] = new
        self._touched.discard(old)
        self._touched.add(new)

    def _remap_images(self, old: Node, new: Node) -> None:
        """Re-key image supports for a merged-graph rename ``old ↦ new``.

        Must run *before* the graph itself is renamed (the support index is
        keyed by the pre-rename edges read from ``incident_edges``).
        """
        for image in self._merged.incident_edges(old):
            support = self._image_support.pop(image, None)
            if support is None:
                continue
            rewritten = Edge(
                new if image.source == old else image.source,
                image.label,
                new if image.target == old else image.target,
            )
            self._image_support.setdefault(rewritten, set()).update(support)

    def _record_merge_provenance(self, old: Node, new: Node) -> None:
        """Record the base edges supporting the merge that fires ``old ↦ new``.

        The violation queue guarantees a witness homomorphism exists at
        fire time; it is recomputed here (not at discovery time) because
        earlier merges may have renamed the nodes a stored witness used.
        A deletion later hitting any recorded support edge invalidates the
        fast-delete path and forces a rebuild.
        """
        for egd in self._chains:
            if egd.left == egd.right:
                continue
            for seed in ({egd.left: old, egd.right: new}, {egd.left: new, egd.right: old}):
                for hom in self._queue.matcher.matches(egd.body, seed=seed):
                    support: set[Edge] = set()
                    complete = True
                    for atom in egd.body.atoms:
                        source_term, label, target_term = _edge_view(atom)
                        image = Edge(
                            hom[source_term] if is_variable(source_term) else source_term,
                            label,
                            hom[target_term] if is_variable(target_term) else target_term,
                        )
                        base = self._image_support.get(image)
                        if base is None:
                            complete = False
                            break
                        support |= base
                    if complete:
                        self._merge_support |= support
                        return
        self._provenance_exact = False

    # ------------------------------------------------------------------ #
    # Answer layer
    # ------------------------------------------------------------------ #

    def _flush_dirty(self, engine) -> None:
        """Patch cached answers for the cone around nodes changed by inserts."""
        if not self._dirty:
            return
        if not self._answers:
            self._dirty.clear()
            return
        self.stats.answer_patches += 1
        affected = self._affected_cone()
        domain = self.instance.active_domain()
        sources = sorted((node for node in affected if node in domain), key=repr)
        for query, cached in list(self._answers.items()):
            extra: set[tuple[Node, Node]] = set()
            for source in sources:
                for target in engine.reachable(self._merged, query, source):
                    if target in domain:
                        extra.add((source, target))
            if extra:
                self._answers[query] = frozenset(cached | extra)
        self._dirty.clear()

    def _affected_cone(self) -> set[Node]:
        """Undirected reachability closure of the dirty nodes in the quotient.

        Any answer pair created by an insert-only batch starts at a source
        whose (undirected) component contains a changed node, so patching
        exactly these sources is complete.
        """
        seen: set[Node] = set()
        stack = [node for node in self._dirty if node in self._merged]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            for edge in self._merged.incident_edges(node):
                for neighbour in (edge.source, edge.target):
                    if neighbour not in seen:
                        stack.append(neighbour)
        return seen

    # ------------------------------------------------------------------ #
    # Oracle-identical materialisation
    # ------------------------------------------------------------------ #

    def _oracle_names(self) -> dict[Null, Null]:
        """Map internal nulls to the names the from-scratch oracle invents.

        The oracle numbers nulls with one global counter, firing tgds in
        declaration order and each tgd's triggers in sorted-match order —
        both reconstructable from the trigger records alone.
        """
        by_tgd: dict[int, list[_Trigger]] = {}
        for trigger in self._triggers.values():
            by_tgd.setdefault(trigger.tgd_index, []).append(trigger)
        names: dict[Null, Null] = {}
        counter = 0
        for tgd_index in range(len(self._tgds)):
            for trigger in sorted(
                by_tgd.get(tgd_index, ()), key=lambda t: t.sort_key
            ):
                for null in trigger.nulls:
                    counter += 1
                    names[null] = Null(f"N{counter}")
        return names
