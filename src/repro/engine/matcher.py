"""Indexed trigger matching over graph databases.

Every chase variant repeats one operation: find the homomorphisms of a
dependency body into the current target graph (the *triggers*).  The seed
implementation re-evaluated each body NRE into an explicit pair set and
scanned it per backtracking step — correct, but it re-scans the whole
graph on every fixpoint round.  :class:`TriggerMatcher` replaces those
nested-loop scans with one shared core that

* answers bound positions from the graph's hash indexes
  (``successors`` / ``predecessors`` / ``has_edge``) instead of filtering a
  materialised pair set — *index hits*, counted into
  :class:`~repro.chase.result.ChaseStats`;
* supports **semi-naive (delta) iteration**: :meth:`TriggerMatcher.delta_matches`
  enumerates only the homomorphisms that use at least one edge added since a
  recorded graph version, and :meth:`TriggerMatcher.matches_touching` only
  those through a given node — which is exactly the part of the trigger
  space a chase round or a merge step can have changed.

The fast paths apply to *simple* queries — every atom a bare forward or
backward label, which covers all dependency bodies of the paper's figures
and benchmarks.  Composite NREs (stars, unions, nesting) fall back to the
CNRE evaluator :func:`repro.graph.cnre.cnre_homomorphisms`, whose per-NRE
relations come from a query engine (the shared compiled
:class:`~repro.engine.query.QueryEngine` unless the matcher was handed a
specific one), so the matcher is always sound and complete, never just fast.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Iterable, Iterator, Mapping, Sequence

from repro.graph.cnre import CNREAtom, CNREQuery, cnre_homomorphisms
from repro.graph.database import Edge, GraphDatabase
from repro.graph.nre import Backward, Label
from repro.relational.query import Variable, is_variable

if TYPE_CHECKING:  # import only for annotations: chase.result imports graph
    from repro.chase.result import ChaseStats

Node = Hashable
Assignment = dict[Variable, Node]

_UNSET = object()


def is_simple_query(query: CNREQuery) -> bool:
    """Return whether every atom of ``query`` is a bare (backward) label.

    Simple queries are eligible for the indexed and delta fast paths; all
    others take the reference CNRE evaluator.

    >>> from repro.graph.parser import parse_nre
    >>> x, y = Variable("x"), Variable("y")
    >>> is_simple_query(CNREQuery([CNREAtom(x, parse_nre("h"), y)]))
    True
    >>> is_simple_query(CNREQuery([CNREAtom(x, parse_nre("a . b*"), y)]))
    False
    """
    return all(isinstance(atom.nre, (Label, Backward)) for atom in query.atoms)


def _edge_view(atom: CNREAtom) -> tuple[object, str, object]:
    """Return ``(source_term, label, target_term)`` in *edge orientation*.

    A backward atom ``(x, a⁻, y)`` matches the edge ``(h(y), a, h(x))``, so
    its terms swap sides.
    """
    if isinstance(atom.nre, Label):
        return atom.subject, atom.nre.name, atom.object
    if isinstance(atom.nre, Backward):
        return atom.object, atom.nre.name, atom.subject
    raise TypeError(f"not a simple atom: {atom}")


class TriggerMatcher:
    """Shared indexed trigger-matching core for the chase engines.

    Construct one per (mutable) graph; the matcher holds no copies, so
    every call sees the graph's current state.  An optional
    :class:`~repro.chase.result.ChaseStats` accumulates ``index_hits``.

    >>> g = GraphDatabase(edges=[("c1", "h", "hx"), ("c2", "h", "hx")])
    >>> x1, x2, x3 = Variable("x1"), Variable("x2"), Variable("x3")
    >>> body = CNREQuery([
    ...     CNREAtom(x1, Label("h"), x3), CNREAtom(x2, Label("h"), x3)])
    >>> matcher = TriggerMatcher(g)
    >>> sorted((h[x1], h[x2]) for h in matcher.matches(body))
    [('c1', 'c1'), ('c1', 'c2'), ('c2', 'c1'), ('c2', 'c2')]
    """

    def __init__(
        self,
        graph: GraphDatabase,
        stats: "ChaseStats | None" = None,
        engine=None,
    ):
        self.graph = graph
        self.stats = stats
        self.engine = engine  # query engine for composite-NRE fallbacks

    # ------------------------------------------------------------------ #
    # Full enumeration
    # ------------------------------------------------------------------ #

    def matches(
        self,
        query: CNREQuery,
        seed: Mapping[Variable, Node] | None = None,
    ) -> Iterator[Assignment]:
        """Yield every homomorphism of ``query`` into the graph.

        ``seed`` pre-binds variables (dependency bodies seeding head
        checks).  Simple queries run on the indexed join; composite ones
        delegate to the reference evaluator.

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> x, y = Variable("x"), Variable("y")
        >>> q = CNREQuery([CNREAtom(x, Label("a"), y)])
        >>> [h[y] for h in TriggerMatcher(g).matches(q, seed={x: "u"})]
        ['v']
        """
        if not is_simple_query(query):
            yield from cnre_homomorphisms(
                query, self.graph, seed=seed, engine=self.engine
            )
            return
        initial: Assignment = dict(seed) if seed else {}
        yield from self._join(list(query.atoms), initial)

    # ------------------------------------------------------------------ #
    # Delta enumeration (semi-naive iteration)
    # ------------------------------------------------------------------ #

    def delta_matches(self, query: CNREQuery, since: int) -> Iterator[Assignment]:
        """Yield the homomorphisms using at least one edge added after ``since``.

        ``since`` is a graph :attr:`~repro.graph.database.GraphDatabase.version`
        read earlier.  For simple queries the result is *exactly* the set of
        homomorphisms that did not exist at that version (each simple atom's
        edge is determined by the assignment, so a match through a new edge
        cannot have existed before).  Composite queries fall back to full
        enumeration, which is a sound superset.

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> v0 = g.version
        >>> g.add_edge("v", "a", "w")
        >>> x, y = Variable("x"), Variable("y")
        >>> q = CNREQuery([CNREAtom(x, Label("a"), y)])
        >>> [(h[x], h[y]) for h in TriggerMatcher(g).delta_matches(q, v0)]
        [('v', 'w')]
        """
        if not is_simple_query(query):
            yield from self.matches(query)
            return
        yield from self._seeded_by_edges(query, self.graph.edges_since(since))

    def matches_touching(self, query: CNREQuery, node: Node) -> Iterator[Assignment]:
        """Yield the homomorphisms using at least one edge incident to ``node``.

        After a merge step renames a node, every *newly created* trigger
        must route through one of the merged node's rewritten edges — so
        this is the complete re-match set for an egd engine.  Composite
        queries fall back to full enumeration.

        >>> g = GraphDatabase(edges=[("c1", "h", "hx"), ("c2", "h", "hy")])
        >>> x1, x2, x3 = Variable("x1"), Variable("x2"), Variable("x3")
        >>> body = CNREQuery([
        ...     CNREAtom(x1, Label("h"), x3), CNREAtom(x2, Label("h"), x3)])
        >>> homs = TriggerMatcher(g).matches_touching(body, "hy")
        >>> sorted((h[x1], h[x3]) for h in homs)
        [('c2', 'hy')]
        """
        if not is_simple_query(query):
            yield from self.matches(query)
            return
        yield from self._seeded_by_edges(query, self.graph.incident_edges(node))

    # ------------------------------------------------------------------ #
    # Pair projections (egd violation maintenance)
    # ------------------------------------------------------------------ #

    def pair_matches(
        self, query: CNREQuery, left: Variable, right: Variable
    ) -> set[tuple[Node, Node]]:
        """Return ``{(hom[left], hom[right]) | hom ⊨ query}`` as a set.

        The egd violation queue orders violations through a heap, so it
        only needs the *projected pair set* of a body — never the
        homomorphisms themselves or their enumeration order.  That
        freedom buys two fast paths over :meth:`matches`:

        * two-atom bodies sharing one variable (the paper's
          functionality egds) run a hash join straight over the per-label
          index buckets — and when the view is a frozen CSR graph with
          numpy importable, the self-join shape expands every node's
          first-symbol CSR slice into its pair block with bulk array ops;
        * every other simple body runs the backtracking join with the
          projection applied in place (no per-hom dict copies) and
          dedupes directly on the pair.
        """
        if not is_simple_query(query):
            return {(hom[left], hom[right]) for hom in self.matches(query)}
        atoms = list(query.atoms)
        if len(atoms) == 2:
            pairs = self._pair_join_two(atoms, left, right)
            if pairs is not None:
                return pairs
        out: set[tuple[Node, Node]] = set()
        self._project_join(self._order(atoms, set()), {}, left, right, out)
        return out

    def pair_matches_seeded(
        self,
        query: CNREQuery,
        left: Variable,
        right: Variable,
        edges: Iterable[Edge],
    ) -> set[tuple[Node, Node]]:
        """Projected :meth:`_seeded_by_edges`: the ``(left, right)`` pairs
        of every homomorphism routed through one of ``edges``.

        Same contract as :meth:`pair_matches` (a set, no order), for the
        delta cases — the violation queue's journal rescan and its
        post-merge re-match, whose edge seeds are small.  Composite
        queries fall back to full enumeration, matching
        :meth:`matches_touching`.
        """
        out: set[tuple[Node, Node]] = set()
        if not is_simple_query(query):
            for hom in self.matches(query):
                out.add((hom[left], hom[right]))
            return out
        graph = self.graph
        edge_list = [
            e for e in edges if graph.has_edge(e.source, e.label, e.target)
        ]
        if not edge_list:
            return out
        atoms = list(query.atoms)
        if len(atoms) == 2:
            pairs = self._pair_join_two_seeded(atoms, left, right, edge_list)
            if pairs is not None:
                return pairs
        for pinned_index, atom in enumerate(atoms):
            source_term, lab, target_term = _edge_view(atom)
            rest = atoms[:pinned_index] + atoms[pinned_index + 1 :]
            ordered_rest = self._order(rest, set(atom.variables()))
            for edge in edge_list:
                if edge.label != lab:
                    continue
                assignment: Assignment = {}
                if not _bind(assignment, source_term, edge.source):
                    continue
                if not _bind(assignment, target_term, edge.target):
                    continue
                self._project_join(ordered_rest, assignment, left, right, out)
        return out

    def _project_join(
        self,
        ordered: Sequence[CNREAtom],
        assignment: Assignment,
        left: Variable,
        right: Variable,
        out: set,
    ) -> None:
        """The backtracking join of :meth:`_run_join`, projected in place.

        Instead of copying the assignment per result, full-depth leaves
        add ``(assignment[left], assignment[right])`` to ``out`` — the
        set absorbs the duplicates distinct homomorphisms project onto.
        """

        def extend(index: int) -> None:
            if index == len(ordered):
                out.add((assignment[left], assignment[right]))
                return
            atom = ordered[index]
            source_term, lab, target_term = _edge_view(atom)
            for u, v in self._candidates(source_term, lab, target_term, assignment):
                added: list[Variable] = []
                if _bind(assignment, source_term, u, added) and _bind(
                    assignment, target_term, v, added
                ):
                    extend(index + 1)
                for var in added:
                    del assignment[var]

        extend(0)

    def _pair_join_two_seeded(
        self,
        atoms: Sequence[CNREAtom],
        left: Variable,
        right: Variable,
        edges: Sequence[Edge],
    ) -> set[tuple[Node, Node]] | None:
        """Seeded counterpart of :meth:`_pair_join_two`.

        Covers the same two-atom one-shared-variable shape (any
        orientation, ``{left, right}`` the two free variables).  A
        homomorphism routed through a seed edge pins that edge onto one
        of the atoms; the other atom's matches are then exactly one
        adjacency bucket of the join value — so each (seed, atom)
        combination costs one index probe plus a bulk pair expansion,
        never a backtracking join.  This is the egd engine's per-merge
        re-match running at O(degree) per rewritten edge.  Returns
        ``None`` for uncovered shapes (caller falls back to the pinned
        backtracking join).
        """
        views = (_edge_view(atoms[0]), _edge_view(atoms[1]))
        terms0 = (views[0][0], views[0][2])
        terms1 = (views[1][0], views[1][2])
        if not all(is_variable(t) for t in terms0 + terms1):
            return None
        if terms0[0] == terms0[1] or terms1[0] == terms1[1]:
            return None
        vars0, vars1 = set(terms0), set(terms1)
        shared = vars0 & vars1
        if len(shared) != 1:
            return None
        join_var = next(iter(shared))
        free0 = (vars0 - shared).pop()
        free1 = (vars1 - shared).pop()
        if (left, right) == (free0, free1):
            swap = False
        elif (left, right) == (free1, free0):
            swap = True
        else:
            return None
        graph = self.graph
        if self.stats is not None:
            self.stats.index_hits += 1
        out: set[tuple[Node, Node]] = set()
        for pinned, other in ((0, 1), (1, 0)):
            _, lab, _ = views[pinned]
            join_at_source = join_var == views[pinned][0]
            other_source, other_lab, _ = views[other]
            bucket = (
                graph.forward_index(other_lab)
                if join_var == other_source
                else graph.backward_index(other_lab)
            )
            # ``(pinned, swap)`` decides which side of the output pair the
            # pinned atom's free value lands on.
            pinned_first = (pinned == 0) != swap
            for edge in edges:
                if edge.label != lab:
                    continue
                if join_at_source:
                    join_val, free_val = edge.source, edge.target
                else:
                    join_val, free_val = edge.target, edge.source
                partners = bucket.get(join_val)
                if not partners:
                    continue
                if pinned_first:
                    out.update((free_val, partner) for partner in partners)
                else:
                    out.update((partner, free_val) for partner in partners)
        return out

    def _pair_join_two(
        self, atoms: Sequence[CNREAtom], left: Variable, right: Variable
    ) -> set[tuple[Node, Node]] | None:
        """Hash join for two-atom bodies sharing exactly one variable.

        Handles the shape ``(a, lab0, j), (b, lab1, j)`` in any
        orientation, with ``{left, right} == {a, b}`` — each atom's index
        bucket map (``j → endpoints``) comes straight from the graph's
        per-label hash indexes, so the join never touches individual
        edges.  Returns ``None`` for shapes it does not cover (constants,
        repeated variables, projections involving the join variable);
        the caller falls back to the projected backtracking join.
        """
        view0, view1 = _edge_view(atoms[0]), _edge_view(atoms[1])
        terms0 = (view0[0], view0[2])
        terms1 = (view1[0], view1[2])
        if not all(is_variable(t) for t in terms0 + terms1):
            return None
        if terms0[0] == terms0[1] or terms1[0] == terms1[1]:
            return None
        vars0, vars1 = set(terms0), set(terms1)
        shared = vars0 & vars1
        if len(shared) != 1:
            return None
        join_var = next(iter(shared))
        free0 = (vars0 - shared).pop()
        free1 = (vars1 - shared).pop()
        if (left, right) == (free0, free1):
            swap = False
        elif (left, right) == (free1, free0):
            swap = True
        else:
            return None
        graph = self.graph
        join_at_source0 = join_var == terms0[0]
        join_at_source1 = join_var == terms1[0]
        if self.stats is not None:
            self.stats.index_hits += 1
        if view0[1] == view1[1] and join_at_source0 == join_at_source1:
            # Same label, same orientation: a self-join — the pair set is
            # symmetric, so ``swap`` is immaterial and the frozen-CSR
            # vector expansion applies.
            vectorized = self._pair_self_join_vector(view0, join_var, swap)
            if vectorized is not None:
                return vectorized
        # Bucket maps keyed by the join variable: when it sits in edge-
        # source position the forward index (source → targets) already is
        # the multimap; in target position, the backward index.
        index0 = (
            graph.forward_index(view0[1])
            if join_at_source0
            else graph.backward_index(view0[1])
        )
        index1 = (
            graph.forward_index(view1[1])
            if join_at_source1
            else graph.backward_index(view1[1])
        )
        if len(index1) < len(index0):
            index0, index1 = index1, index0
            swap = not swap
        out: set[tuple[Node, Node]] = set()
        for key, lefts in index0.items():
            rights = index1.get(key)
            if rights:
                for a in lefts:
                    for b in rights:
                        out.add((b, a) if swap else (a, b))
        return out

    def _pair_self_join_vector(
        self, view: tuple, join_var: object, swap: bool
    ) -> set[tuple[Node, Node]] | None:
        """Numpy bulk expansion of a self-join on a frozen CSR view.

        The functionality-egd shape ``(x1, lab, j), (x2, lab, j)`` asks
        for all ordered endpoint pairs within each node's first-symbol
        CSR slice.  Per slice of degree ``k`` the block is the ``k²``
        index grid, built for every node at once from the degree counts
        (``swap`` is irrelevant: the pair set is symmetric).  Returns
        ``None`` when the view is not frozen CSR or numpy is absent.
        """
        from repro import kernels

        np = kernels.get_numpy()
        csr = getattr(self.graph, "csr", None)
        if np is None or csr is None:
            return None
        buffers = (
            csr.backward_arrays(view[1])
            if join_var == view[2]
            else csr.forward_arrays(view[1])
        )
        if buffers is None:
            return set()
        offsets, endpoints = buffers
        starts = offsets[:-1]
        degs = offsets[1:] - starts
        sizes = degs * degs
        total = int(sizes.sum())
        if not total:
            return set()
        base = starts.repeat(sizes)
        cum = sizes.cumsum()
        within = np.arange(total, dtype=np.int64) - (cum - sizes).repeat(sizes)
        width = degs.repeat(sizes)
        lefts = endpoints[base + within // width]
        rights = endpoints[base + within % width]
        codes = np.unique(lefts * np.int64(csr.node_count()) + rights)
        node_at = csr.node_at
        node_count = csr.node_count()
        return {
            (node_at(int(code) // node_count), node_at(int(code) % node_count))
            for code in codes
        }

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _seeded_by_edges(
        self, query: CNREQuery, edges: Iterable[Edge]
    ) -> Iterator[Assignment]:
        """Enumerate homomorphisms with some atom pinned to one of ``edges``."""
        edge_list = [e for e in edges if self.graph.has_edge(e.source, e.label, e.target)]
        if not edge_list:
            return
        variables = query.variables()
        seen: set[tuple] = set()
        atoms = list(query.atoms)
        for pinned_index, atom in enumerate(atoms):
            source_term, lab, target_term = _edge_view(atom)
            rest = atoms[:pinned_index] + atoms[pinned_index + 1 :]
            # The join order depends only on which atom is pinned, not on
            # the concrete edge — compute it once per pinned atom.
            ordered_rest = self._order(rest, set(atom.variables()))
            for edge in edge_list:
                if edge.label != lab:
                    continue
                assignment: Assignment = {}
                if not _bind(assignment, source_term, edge.source):
                    continue
                if not _bind(assignment, target_term, edge.target):
                    continue
                for hom in self._run_join(ordered_rest, assignment):
                    key = tuple(hom[v] for v in variables)
                    if key not in seen:
                        seen.add(key)
                        yield hom

    def _join(self, atoms: Sequence[CNREAtom], assignment: Assignment) -> Iterator[Assignment]:
        """Backtracking join over simple atoms, bound positions via indexes."""
        yield from self._run_join(self._order(atoms, set(assignment)), assignment)

    def _run_join(
        self, ordered: Sequence[CNREAtom], assignment: Assignment
    ) -> Iterator[Assignment]:
        """The join proper, over an already-ordered atom sequence."""

        def extend(index: int, current: Assignment) -> Iterator[Assignment]:
            if index == len(ordered):
                yield dict(current)
                return
            atom = ordered[index]
            source_term, lab, target_term = _edge_view(atom)
            for u, v in self._candidates(source_term, lab, target_term, current):
                added: list[Variable] = []
                if _bind(current, source_term, u, added) and _bind(
                    current, target_term, v, added
                ):
                    yield from extend(index + 1, current)
                for var in added:
                    del current[var]

        yield from extend(0, assignment)

    def _order(
        self, atoms: Sequence[CNREAtom], bound: set[Variable]
    ) -> list[CNREAtom]:
        """Greedy join order: most-bound atoms first, then smallest label."""
        remaining = list(atoms)
        ordered: list[CNREAtom] = []
        bound = set(bound)
        while remaining:

            def score(atom: CNREAtom) -> tuple[int, int]:
                unbound = sum(
                    1
                    for term in (atom.subject, atom.object)
                    if is_variable(term) and term not in bound
                )
                return (unbound, self.graph.label_count(_edge_view(atom)[1]))

            best = min(remaining, key=score)
            remaining.remove(best)
            ordered.append(best)
            bound.update(best.variables())
        return ordered

    def _candidates(
        self,
        source_term: object,
        lab: str,
        target_term: object,
        assignment: Assignment,
    ) -> Iterator[tuple[Node, Node]]:
        """Candidate ``(source, target)`` edge endpoints for one atom."""
        graph, stats = self.graph, self.stats
        source = _value(source_term, assignment)
        target = _value(target_term, assignment)
        if source is not _UNSET and target is not _UNSET:
            if stats is not None:
                stats.index_hits += 1
            if graph.has_edge(source, lab, target):
                yield (source, target)
        elif source is not _UNSET:
            if stats is not None:
                stats.index_hits += 1
            for v in graph.successors(source, lab):
                yield (source, v)
        elif target is not _UNSET:
            if stats is not None:
                stats.index_hits += 1
            for u in graph.predecessors(target, lab):
                yield (u, target)
        else:
            yield from graph.iter_label_pairs(lab)


def _value(term: object, assignment: Assignment) -> object:
    if is_variable(term):
        return assignment.get(term, _UNSET)
    return term


def _bind(
    assignment: Assignment,
    term: object,
    value: Node,
    added: list[Variable] | None = None,
) -> bool:
    """Bind ``term`` to ``value`` in ``assignment``; False on a clash."""
    if not is_variable(term):
        return term == value
    current = assignment.get(term, _UNSET)
    if current is _UNSET:
        assignment[term] = value
        if added is not None:
            added.append(term)
        return True
    return current == value
