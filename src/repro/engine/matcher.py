"""Indexed trigger matching over graph databases.

Every chase variant repeats one operation: find the homomorphisms of a
dependency body into the current target graph (the *triggers*).  The seed
implementation re-evaluated each body NRE into an explicit pair set and
scanned it per backtracking step — correct, but it re-scans the whole
graph on every fixpoint round.  :class:`TriggerMatcher` replaces those
nested-loop scans with one shared core that

* answers bound positions from the graph's hash indexes
  (``successors`` / ``predecessors`` / ``has_edge``) instead of filtering a
  materialised pair set — *index hits*, counted into
  :class:`~repro.chase.result.ChaseStats`;
* supports **semi-naive (delta) iteration**: :meth:`TriggerMatcher.delta_matches`
  enumerates only the homomorphisms that use at least one edge added since a
  recorded graph version, and :meth:`TriggerMatcher.matches_touching` only
  those through a given node — which is exactly the part of the trigger
  space a chase round or a merge step can have changed.

The fast paths apply to *simple* queries — every atom a bare forward or
backward label, which covers all dependency bodies of the paper's figures
and benchmarks.  Composite NREs (stars, unions, nesting) fall back to the
CNRE evaluator :func:`repro.graph.cnre.cnre_homomorphisms`, whose per-NRE
relations come from a query engine (the shared compiled
:class:`~repro.engine.query.QueryEngine` unless the matcher was handed a
specific one), so the matcher is always sound and complete, never just fast.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Iterable, Iterator, Mapping, Sequence

from repro.graph.cnre import CNREAtom, CNREQuery, cnre_homomorphisms
from repro.graph.database import Edge, GraphDatabase
from repro.graph.nre import Backward, Label
from repro.relational.query import Variable, is_variable

if TYPE_CHECKING:  # import only for annotations: chase.result imports graph
    from repro.chase.result import ChaseStats

Node = Hashable
Assignment = dict[Variable, Node]

_UNSET = object()


def is_simple_query(query: CNREQuery) -> bool:
    """Return whether every atom of ``query`` is a bare (backward) label.

    Simple queries are eligible for the indexed and delta fast paths; all
    others take the reference CNRE evaluator.

    >>> from repro.graph.parser import parse_nre
    >>> x, y = Variable("x"), Variable("y")
    >>> is_simple_query(CNREQuery([CNREAtom(x, parse_nre("h"), y)]))
    True
    >>> is_simple_query(CNREQuery([CNREAtom(x, parse_nre("a . b*"), y)]))
    False
    """
    return all(isinstance(atom.nre, (Label, Backward)) for atom in query.atoms)


def _edge_view(atom: CNREAtom) -> tuple[object, str, object]:
    """Return ``(source_term, label, target_term)`` in *edge orientation*.

    A backward atom ``(x, a⁻, y)`` matches the edge ``(h(y), a, h(x))``, so
    its terms swap sides.
    """
    if isinstance(atom.nre, Label):
        return atom.subject, atom.nre.name, atom.object
    if isinstance(atom.nre, Backward):
        return atom.object, atom.nre.name, atom.subject
    raise TypeError(f"not a simple atom: {atom}")


class TriggerMatcher:
    """Shared indexed trigger-matching core for the chase engines.

    Construct one per (mutable) graph; the matcher holds no copies, so
    every call sees the graph's current state.  An optional
    :class:`~repro.chase.result.ChaseStats` accumulates ``index_hits``.

    >>> g = GraphDatabase(edges=[("c1", "h", "hx"), ("c2", "h", "hx")])
    >>> x1, x2, x3 = Variable("x1"), Variable("x2"), Variable("x3")
    >>> body = CNREQuery([
    ...     CNREAtom(x1, Label("h"), x3), CNREAtom(x2, Label("h"), x3)])
    >>> matcher = TriggerMatcher(g)
    >>> sorted((h[x1], h[x2]) for h in matcher.matches(body))
    [('c1', 'c1'), ('c1', 'c2'), ('c2', 'c1'), ('c2', 'c2')]
    """

    def __init__(
        self,
        graph: GraphDatabase,
        stats: "ChaseStats | None" = None,
        engine=None,
    ):
        self.graph = graph
        self.stats = stats
        self.engine = engine  # query engine for composite-NRE fallbacks

    # ------------------------------------------------------------------ #
    # Full enumeration
    # ------------------------------------------------------------------ #

    def matches(
        self,
        query: CNREQuery,
        seed: Mapping[Variable, Node] | None = None,
    ) -> Iterator[Assignment]:
        """Yield every homomorphism of ``query`` into the graph.

        ``seed`` pre-binds variables (dependency bodies seeding head
        checks).  Simple queries run on the indexed join; composite ones
        delegate to the reference evaluator.

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> x, y = Variable("x"), Variable("y")
        >>> q = CNREQuery([CNREAtom(x, Label("a"), y)])
        >>> [h[y] for h in TriggerMatcher(g).matches(q, seed={x: "u"})]
        ['v']
        """
        if not is_simple_query(query):
            yield from cnre_homomorphisms(
                query, self.graph, seed=seed, engine=self.engine
            )
            return
        initial: Assignment = dict(seed) if seed else {}
        yield from self._join(list(query.atoms), initial)

    # ------------------------------------------------------------------ #
    # Delta enumeration (semi-naive iteration)
    # ------------------------------------------------------------------ #

    def delta_matches(self, query: CNREQuery, since: int) -> Iterator[Assignment]:
        """Yield the homomorphisms using at least one edge added after ``since``.

        ``since`` is a graph :attr:`~repro.graph.database.GraphDatabase.version`
        read earlier.  For simple queries the result is *exactly* the set of
        homomorphisms that did not exist at that version (each simple atom's
        edge is determined by the assignment, so a match through a new edge
        cannot have existed before).  Composite queries fall back to full
        enumeration, which is a sound superset.

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> v0 = g.version
        >>> g.add_edge("v", "a", "w")
        >>> x, y = Variable("x"), Variable("y")
        >>> q = CNREQuery([CNREAtom(x, Label("a"), y)])
        >>> [(h[x], h[y]) for h in TriggerMatcher(g).delta_matches(q, v0)]
        [('v', 'w')]
        """
        if not is_simple_query(query):
            yield from self.matches(query)
            return
        yield from self._seeded_by_edges(query, self.graph.edges_since(since))

    def matches_touching(self, query: CNREQuery, node: Node) -> Iterator[Assignment]:
        """Yield the homomorphisms using at least one edge incident to ``node``.

        After a merge step renames a node, every *newly created* trigger
        must route through one of the merged node's rewritten edges — so
        this is the complete re-match set for an egd engine.  Composite
        queries fall back to full enumeration.

        >>> g = GraphDatabase(edges=[("c1", "h", "hx"), ("c2", "h", "hy")])
        >>> x1, x2, x3 = Variable("x1"), Variable("x2"), Variable("x3")
        >>> body = CNREQuery([
        ...     CNREAtom(x1, Label("h"), x3), CNREAtom(x2, Label("h"), x3)])
        >>> homs = TriggerMatcher(g).matches_touching(body, "hy")
        >>> sorted((h[x1], h[x3]) for h in homs)
        [('c2', 'hy')]
        """
        if not is_simple_query(query):
            yield from self.matches(query)
            return
        yield from self._seeded_by_edges(query, self.graph.incident_edges(node))

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _seeded_by_edges(
        self, query: CNREQuery, edges: Iterable[Edge]
    ) -> Iterator[Assignment]:
        """Enumerate homomorphisms with some atom pinned to one of ``edges``."""
        edge_list = [e for e in edges if self.graph.has_edge(e.source, e.label, e.target)]
        if not edge_list:
            return
        variables = query.variables()
        seen: set[tuple] = set()
        atoms = list(query.atoms)
        for pinned_index, atom in enumerate(atoms):
            source_term, lab, target_term = _edge_view(atom)
            rest = atoms[:pinned_index] + atoms[pinned_index + 1 :]
            # The join order depends only on which atom is pinned, not on
            # the concrete edge — compute it once per pinned atom.
            ordered_rest = self._order(rest, set(atom.variables()))
            for edge in edge_list:
                if edge.label != lab:
                    continue
                assignment: Assignment = {}
                if not _bind(assignment, source_term, edge.source):
                    continue
                if not _bind(assignment, target_term, edge.target):
                    continue
                for hom in self._run_join(ordered_rest, assignment):
                    key = tuple(hom[v] for v in variables)
                    if key not in seen:
                        seen.add(key)
                        yield hom

    def _join(self, atoms: Sequence[CNREAtom], assignment: Assignment) -> Iterator[Assignment]:
        """Backtracking join over simple atoms, bound positions via indexes."""
        yield from self._run_join(self._order(atoms, set(assignment)), assignment)

    def _run_join(
        self, ordered: Sequence[CNREAtom], assignment: Assignment
    ) -> Iterator[Assignment]:
        """The join proper, over an already-ordered atom sequence."""

        def extend(index: int, current: Assignment) -> Iterator[Assignment]:
            if index == len(ordered):
                yield dict(current)
                return
            atom = ordered[index]
            source_term, lab, target_term = _edge_view(atom)
            for u, v in self._candidates(source_term, lab, target_term, current):
                added: list[Variable] = []
                if _bind(current, source_term, u, added) and _bind(
                    current, target_term, v, added
                ):
                    yield from extend(index + 1, current)
                for var in added:
                    del current[var]

        yield from extend(0, assignment)

    def _order(
        self, atoms: Sequence[CNREAtom], bound: set[Variable]
    ) -> list[CNREAtom]:
        """Greedy join order: most-bound atoms first, then smallest label."""
        remaining = list(atoms)
        ordered: list[CNREAtom] = []
        bound = set(bound)
        while remaining:

            def score(atom: CNREAtom) -> tuple[int, int]:
                unbound = sum(
                    1
                    for term in (atom.subject, atom.object)
                    if is_variable(term) and term not in bound
                )
                return (unbound, self.graph.label_count(_edge_view(atom)[1]))

            best = min(remaining, key=score)
            remaining.remove(best)
            ordered.append(best)
            bound.update(best.variables())
        return ordered

    def _candidates(
        self,
        source_term: object,
        lab: str,
        target_term: object,
        assignment: Assignment,
    ) -> Iterator[tuple[Node, Node]]:
        """Candidate ``(source, target)`` edge endpoints for one atom."""
        graph, stats = self.graph, self.stats
        source = _value(source_term, assignment)
        target = _value(target_term, assignment)
        if source is not _UNSET and target is not _UNSET:
            if stats is not None:
                stats.index_hits += 1
            if graph.has_edge(source, lab, target):
                yield (source, target)
        elif source is not _UNSET:
            if stats is not None:
                stats.index_hits += 1
            for v in graph.successors(source, lab):
                yield (source, v)
        elif target is not _UNSET:
            if stats is not None:
                stats.index_hits += 1
            for u in graph.predecessors(target, lab):
                yield (u, target)
        else:
            yield from graph.iter_label_pairs(lab)


def _value(term: object, assignment: Assignment) -> object:
    if is_variable(term):
        return assignment.get(term, _UNSET)
    return term


def _bind(
    assignment: Assignment,
    term: object,
    value: Node,
    added: list[Variable] | None = None,
) -> bool:
    """Bind ``term`` to ``value`` in ``assignment``; False on a clash."""
    if not is_variable(term):
        return term == value
    current = assignment.get(term, _UNSET)
    if current is _UNSET:
        assignment[term] = value
        if added is not None:
            added.append(term)
        return True
    return current == value
