"""The paper's running example: flights, hotels, and one constraint two ways.

Everything printed in Example 2.2 and its continuations is constructed here
as code:

* the source schema {Flight/3, Hotel/2} and the instance I;
* the target alphabet Σ = {f, h} and the s-t tgd M_st;
* the egd M_t and the sameAs variant M′_t, giving the two settings
  Ω = (R, Σ, M_st, M_t) and Ω′ = (R, Σ, M_st, M′_t);
* the Figure 1 solutions G1, G2 (under Ω) and G3 (under Ω′);
* the query Q = f·f*[h]·f⁻·(f⁻)* and the answer/certain-answer sets the
  paper prints for it;
* the expected Figure 5 pattern (output of the adapted egd chase) and the
  Figure 7 graph of Example 5.4.

**Figure pinning.**  The paper's figure drawings are reconstructed from the
machine-checkable facts stated in the text: G1/G2/G3 must be solutions under
their settings, and ⟦Q⟧_G1 / ⟦Q⟧_G2 must equal the printed sets.  Where a
drawing leaves one redundant edge ambiguous (G2's fifth f edge), we pick a
placement and the tests pin the *semantic* facts, which are placement-
independent.  Figure 7's graph is pinned by its two defining properties:
the Figure 5 pattern maps into it homomorphically, yet the hotel egd is
violated.
"""

from __future__ import annotations

from repro.core.setting import DataExchangeSetting
from repro.graph.database import GraphDatabase
from repro.graph.nre import NRE
from repro.graph.parser import parse_nre
from repro.mappings.egd import TargetEgd
from repro.mappings.parser import parse_egd, parse_sameas, parse_st_tgd
from repro.mappings.sameas import SAME_AS_LABEL, SameAsConstraint
from repro.mappings.stt import SourceToTargetTgd
from repro.patterns.pattern import GraphPattern, Null
from repro.relational.instance import RelationalInstance
from repro.relational.schema import RelationalSchema


def flights_schema() -> RelationalSchema:
    """The source schema R = {Flight(flight_id, src, dest), Hotel(flight_id, hotel_id)}."""
    schema = RelationalSchema()
    schema.declare("Flight", 3)
    schema.declare("Hotel", 2)
    return schema


def flights_instance() -> RelationalInstance:
    """The instance I of Example 2.2 (two flights, three hotel stops)."""
    return RelationalInstance(
        flights_schema(),
        {
            "Flight": [("01", "c1", "c2"), ("02", "c3", "c2")],
            "Hotel": [("01", "hx"), ("01", "hy"), ("02", "hx")],
        },
    )


def flights_alphabet() -> frozenset[str]:
    """The target schema Σ = {f, h}."""
    return frozenset({"f", "h"})


def flights_st_tgd() -> SourceToTargetTgd:
    """M_st: each hotel stop lies in some city on a path from src to dest."""
    return parse_st_tgd(
        "Flight(x1, x2, x3), Hotel(x1, x4) -> "
        "(x2, f . f*, y), (y, h, x4), (y, f . f*, x3)",
        name="M_st",
    )


def hotel_egd() -> TargetEgd:
    """M_t: a hotel is situated in exactly one city (as an egd)."""
    return parse_egd("(x1, h, x3), (x2, h, x3) -> x1 = x2", name="M_t")


def hotel_sameas() -> SameAsConstraint:
    """M′_t: the same requirement expressed as a sameAs constraint."""
    return parse_sameas(
        "(x1, h, x3), (x2, h, x3) -> (x1, sameAs, x2)", name="M'_t"
    )


def setting_omega() -> DataExchangeSetting:
    """Ω = (R, Σ, M_st, M_t) — the egd setting."""
    return DataExchangeSetting(
        flights_schema(),
        flights_alphabet(),
        [flights_st_tgd()],
        [hotel_egd()],
        name="Omega",
    )


def setting_omega_prime() -> DataExchangeSetting:
    """Ω′ = (R, Σ, M_st, M′_t) — the sameAs setting."""
    return DataExchangeSetting(
        flights_schema(),
        flights_alphabet(),
        [flights_st_tgd()],
        [hotel_sameas()],
        name="OmegaPrime",
    )


def setting_no_constraints() -> DataExchangeSetting:
    """(R, Σ, M_st, ∅) — the constraint-free setting of Example 3.2."""
    return DataExchangeSetting(
        flights_schema(),
        flights_alphabet(),
        [flights_st_tgd()],
        [],
        name="OmegaFree",
    )


# --------------------------------------------------------------------- #
# Figure 1: the solutions G1, G2 (under Ω) and G3 (under Ω′)
# --------------------------------------------------------------------- #


def graph_g1() -> GraphDatabase:
    """Figure 1(a): both hotels in the single intermediate city N."""
    return GraphDatabase(
        alphabet={"f", "h"},
        edges=[
            ("c1", "f", "N"),
            ("c3", "f", "N"),
            ("N", "f", "c2"),
            ("N", "h", "hx"),
            ("N", "h", "hy"),
        ],
    )


def graph_g2() -> GraphDatabase:
    """Figure 1(b): a two-stop itinerary through N1 then N2.

    Both hotels sit in N2; the fifth f edge (N1 → c2) is the drawing's
    redundant connection.  The structure is pinned by ⟦Q⟧_G2 matching the
    paper's printed nine-pair set (see :func:`paper_answers_g2`).
    """
    return GraphDatabase(
        alphabet={"f", "h"},
        edges=[
            ("c1", "f", "N1"),
            ("c3", "f", "N1"),
            ("N1", "f", "N2"),
            ("N2", "f", "c2"),
            ("N1", "f", "c2"),
            ("N2", "h", "hx"),
            ("N2", "h", "hy"),
        ],
    )


def graph_g3() -> GraphDatabase:
    """Figure 1(c): one city per trigger, hx's two cities linked by sameAs.

    The dotted edges of the figure are the two ``sameAs`` edges between N1
    and N3 (the cities both hosting hotel hx).
    """
    return GraphDatabase(
        alphabet={"f", "h", SAME_AS_LABEL},
        edges=[
            ("c1", "f", "N1"),
            ("N1", "f", "N2"),
            ("N2", "f", "c2"),
            ("c3", "f", "N3"),
            ("N3", "f", "c2"),
            ("N1", "h", "hx"),
            ("N2", "h", "hy"),
            ("N3", "h", "hx"),
            ("N1", SAME_AS_LABEL, "N3"),
            ("N3", SAME_AS_LABEL, "N1"),
        ],
    )


# --------------------------------------------------------------------- #
# The query Q and the paper's printed answer sets
# --------------------------------------------------------------------- #


def example_query() -> NRE:
    """Q = (x1, f·f*[h]·f⁻·(f⁻)*, x2): pairs of cities reaching one hotel."""
    return parse_nre("f . f*[h] . f- . (f-)*")


def paper_answers_g1() -> frozenset[tuple[str, str]]:
    """⟦Q⟧_G1 as printed in Example 2.2 (continued)."""
    return frozenset(
        {("c1", "c1"), ("c1", "c3"), ("c3", "c1"), ("c3", "c3")}
    )


def paper_answers_g2() -> frozenset[tuple[str, str]]:
    """⟦Q⟧_G2 as printed in Example 2.2 (continued) — nine pairs."""
    return frozenset(
        {
            ("c1", "c1"),
            ("c1", "c3"),
            ("c3", "c1"),
            ("c3", "c3"),
            ("c1", "N1"),
            ("c3", "N1"),
            ("N1", "c1"),
            ("N1", "c3"),
            ("N1", "N1"),
        }
    )


def paper_certain_omega() -> frozenset[tuple[str, str]]:
    """cert_Ω(Q, I) as printed: the four all-constant pairs."""
    return frozenset(
        {("c1", "c1"), ("c1", "c3"), ("c3", "c1"), ("c3", "c3")}
    )


def paper_certain_omega_prime() -> frozenset[tuple[str, str]]:
    """cert_Ω′(Q, I) as printed: only the reflexive pairs survive."""
    return frozenset({("c1", "c1"), ("c3", "c3")})


# --------------------------------------------------------------------- #
# Figure 5 (adapted-chase pattern) and Figure 7 (Example 5.4)
# --------------------------------------------------------------------- #


def figure5_expected_pattern() -> GraphPattern:
    """The Figure 5 pattern: hx's two cities merged into one null.

    Two nulls remain: ``NA`` hosting hx (reached from both c1 and c3) and
    ``NB`` hosting hy (reached from c1 only); all five transport edges carry
    ``f·f*``.  The concrete null labels differ from the chase's (which
    allocates N1, N2, …); comparisons are up to null renaming.
    """
    ff = parse_nre("f . f*")
    h = parse_nre("h")
    na, nb = Null("NA"), Null("NB")
    pattern = GraphPattern(alphabet={"f", "h"})
    pattern.add_edge("c1", ff, na)
    pattern.add_edge("c3", ff, na)
    pattern.add_edge(na, h, "hx")
    pattern.add_edge(na, ff, "c2")
    pattern.add_edge("c1", ff, nb)
    pattern.add_edge(nb, h, "hy")
    pattern.add_edge(nb, ff, "c2")
    return pattern


def figure7_graph() -> GraphDatabase:
    """Figure 7: in Rep of the Figure 5 pattern, yet violating the egd.

    G1 extended with hotel edges from c2, so hx (and hy) now sit in two
    distinct cities — the egd fires and fails, but the homomorphism from
    the chased pattern (N ↦ N) is untouched.  This is the Example 5.4 /
    Proposition 5.3 witness.
    """
    graph = graph_g1()
    graph.add_edge("c2", "h", "hx")
    graph.add_edge("c2", "h", "hy")
    return graph
