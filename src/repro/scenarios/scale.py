"""Scalable workload generator families — million-node tenants, streamed.

The paper-figure scenarios and the PR 4 service workload are all tiny;
this module is the repo's answer to the ROADMAP's "million-node
knowledge-graph workload" item.  It grows two deterministic families up
to ``10**6`` nodes:

* ``medlit`` — a medical-literature knowledge graph (papers, entities,
  evidence): polymorphic relationship labels (``treats`` / ``causes`` /
  ``interacts``), Zipf-skewed entity popularity and citation targets, and
  *nulls modeling partial extraction* (unresolved mentions, preprints
  with unknown venues, latent per-mention concepts);
* ``social`` — a preferential-attachment follower graph with community
  structure (Zipf community sizes, homophilous extra edges, invite
  trees, per-community hub/region nulls).

Both families are:

* **deterministic from a seed** — one :class:`random.Random` consumed in
  a fixed order; two runs with equal :class:`GeneratorConfig` produce
  byte-identical fact streams (the scale-stress CI job pins this);
* **streamable in O(batch) memory** — :func:`iter_fact_batches` yields
  lists of ``(relation, values)`` facts without ever materialising the
  instance.  ``medlit`` keeps no per-node state at all; ``social`` keeps
  only compact numeric attachment state (an :mod:`array` of int64
  endpoints plus small per-community rings), never fact tuples;
* **in the friendly fragments end to end** — the settings returned by
  :func:`scale_setting` have single-symbol s-t tgd heads (so
  :func:`~repro.chase.relational_chase.chase_relational` and
  :class:`~repro.engine.incremental.IncrementalChase` both apply) and
  union-of-word egd bodies (so the Theorem 4.1 SAT pipeline is complete
  on them), and their egds only ever merge nulls — the chase of a
  generated tenant always succeeds.

The CLI surface is ``repro genscale --family {medlit,social} --nodes N``
(see :mod:`repro.cli`); the scale-stress harness on top lives in
``benchmarks/bench_scale.py`` and ``tests/test_integration``.
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Callable, Iterator

from repro.core.setting import DataExchangeSetting
from repro.mappings.parser import parse_egd, parse_st_tgd
from repro.relational.instance import RelationalInstance
from repro.relational.schema import RelationalSchema

Fact = tuple[str, tuple[str, ...]]
"""One streamed fact: ``(relation name, value tuple)``."""

FAMILIES: tuple[str, ...] = ("medlit", "social")
"""The generator family names accepted by :class:`GeneratorConfig`."""


@dataclass(frozen=True)
class GeneratorConfig:
    """Shared, validated parameter block for every scalable family.

    ``nodes`` counts the family's primary entities (papers + entities for
    ``medlit``; users for ``social``) — attribute constants (venues,
    years, communities) ride on top.  ``seed`` fully determines the fact
    stream; ``batch_size`` only shapes the streaming granularity of
    :func:`iter_fact_batches` and never changes the facts or their order.

    >>> config = GeneratorConfig(family="medlit", nodes=100, seed=3)
    >>> config.scaled(nodes=10).nodes
    10
    """

    family: str = "medlit"
    nodes: int = 1_000
    seed: int = 7
    batch_size: int = 10_000
    # --- medlit knobs -------------------------------------------------- #
    paper_share: float = 0.6
    cite_mean: float = 2.0
    mention_mean: float = 2.0
    null_rate: float = 0.08
    evidence_rate: float = 0.3
    preprint_rate: float = 0.15
    # --- social knobs -------------------------------------------------- #
    attach: int = 3
    homophily: float = 0.5
    extra_membership_rate: float = 0.2

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(
                f"unknown generator family {self.family!r} "
                f"(choose from {', '.join(FAMILIES)})"
            )
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.attach < 1:
            raise ValueError(f"attach must be >= 1, got {self.attach}")

    def rng(self) -> random.Random:
        """A fresh deterministic generator positioned at the stream start."""
        return random.Random(self.seed)

    def scaled(self, **changes) -> "GeneratorConfig":
        """A copy with ``changes`` applied (downsampling, reseeding, …)."""
        return replace(self, **changes)


# --------------------------------------------------------------------- #
# Small deterministic sampling helpers
# --------------------------------------------------------------------- #


def _zipf_index(rng: random.Random, n: int) -> int:
    """A Zipf-skewed index in ``[0, n)`` — density roughly ``1/(k+1)``.

    The inverse-log transform ``int(n ** u) - 1`` needs no O(n) weight
    table, so the samplers stay O(1) memory at any scale; low indexes are
    the heavy head (early papers, popular entities, big communities).
    """
    if n <= 1:
        return 0
    return min(n - 1, max(0, int(n ** rng.random()) - 1))


def _burst(rng: random.Random, mean: float, cap: int = 16) -> int:
    """A geometric count with the given ``mean``, capped at ``cap``."""
    if mean <= 0:
        return 0
    keep = mean / (mean + 1.0)
    count = 0
    while count < cap and rng.random() < keep:
        count += 1
    return count


# --------------------------------------------------------------------- #
# medlit: papers / entities / evidence
# --------------------------------------------------------------------- #

_MEDLIT_RELATIONS: tuple[tuple[str, int], ...] = (
    ("Paper", 3),       # Paper(pid, venue, year)     — published metadata
    ("Preprint", 1),    # Preprint(pid)               — venue unknown (null)
    ("Cites", 2),       # Cites(pid, pid)             — citation DAG
    ("Mention", 2),     # Mention(pid, eid)           — resolved extraction
    ("Unresolved", 2),  # Unresolved(pid, mid)        — entity unknown (null)
    ("Treats", 3),      # Treats(pid, eid, eid)       — polymorphic evidence
    ("Causes", 3),
    ("Interacts", 3),
)

_MEDLIT_EVIDENCE: tuple[str, ...] = ("Treats", "Causes", "Interacts")


def _medlit_counts(config: GeneratorConfig) -> tuple[int, int, int]:
    """``(papers, entities, venues)`` for a medlit config."""
    papers = max(1, int(config.nodes * config.paper_share))
    entities = max(1, config.nodes - papers)
    venues = max(4, round(papers ** 0.5))
    return papers, entities, venues


def _medlit_facts(config: GeneratorConfig) -> Iterator[Fact]:
    """The medlit fact stream, one paper at a time, O(1) carried state."""
    rng = config.rng()
    papers, entities, venues = _medlit_counts(config)
    mention_id = 0
    for index in range(papers):
        pid = f"p{index}"
        # Published papers carry venue + year; preprints leave the venue
        # to a chase null (partial metadata extraction).
        if rng.random() < config.preprint_rate:
            yield ("Preprint", (pid,))
        else:
            venue = f"v{_zipf_index(rng, venues)}"
            year = str(1980 + rng.randrange(45))
            yield ("Paper", (pid, venue, year))
        # Citations point at earlier papers, Zipf-skewed toward the old
        # and popular head of the DAG.
        if index:
            for _ in range(_burst(rng, config.cite_mean)):
                yield ("Cites", (pid, f"p{_zipf_index(rng, index)}"))
        # Mentions: Zipf-popular entities; a slice of the extractions
        # fails entity resolution and streams as Unresolved instead.
        for _ in range(1 + _burst(rng, config.mention_mean - 1)):
            if rng.random() < config.null_rate:
                mention_id += 1
                yield ("Unresolved", (pid, f"m{mention_id}"))
            else:
                yield ("Mention", (pid, f"e{_zipf_index(rng, entities)}"))
        # Polymorphic relationship evidence between two distinct entities.
        if rng.random() < config.evidence_rate and entities > 1:
            kind = _MEDLIT_EVIDENCE[rng.randrange(len(_MEDLIT_EVIDENCE))]
            first = _zipf_index(rng, entities)
            second = _zipf_index(rng, entities)
            if first != second:
                yield (kind, (pid, f"e{first}", f"e{second}"))


def medlit_schema() -> RelationalSchema:
    """The medlit source schema (papers / citations / extractions)."""
    schema = RelationalSchema()
    for name, arity in _MEDLIT_RELATIONS:
        schema.declare(name, arity)
    return schema


@lru_cache(maxsize=None)
def medlit_setting() -> DataExchangeSetting:
    """The medlit data-exchange setting (single-symbol heads, word egds).

    Existentials model partial extraction: each resolved mention invents
    a latent concept node, unresolved mentions invent the entity itself,
    preprints invent their venue.  Both egds only ever equate nulls —
    concepts about one entity, and a paper's venue nulls (a pid never
    carries two *published* venues) — so generated tenants always chase
    to success while still producing heavy, Zipf-skewed merge pressure.
    """
    tgds = [
        parse_st_tgd(
            "Paper(p, v, y) -> (p, in_venue, v), (p, in_year, y)",
            name="paper_meta",
        ),
        parse_st_tgd("Preprint(p) -> (p, in_venue, w)", name="preprint_venue"),
        parse_st_tgd("Cites(p, q) -> (p, cites, q)", name="cites"),
        parse_st_tgd(
            "Mention(p, e) -> (p, mentions, e), (c, about, e), (p, discusses, c)",
            name="mention_concept",
        ),
        parse_st_tgd("Unresolved(p, m) -> (p, mentions, u)", name="unresolved"),
    ]
    for kind in _MEDLIT_EVIDENCE:
        label = kind.lower()
        tgds.append(
            parse_st_tgd(
                f"{kind}(p, a, b) -> (a, {label}, b), "
                "(p, mentions, a), (p, mentions, b)",
                name=f"evidence_{label}",
            )
        )
    egds = [
        # One canonical concept per entity: merges the per-mention
        # concept nulls (Zipf-head entities build the big merge classes).
        parse_egd("(x1, about, x3), (x2, about, x3) -> x1 = x2", name="concept"),
        # One venue per paper: merges a preprint's venue nulls (and a
        # null into the constant venue if the paper later publishes).
        parse_egd("(x3, in_venue, x1), (x3, in_venue, x2) -> x1 = x2", name="venue"),
    ]
    return DataExchangeSetting(
        medlit_schema(),
        {"in_venue", "in_year", "cites", "mentions", "about", "discusses",
         "treats", "causes", "interacts"},
        tgds,
        egds,
        name="medlit",
    )


_MEDLIT_QUERIES: tuple[str, ...] = (
    "cites . cites",
    "cites* . in_venue",
    "mentions- . cites",
    "discusses . about",
    "cites[mentions] . in_venue",
)


# --------------------------------------------------------------------- #
# social: preferential-attachment followers with communities
# --------------------------------------------------------------------- #

_SOCIAL_RELATIONS: tuple[tuple[str, int], ...] = (
    ("Follows", 2),    # Follows(uid, uid)
    ("Invited", 2),    # Invited(uid, uid)    — the attachment tree edge
    ("Member", 2),     # Member(uid, gid)
    ("Moderates", 2),  # Moderates(uid, gid)  — the community's founder
)

_RING_KEEP = 4  # recent members remembered per community (homophily pool)


def _social_counts(config: GeneratorConfig) -> tuple[int, int]:
    """``(users, communities)`` for a social config."""
    users = config.nodes
    communities = max(2, int(users ** 0.5) // 2 + 2)
    return users, communities


def _social_facts(config: GeneratorConfig) -> Iterator[Fact]:
    """The social fact stream: one user at a time.

    Carried state is numeric and compact — the preferential-attachment
    endpoint pool (int64 array, O(edges)) and a ``_RING_KEEP``-deep ring
    of recent members per community — never fact tuples.
    """
    rng = config.rng()
    users, communities = _social_counts(config)
    endpoints = array("q")
    rings: list[list[int]] = [[] for _ in range(communities)]
    founded = bytearray(communities)
    for index in range(users):
        uid = f"u{index}"
        # Memberships: Zipf community sizes; some users join a second.
        joined = 1 + (rng.random() < config.extra_membership_rate)
        seen: set[int] = set()
        for _ in range(joined):
            community = _zipf_index(rng, communities)
            if community in seen:
                continue
            seen.add(community)
            yield ("Member", (uid, f"g{community}"))
            if not founded[community]:
                founded[community] = 1
                yield ("Moderates", (uid, f"g{community}"))
            ring = rings[community]
            ring.append(index)
            if len(ring) > _RING_KEEP:
                del ring[0]
        if not index:
            continue
        # The invite-tree edge: preferential among existing endpoints.
        parent = (
            endpoints[rng.randrange(len(endpoints))]
            if endpoints
            else rng.randrange(index)
        )
        yield ("Invited", (f"u{parent}", uid))
        # Follower edges: preferential attachment with a uniform escape.
        for _ in range(min(index, config.attach)):
            if endpoints and rng.random() >= 0.2:
                target = endpoints[rng.randrange(len(endpoints))]
            else:
                target = rng.randrange(index)
            if target != index:
                yield ("Follows", (uid, f"u{target}"))
                endpoints.append(index)
                endpoints.append(target)
        # Homophily: one extra edge toward a recent same-community member.
        if rng.random() < config.homophily:
            ring = rings[min(seen)] if seen else []
            pool = [member for member in ring if member != index]
            if pool:
                yield ("Follows", (uid, f"u{pool[rng.randrange(len(pool))]}"))


def social_schema() -> RelationalSchema:
    """The social source schema (follower / membership relations)."""
    schema = RelationalSchema()
    for name, arity in _SOCIAL_RELATIONS:
        schema.declare(name, arity)
    return schema


@lru_cache(maxsize=None)
def social_setting() -> DataExchangeSetting:
    """The social data-exchange setting (hub/region/badge nulls).

    Every membership invents a hub, a region, and a badge null; the egd
    family quotients them down to one hub, one region per community and
    one badge per user.  All three egds merge nulls only, so the chase
    always succeeds — and all three are functional-dependency-shaped
    (``(x1, L, k), (x2, L, k) -> x1 = x2`` up to mirroring), so the
    violation queue's star fast path keeps the per-community collapse
    linear in the community size even under Zipf-skewed membership.
    """
    tgds = [
        parse_st_tgd("Follows(u, v) -> (u, follows, v)", name="follows"),
        parse_st_tgd("Invited(u, v) -> (u, invited, v)", name="invited"),
        parse_st_tgd(
            "Member(u, g) -> (u, member, g), (h, anchors, g), "
            "(g, region, r), (u, badge, b)",
            name="member",
        ),
        parse_st_tgd(
            "Moderates(u, g) -> (u, moderates, g), (u, member, g)",
            name="moderates",
        ),
    ]
    egds = [
        # One badge per user, one region per community (merged nulls are
        # the *objects*: the shared variable is the subject).
        parse_egd("(x3, badge, x1), (x3, badge, x2) -> x1 = x2", name="badge"),
        parse_egd("(x3, region, x1), (x3, region, x2) -> x1 = x2", name="region"),
        # One hub per community (merged hub nulls share the community as
        # their anchors-object).
        parse_egd("(x1, anchors, x3), (x2, anchors, x3) -> x1 = x2", name="hub"),
    ]
    return DataExchangeSetting(
        social_schema(),
        {"follows", "invited", "member", "moderates", "anchors", "region",
         "badge"},
        tgds,
        egds,
        name="social",
    )


_SOCIAL_QUERIES: tuple[str, ...] = (
    "follows . follows",
    "member . anchors-",
    "follows[moderates] . member",
    "invited . invited . invited",
    "follows . member",
)


# --------------------------------------------------------------------- #
# The family registry and the public streaming surface
# --------------------------------------------------------------------- #

_FAMILY_STREAMS: dict[str, Callable[[GeneratorConfig], Iterator[Fact]]] = {
    "medlit": _medlit_facts,
    "social": _social_facts,
}

_FAMILY_SETTINGS: dict[str, Callable[[], DataExchangeSetting]] = {
    "medlit": medlit_setting,
    "social": social_setting,
}

_FAMILY_QUERIES: dict[str, tuple[str, ...]] = {
    "medlit": _MEDLIT_QUERIES,
    "social": _SOCIAL_QUERIES,
}


def scale_setting(family: str) -> DataExchangeSetting:
    """The data-exchange setting of ``family`` (cached, immutable).

    >>> scale_setting("medlit").fragment().sat_encodable
    True
    >>> scale_setting("social").fragment().heads_single_symbols
    True
    """
    try:
        return _FAMILY_SETTINGS[family]()
    except KeyError:
        raise ValueError(
            f"unknown generator family {family!r} "
            f"(choose from {', '.join(FAMILIES)})"
        ) from None


def workload_queries(family: str) -> tuple[str, ...]:
    """The family's NRE query mix (parseable, alphabet-conformant)."""
    if family not in _FAMILY_QUERIES:
        raise ValueError(
            f"unknown generator family {family!r} "
            f"(choose from {', '.join(FAMILIES)})"
        )
    return _FAMILY_QUERIES[family]


def iter_facts(config: GeneratorConfig) -> Iterator[Fact]:
    """Stream the facts of ``config`` one by one, deterministically."""
    return _FAMILY_STREAMS[config.family](config)


def iter_fact_batches(config: GeneratorConfig) -> Iterator[list[Fact]]:
    """Stream the facts of ``config`` in ``batch_size``-sized lists.

    Batching never reorders or changes the stream — it only chunks
    :func:`iter_facts`, so consumers hold O(batch) facts at a time.

    >>> config = GeneratorConfig(family="social", nodes=50, seed=1,
    ...                          batch_size=16)
    >>> batches = list(iter_fact_batches(config))
    >>> all(len(batch) <= 16 for batch in batches)
    True
    >>> sum(batches, []) == list(iter_facts(config))
    True
    """
    batch: list[Fact] = []
    for fact in iter_facts(config):
        batch.append(fact)
        if len(batch) >= config.batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def fact_counts(config: GeneratorConfig) -> dict[str, int]:
    """Per-relation fact counts of the stream (consumes it, O(1) memory)."""
    counts: dict[str, int] = {}
    for relation, _ in iter_facts(config):
        counts[relation] = counts.get(relation, 0) + 1
    return counts


def generate_instance(config: GeneratorConfig) -> RelationalInstance:
    """Materialise the stream into a :class:`RelationalInstance`.

    Convenient below ~10^5 nodes; at the top sizes prefer the streaming
    surface (:func:`iter_fact_batches`) — that is what ``repro genscale``
    and the RSS-bounded CI checks exercise.
    """
    instance = RelationalInstance(scale_setting(config.family).source_schema)
    for relation, values in iter_facts(config):
        instance.add(relation, values)
    return instance


def scale_document(config: GeneratorConfig) -> dict:
    """The generated tenant as a wire-ready exchange document."""
    from repro.io.json_io import document_to_dict

    return document_to_dict(scale_setting(config.family), generate_instance(config))


# --------------------------------------------------------------------- #
# Deterministic update streams (soak tests, streaming benchmarks)
# --------------------------------------------------------------------- #


def update_stream(
    config: GeneratorConfig,
    batches: int,
    ops_per_batch: int = 4,
    churn: float = 0.45,
) -> Iterator[list[tuple[str, str, tuple[str, ...]]]]:
    """A deterministic insert/delete batch stream against a tenant.

    Yields ``batches`` lists of ``(op, relation, values)`` updates in
    :meth:`~repro.engine.incremental.IncrementalChase.apply_updates`
    shape.  Inserts reference the tenant's existing node-id spaces (so
    they genuinely graft onto the chased solution) under fresh stream-
    local ids; a ``churn`` fraction of operations deletes a previously
    inserted fact (delete-after-insert churn, the live-update shape the
    incremental engine optimises for).  Deterministic in ``config.seed``
    and the parameters — re-running a soak replays the same stream.
    """
    rng = random.Random((config.seed + 1) * 7919 + batches * 31 + ops_per_batch)
    fresh = _fresh_update_factory(config)
    outstanding: list[Fact] = []
    emitted = 0
    for _ in range(batches):
        batch: list[tuple[str, str, tuple[str, ...]]] = []
        for _ in range(ops_per_batch):
            if outstanding and rng.random() < churn:
                victim = outstanding.pop(rng.randrange(len(outstanding)))
                batch.append(("delete", victim[0], victim[1]))
            else:
                emitted += 1
                fact = fresh(rng, emitted)
                outstanding.append(fact)
                batch.append(("insert", fact[0], fact[1]))
        yield batch


def _fresh_update_factory(
    config: GeneratorConfig,
) -> Callable[[random.Random, int], Fact]:
    """A family-specific maker of fresh, tenant-grafting insert facts."""
    if config.family == "medlit":
        papers, entities, _ = _medlit_counts(config)

        def make_medlit(rng: random.Random, serial: int) -> Fact:
            roll = rng.random()
            if roll < 0.40:  # new mention of an existing Zipf entity
                return (
                    "Mention",
                    (f"p{_zipf_index(rng, papers)}", f"e{_zipf_index(rng, entities)}"),
                )
            if roll < 0.60:  # a fresh streamed paper enters the DAG
                return ("Preprint", (f"zp{serial}",))
            if roll < 0.80:  # a fresh citation from a streamed paper
                return ("Cites", (f"zp{serial}", f"p{_zipf_index(rng, papers)}"))
            return (  # late entity resolution lands as evidence
                "Treats",
                (f"p{_zipf_index(rng, papers)}",
                 f"e{_zipf_index(rng, entities)}",
                 f"ze{serial}"),
            )

        return make_medlit

    users, communities = _social_counts(config)

    def make_social(rng: random.Random, serial: int) -> Fact:
        roll = rng.random()
        if roll < 0.45:  # a fresh follower edge between existing users
            return (
                "Follows",
                (f"u{rng.randrange(users)}", f"u{_zipf_index(rng, users)}"),
            )
        if roll < 0.75:  # a streamed user joins a Zipf community
            return ("Member", (f"zu{serial}", f"g{_zipf_index(rng, communities)}"))
        return ("Invited", (f"u{_zipf_index(rng, users)}", f"zu{serial}"))

    return make_social
