"""Standalone gadgets: Example 3.1 / Figure 2, Example 5.2 / Figure 6,
and the Theorem 4.1 illustration ρ₀ / Figure 4.
"""

from __future__ import annotations

from repro.core.setting import DataExchangeSetting
from repro.graph.database import GraphDatabase
from repro.mappings.parser import parse_egd, parse_st_tgd
from repro.patterns.pattern import Null
from repro.relational.instance import RelationalInstance
from repro.relational.schema import RelationalSchema
from repro.scenarios.flights import flights_schema, hotel_egd
from repro.solver.cnf import CNF


def example31_setting() -> DataExchangeSetting:
    """Example 3.1: the single-symbol fragment M′_st with the hotel egd.

    M′_st : Flight(x1,x2,x3) ∧ Hotel(x1,x4) → ∃y. (x2,f,y) ∧ (y,h,x4) ∧ (y,f,x3)
    """
    st = parse_st_tgd(
        "Flight(x1, x2, x3), Hotel(x1, x4) -> (x2, f, y), (y, h, x4), (y, f, x3)",
        name="M'_st",
    )
    return DataExchangeSetting(
        flights_schema(), {"f", "h"}, [st], [hotel_egd()], name="Example3.1"
    )


def figure2_expected_graph() -> GraphDatabase:
    """Figure 2: the chased solution of Example 3.1 (up to null renaming).

    The hotel egd merges the cities invented for the two hx stops into one
    null (here ``NB``); hy's city stays separate (``NA``).  Five f edges,
    two h edges, as drawn.
    """
    na, nb = Null("NA"), Null("NB")
    return GraphDatabase(
        alphabet={"f", "h"},
        edges=[
            ("c1", "f", na),
            (na, "h", "hy"),
            (na, "f", "c2"),
            ("c1", "f", nb),
            ("c3", "f", nb),
            (nb, "h", "hx"),
            (nb, "f", "c2"),
        ],
    )


# --------------------------------------------------------------------- #
# Example 5.2 / Figure 6: a successful chase with no solutions
# --------------------------------------------------------------------- #


def example52_setting() -> DataExchangeSetting:
    """Example 5.2: Σ = {a, b, c}, one s-t tgd, one all-collapsing egd.

    * s-t tgd:  R(x) ∧ P(y) → (x, a·(b*+c*)·a, y)
    * egd:      (x, a+b+c, y) → x = y

    The adapted chase succeeds (the composite NRE is opaque to egd
    matching), yet no solution exists: the egd forces every edge of a
    solution to be a self-loop, so no path can connect the distinct
    constants c1 and c2 — the loop-collapse refutation of
    :mod:`repro.core.existence` decides this exactly.
    """
    schema = RelationalSchema()
    schema.declare("R", 1)
    schema.declare("P", 1)
    st = parse_st_tgd("R(x), P(y) -> (x, a . (b* + c*) . a, y)", name="st-5.2")
    egd = parse_egd("(x, a + b + c, y) -> x = y", name="egd-5.2")
    return DataExchangeSetting(schema, {"a", "b", "c"}, [st], [egd], name="Example5.2")


def example52_instance() -> RelationalInstance:
    """The instance {R(c1), P(c2)} of Example 5.2."""
    setting_schema = example52_setting().source_schema
    return RelationalInstance(
        setting_schema, {"R": [("c1",)], "P": [("c2",)]}
    )


def figure6b_graph() -> GraphDatabase:
    """Figure 6(b): the canonical instantiation c1 ─a→ N ─a→ c2.

    It satisfies the s-t tgd (witnessing b*/c* zero times) but cannot be
    repaired into a solution: the egd would merge the constants c1 and c2.
    """
    return GraphDatabase(
        alphabet={"a", "b", "c"},
        edges=[("c1", "a", "N"), ("N", "a", "c2")],
    )


# --------------------------------------------------------------------- #
# Theorem 4.1 illustration: ρ₀ and Figure 4
# --------------------------------------------------------------------- #


def rho0_formula() -> CNF:
    """ρ₀ = (x1 ∨ ¬x2 ∨ x3) ∧ (¬x1 ∨ x3 ∨ ¬x4) — the paper's example."""
    cnf = CNF()
    cnf.variable_count = 4
    cnf.add_clause([1, -2, 3])
    cnf.add_clause([-1, 3, -4])
    return cnf


def figure4_graph() -> GraphDatabase:
    """Figure 4: the solution encoding v(x1)=v(x2)=true, v(x3)=v(x4)=false.

    One ``a`` edge c1 → c2 plus the valuation's self-loops t1, t2, f3, f4
    on c1.
    """
    return GraphDatabase(
        alphabet={"a", "t1", "f1", "t2", "f2", "t3", "f3", "t4", "f4"},
        edges=[
            ("c1", "a", "c2"),
            ("c1", "t1", "c1"),
            ("c1", "t2", "c1"),
            ("c1", "f3", "c1"),
            ("c1", "f4", "c1"),
        ],
    )
