"""The paper's worked examples and synthetic workload generators.

* :mod:`repro.scenarios.flights` — the running Flight/Hotel example
  (Example 2.2 with Figures 1 and 5, Example 3.1 with Figure 2,
  Example 3.2 with Figure 3, Examples 5.1/5.4 with Figure 7);
* :mod:`repro.scenarios.figures` — the remaining standalone gadgets:
  Example 5.2 / Figure 6 (successful chase without solutions) and the
  Figure 4 valuation graph of the Theorem 4.1 illustration;
* :mod:`repro.scenarios.generators` — random Flight/Hotel instances and
  random graphs/NREs for the scaling and differential benchmarks;
* :mod:`repro.scenarios.scale` — the deterministic, streamable scale
  workload families (``medlit`` knowledge graphs, ``social``
  preferential-attachment networks) behind ``repro genscale`` and the
  scale-stress harness;
* :mod:`repro.scenarios.service_workload` — the parameterised
  multi-tenant serving workload (settings × instances × query mixes)
  behind the service benchmarks, smoke tests, and examples.
"""

from repro.scenarios.flights import (
    flights_schema,
    flights_instance,
    flights_alphabet,
    flights_st_tgd,
    hotel_egd,
    hotel_sameas,
    setting_omega,
    setting_omega_prime,
    setting_no_constraints,
    graph_g1,
    graph_g2,
    graph_g3,
    example_query,
    paper_answers_g1,
    paper_answers_g2,
    paper_certain_omega,
    paper_certain_omega_prime,
    figure5_expected_pattern,
    figure7_graph,
)
from repro.scenarios.figures import (
    example31_setting,
    figure2_expected_graph,
    example52_setting,
    example52_instance,
    figure6b_graph,
    rho0_formula,
    figure4_graph,
)
from repro.scenarios.generators import (
    random_flights_instance,
    random_graph,
    random_nre,
    resolve_rng,
)
from repro.scenarios.scale import (
    FAMILIES,
    GeneratorConfig,
    fact_counts,
    generate_instance,
    iter_fact_batches,
    iter_facts,
    scale_document,
    scale_setting,
    update_stream,
    workload_queries,
)
from repro.scenarios.service_workload import (
    QUERY_MIXES,
    WorkloadCase,
    cold_documents,
    demo_document,
    multi_tenant_workload,
)

__all__ = [
    "flights_schema",
    "flights_instance",
    "flights_alphabet",
    "flights_st_tgd",
    "hotel_egd",
    "hotel_sameas",
    "setting_omega",
    "setting_omega_prime",
    "setting_no_constraints",
    "graph_g1",
    "graph_g2",
    "graph_g3",
    "example_query",
    "paper_answers_g1",
    "paper_answers_g2",
    "paper_certain_omega",
    "paper_certain_omega_prime",
    "figure5_expected_pattern",
    "figure7_graph",
    "example31_setting",
    "figure2_expected_graph",
    "example52_setting",
    "example52_instance",
    "figure6b_graph",
    "rho0_formula",
    "figure4_graph",
    "random_flights_instance",
    "random_graph",
    "random_nre",
    "resolve_rng",
    "FAMILIES",
    "GeneratorConfig",
    "fact_counts",
    "generate_instance",
    "iter_fact_batches",
    "iter_facts",
    "scale_document",
    "scale_setting",
    "update_stream",
    "workload_queries",
    "QUERY_MIXES",
    "WorkloadCase",
    "cold_documents",
    "demo_document",
    "multi_tenant_workload",
]
