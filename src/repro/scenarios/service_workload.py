"""The multi-tenant serving workload: settings × instances × query mixes.

The service benchmarks, the CI smoke job, and the service examples all
need the same thing — a reproducible stream of *distinct* exchange
documents with known-good query mixes, shaped like multi-tenant traffic:
several tenants, each with its own data-exchange setting, several
instances per tenant, and a repertoire of NRE queries per case.  This
module is that stream, parameterised and seeded.

Tenants cycle through the paper's three constraint regimes (they exercise
three different engine paths):

* ``egd``    — Ω with the hotel egd: existence via the chase + candidate
  search, certain answers via the minimal-solution enumeration;
* ``sameas`` — Ω′ with the hotel sameAs constraint: the Section 4.2
  constructive algorithm;
* ``free``   — no target constraints: pattern instantiation.

:func:`cold_documents` additionally manufactures a stream of documents
with pairwise-distinct instance fingerprints (a unique tag fact each), so
latency/throughput measurements can force a cache-cold universe per
request.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.setting import DataExchangeSetting
from repro.io.json_io import document_to_dict
from repro.relational.instance import RelationalInstance
from repro.scenarios.flights import (
    flights_instance,
    setting_no_constraints,
    setting_omega,
    setting_omega_prime,
)
from repro.scenarios.generators import random_flights_instance

QUERY_MIXES: dict[str, tuple[str, ...]] = {
    "paper": ("f . f*[h] . f- . (f-)*", "h . h", "f . f-"),
    "stars": ("f*", "f . f*", "(f + h) . (f- + h-)"),
    "words": ("f . f-", "h", "f . h"),
}
"""Named query repertoires, each exercising different NRE operators."""


@dataclass(frozen=True, eq=False)
class WorkloadCase:
    """One (tenant, instance, query mix) cell of the workload grid."""

    name: str
    tenant: str
    mix: str
    setting: DataExchangeSetting
    instance: RelationalInstance
    queries: tuple[str, ...]

    def document(self) -> dict:
        """The wire-ready exchange document for this case."""
        return document_to_dict(self.setting, self.instance)


_TENANTS: tuple[tuple[str, object], ...] = (
    ("egd", setting_omega),
    ("sameas", setting_omega_prime),
    ("free", setting_no_constraints),
)


def multi_tenant_workload(
    tenants: int = 3,
    instances_per_tenant: int = 2,
    seed: int = 7,
    flights: int = 3,
    cities: int = 3,
    hotels: int = 2,
) -> list[WorkloadCase]:
    """Build the workload grid: ``tenants × instances_per_tenant`` cases.

    Deterministic in ``seed``.  The first instance of every tenant is the
    paper's Example 2.2 instance (so pinned expectations stay checkable);
    the rest are small random Flight/Hotel instances.  Query mixes rotate
    through :data:`QUERY_MIXES` so consecutive cases stress different
    evaluation paths.
    """
    rng = random.Random(seed)
    mix_names = sorted(QUERY_MIXES)
    cases: list[WorkloadCase] = []
    for tenant_index in range(tenants):
        tenant_name, make_setting = _TENANTS[tenant_index % len(_TENANTS)]
        setting = make_setting()
        for instance_index in range(instances_per_tenant):
            if instance_index == 0:
                instance = flights_instance()
            else:
                instance = random_flights_instance(
                    flights, cities=cities, hotels=hotels, max_stops=2, rng=rng
                )
            mix = mix_names[(tenant_index + instance_index) % len(mix_names)]
            cases.append(
                WorkloadCase(
                    name=f"t{tenant_index}-{tenant_name}-i{instance_index}-{mix}",
                    tenant=f"t{tenant_index}-{tenant_name}",
                    mix=mix,
                    setting=setting,
                    instance=instance,
                    queries=QUERY_MIXES[mix],
                )
            )
    return cases


def case_requests(
    case: WorkloadCase, backends: tuple[str, ...] = ("dict",)
) -> list[tuple[str, dict]]:
    """The ``(op, params)`` request list one workload case replays.

    One ``exists``, one ``chase``, and — per storage backend in
    ``backends`` — one ``evaluate_batch`` plus one whole-set ``certain``
    per query of the case's mix.  Listing more than one backend is how
    the differential consumers (``examples/service_client.py``, the
    service tests) assert that ``dict`` and ``csr`` evaluation return
    byte-identical answers over live traffic.
    """
    document = case.document()
    requests: list[tuple[str, dict]] = [
        ("exists", {"document": document, "star_bound": 2,
                    "engine": "compiled", "solver": None}),
        ("chase", {"document": document}),
    ]
    for backend in backends:
        requests.append(
            ("evaluate_batch", {"document": document,
                                "queries": list(case.queries),
                                "star_bound": 2, "engine": "compiled",
                                "backend": backend, "solver": None})
        )
        requests.extend(
            ("certain", {"document": document, "query": query, "pair": None,
                         "star_bound": 2, "engine": "compiled",
                         "backend": backend, "solver": None})
            for query in case.queries
        )
    return requests


def logical_request_key(op: str, params: dict) -> bytes:
    """The identity of a request *modulo storage backend*.

    Two requests with equal keys must produce byte-identical responses
    whatever ``backend`` they ran on — the invariant the differential
    consumers of :func:`case_requests` (``examples/service_client.py``
    and the service handler tests) assert over live traffic.  Defined
    here, next to the request generator, so both sides compare the same
    thing.
    """
    from repro.service.protocol import canonical_bytes

    return canonical_bytes(
        {"op": op,
         "params": {k: v for k, v in params.items() if k != "backend"}}
    )


def demo_document() -> dict:
    """The paper's running example as a wire-ready exchange document."""
    return document_to_dict(setting_omega(), flights_instance())


def cold_documents(
    count: int,
    seed: int = 11,
    flights: int = 2,
    cities: int = 3,
    hotels: int = 2,
) -> list[dict]:
    """``count`` Ω-documents with pairwise-distinct instance fingerprints.

    Each document carries a unique tag flight (``coldNNNN``), so every
    per-universe cache in the stack — the service result cache aside, the
    SAT pipelines and the engine's cross-candidate cache are all keyed by
    instance fingerprint — sees a never-before-seen universe.  This is the
    cache-cold request stream for the latency and throughput benchmarks.
    """
    rng = random.Random(seed)
    setting = setting_omega()
    documents: list[dict] = []
    for index in range(count):
        instance = random_flights_instance(
            flights, cities=cities, hotels=hotels, max_stops=2, rng=rng
        )
        instance.add("Flight", (f"cold{index:04d}", "c1", "c2"))
        documents.append(document_to_dict(setting, instance))
    return documents
