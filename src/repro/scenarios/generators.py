"""Synthetic workload generators for the scaling benchmarks.

The paper ships no datasets, so the benchmark harness drives the engines
with three random families (parameters documented in EXPERIMENTS.md):

* :func:`random_flights_instance` — Flight/Hotel instances generalising the
  running example: ``flights`` flights over ``cities`` cities with up to
  ``max_stops`` hotel stops each, drawn from ``hotels`` hotels.  Shared
  hotels across flights are what make the hotel egd fire, so the
  ``hotels``/``flights`` ratio controls merge pressure;
* :func:`random_graph` — Erdős–Rényi-style edge-labeled graphs for the NRE
  engine benchmarks;
* :func:`random_nre` — random NRE ASTs of bounded depth for differential
  testing and throughput measurements.
"""

from __future__ import annotations

import random
import warnings

from repro.graph.database import GraphDatabase
from repro.graph.nre import (
    NRE,
    backward,
    concat,
    epsilon,
    label,
    nest,
    star,
    union,
)
from repro.relational.instance import RelationalInstance
from repro.scenarios.flights import flights_schema
from repro.scenarios.scale import GeneratorConfig


def resolve_rng(
    rng: random.Random | None = None,
    seed: int | None = None,
    config: GeneratorConfig | None = None,
) -> random.Random:
    """One seeding convention for every random family in this module.

    Precedence mirrors the scalable families' :class:`GeneratorConfig`
    surface: an explicit ``rng`` wins, else ``seed`` builds a fresh
    ``random.Random(seed)``, else ``config`` contributes ``config.rng()``
    (positioned at the stream start), else the generator is unseeded.
    Passing ``rng`` together with ``seed``/``config`` is ambiguous and
    rejected.
    """
    if rng is not None:
        if seed is not None or config is not None:
            raise ValueError("pass either rng or seed/config, not both")
        return rng
    if seed is not None:
        if config is not None:
            raise ValueError("pass either seed or config, not both")
        return random.Random(seed)
    if config is not None:
        return config.rng()
    return random.Random()


def random_flights_instance(
    flights: int,
    *deprecated_positional,
    cities: int | None = None,
    hotels: int | None = None,
    max_stops: int = 2,
    rng: random.Random | None = None,
    seed: int | None = None,
    config: GeneratorConfig | None = None,
) -> RelationalInstance:
    """Return a random Flight/Hotel instance over the Example 2.2 schema.

    Source and destination cities are distinct when ``cities ≥ 2``; each
    flight gets 1..``max_stops`` hotel stops.  Seeding follows the shared
    :func:`resolve_rng` convention (``rng`` / ``seed`` / a scalable-family
    :class:`~repro.scenarios.scale.GeneratorConfig`).  Positional
    ``cities``/``hotels``/``max_stops`` still work but are deprecated —
    spell them as keywords.
    """
    if deprecated_positional:
        warnings.warn(
            "positional cities/hotels/max_stops arguments to "
            "random_flights_instance are deprecated; pass them as keywords",
            DeprecationWarning,
            stacklevel=2,
        )
        if len(deprecated_positional) > 3:
            raise TypeError(
                "random_flights_instance takes at most 4 positional arguments"
            )
        positional = dict(
            zip(("cities", "hotels", "max_stops"), deprecated_positional)
        )
        if "cities" in positional:
            if cities is not None:
                raise TypeError("cities passed both positionally and by keyword")
            cities = positional["cities"]
        if "hotels" in positional:
            if hotels is not None:
                raise TypeError("hotels passed both positionally and by keyword")
            hotels = positional["hotels"]
        if "max_stops" in positional:
            max_stops = positional["max_stops"]
    if cities is None or hotels is None:
        raise TypeError("random_flights_instance requires cities= and hotels=")
    generator = resolve_rng(rng, seed, config)
    instance = RelationalInstance(flights_schema())
    city_names = [f"c{i}" for i in range(1, cities + 1)]
    hotel_names = [f"h{i}" for i in range(1, hotels + 1)]
    for index in range(1, flights + 1):
        flight_id = f"{index:02d}"
        src = generator.choice(city_names)
        if len(city_names) > 1:
            dest = generator.choice([c for c in city_names if c != src])
        else:
            dest = src
        instance.add("Flight", (flight_id, src, dest))
        for _ in range(generator.randint(1, max_stops)):
            instance.add("Hotel", (flight_id, generator.choice(hotel_names)))
    return instance


def random_graph(
    nodes: int,
    edges: int,
    alphabet: tuple[str, ...] = ("a", "b", "c"),
    rng: random.Random | None = None,
    seed: int | None = None,
) -> GraphDatabase:
    """Return a random edge-labeled graph with ``nodes`` nodes, ``edges`` edges."""
    generator = resolve_rng(rng, seed)
    node_names = [f"n{i}" for i in range(nodes)]
    graph = GraphDatabase(alphabet=set(alphabet), nodes=node_names)
    for _ in range(edges):
        graph.add_edge(
            generator.choice(node_names),
            generator.choice(alphabet),
            generator.choice(node_names),
        )
    return graph


def random_fragment_setting(
    rng: random.Random | None = None,
    max_labels: int = 4,
    max_tgds: int = 2,
    max_egds: int = 3,
    max_facts: int = 3,
    seed: int | None = None,
):
    """Return a random (setting, instance) pair in the Theorem 4.1 fragment.

    Heads are unions of 1–2 symbols over ≤ ``max_labels`` labels (with
    optional existentials), egd bodies are words of length 1–2; instances
    hold ≤ ``max_facts`` binary facts over three constants.  Settings from
    this family are exactly where the SAT-based existence decision is
    *complete*, so they drive the differential test pitting it against the
    enumeration back-end.
    """
    from repro.core.setting import DataExchangeSetting
    from repro.graph.cnre import CNREAtom, CNREQuery
    from repro.graph.nre import concat, label, union as nre_union
    from repro.mappings.egd import TargetEgd
    from repro.mappings.stt import SourceToTargetTgd
    from repro.relational.query import ConjunctiveQuery, RelationalAtom, Variable
    from repro.relational.schema import RelationalSchema

    generator = resolve_rng(rng, seed)
    labels = [f"l{i}" for i in range(1, generator.randint(2, max_labels) + 1)]
    constants = ["k1", "k2", "k3"]

    schema = RelationalSchema()
    schema.declare("R", 2)
    instance = RelationalInstance(schema)
    for _ in range(generator.randint(1, max_facts)):
        instance.add(
            "R", (generator.choice(constants), generator.choice(constants))
        )

    x, y, z = Variable("x"), Variable("y"), Variable("z")
    tgds = []
    for index in range(generator.randint(1, max_tgds)):
        atoms = [CNREAtom(x, _random_symbol_union(labels, generator), y)]
        if generator.random() < 0.5:
            target = z if generator.random() < 0.5 else x
            atoms.append(
                CNREAtom(y, _random_symbol_union(labels, generator), target)
            )
        tgds.append(
            SourceToTargetTgd(
                ConjunctiveQuery([RelationalAtom("R", (x, y))]),
                CNREQuery(atoms),
                name=f"tgd{index}",
            )
        )

    egds = []
    for index in range(generator.randint(0, max_egds)):
        word_labels = [
            generator.choice(labels)
            for _ in range(generator.randint(1, 2))
        ]
        body = CNREQuery(
            [CNREAtom(x, concat(*(label(l) for l in word_labels)), y)]
        )
        egds.append(TargetEgd(body, x, y, name=f"egd{index}"))

    setting = DataExchangeSetting(schema, labels, tgds, egds, name="random-fragment")
    return setting, instance


def _random_symbol_union(labels, generator: random.Random):
    from repro.graph.nre import label, union as nre_union

    chosen = generator.sample(labels, generator.randint(1, min(2, len(labels))))
    return nre_union(*(label(l) for l in chosen))


def random_nre(
    depth: int = 3,
    alphabet: tuple[str, ...] = ("a", "b", "c"),
    rng: random.Random | None = None,
    allow_nest: bool = True,
    seed: int | None = None,
) -> NRE:
    """Return a random NRE of at most ``depth`` combinator levels.

    Leaves are ε, forward, and backward labels; inner nodes pick among
    union, concatenation, star, and (optionally) nesting.  Used for the
    differential tests between the two NRE evaluators — every grammar
    production is reachable.
    """
    generator = resolve_rng(rng, seed)
    if depth <= 0:
        kind = generator.randrange(5)
        if kind == 0:
            return epsilon()
        name = generator.choice(alphabet)
        return label(name) if kind < 4 else backward(name)
    kind = generator.randrange(8 if allow_nest else 7)
    if kind in (0, 1):
        return union(
            random_nre(depth - 1, alphabet, generator, allow_nest),
            random_nre(depth - 1, alphabet, generator, allow_nest),
        )
    if kind in (2, 3):
        return concat(
            random_nre(depth - 1, alphabet, generator, allow_nest),
            random_nre(depth - 1, alphabet, generator, allow_nest),
        )
    if kind in (4, 5):
        return star(random_nre(depth - 1, alphabet, generator, allow_nest))
    if kind == 6:
        return random_nre(depth - 1, alphabet, generator, allow_nest)
    return nest(random_nre(depth - 1, alphabet, generator, allow_nest))
