"""Graph-to-graph homomorphisms.

A homomorphism ``h : G → G′`` between edge-labeled graphs maps nodes to
nodes such that every edge ``(u, a, v)`` of G has ``(h(u), a, h(v))`` in G′.
Optionally a set of *frozen* nodes is mapped identically — the variant
classical data exchange uses: a universal solution maps into every solution
by a homomorphism that is the identity on constants.

This module backs the library's *tests* of universality (the chased graph
of the Section 3.1 fragment must map into every solution) and is generally
useful when working with solutions as first-class objects.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from repro.graph.database import GraphDatabase

Node = Hashable
Homomorphism = dict[Node, Node]


def graph_homomorphisms(
    source: GraphDatabase,
    target: GraphDatabase,
    frozen: Iterable[Node] = (),
) -> Iterator[Homomorphism]:
    """Yield homomorphisms ``source → target`` (identity on ``frozen``).

    Backtracking over source nodes, most-constrained first (by degree),
    with per-node candidate sets prefiltered by label-degree compatibility.
    Worst-case exponential (graph homomorphism is NP-complete); intended
    for the library's small solution graphs.
    """
    # Identity is required only on frozen nodes that the source actually
    # has; callers may pass a broader constant set (e.g. the full active
    # domain of an instance).
    frozen_set = set(frozen) & set(source.nodes())
    target_nodes = target.nodes()
    for node in frozen_set:
        if node not in target_nodes:
            return

    source_nodes = sorted(source.nodes(), key=repr)
    out_labels: dict[Node, set[str]] = {n: set() for n in source_nodes}
    in_labels: dict[Node, set[str]] = {n: set() for n in source_nodes}
    for edge in source.edges():
        out_labels[edge.source].add(edge.label)
        in_labels[edge.target].add(edge.label)

    def candidates(node: Node) -> list[Node]:
        if node in frozen_set:
            return [node]
        result = []
        for candidate in target_nodes:
            # Degree compatibility straight off the adjacency indexes —
            # no successor/predecessor sets are materialised.
            if all(
                target.has_successor(candidate, lab) for lab in out_labels[node]
            ) and all(
                target.has_predecessor(candidate, lab) for lab in in_labels[node]
            ):
                result.append(candidate)
        return sorted(result, key=repr)

    domains = {node: candidates(node) for node in source_nodes}
    if any(not domain for domain in domains.values()):
        return
    order = sorted(source_nodes, key=lambda n: len(domains[n]))
    edges = list(source.edges())

    def consistent(assignment: Homomorphism) -> bool:
        for edge in edges:
            if edge.source in assignment and edge.target in assignment:
                if not target.has_edge(
                    assignment[edge.source], edge.label, assignment[edge.target]
                ):
                    return False
        return True

    def assign(index: int, assignment: Homomorphism) -> Iterator[Homomorphism]:
        if index == len(order):
            yield dict(assignment)
            return
        node = order[index]
        for candidate in domains[node]:
            assignment[node] = candidate
            if consistent(assignment):
                yield from assign(index + 1, assignment)
            del assignment[node]

    yield from assign(0, {})


def find_graph_homomorphism(
    source: GraphDatabase,
    target: GraphDatabase,
    frozen: Iterable[Node] = (),
) -> Homomorphism | None:
    """Return one homomorphism ``source → target``, or ``None``."""
    for hom in graph_homomorphisms(source, target, frozen):
        return hom
    return None


def is_homomorphic(
    source: GraphDatabase,
    target: GraphDatabase,
    frozen: Iterable[Node] = (),
) -> bool:
    """Return whether some homomorphism ``source → target`` exists."""
    return find_graph_homomorphism(source, target, frozen) is not None
