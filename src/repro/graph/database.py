"""Directed edge-labeled graph databases.

An instance over a target schema (finite alphabet) Σ is a directed,
edge-labeled graph ``G = (V, E)`` with ``V`` a finite set of node ids and
``E ⊆ V × Σ × V`` (paper, Section 2).  Nodes are arbitrary hashable values;
labels are strings.

:class:`GraphDatabase` is the *logical* graph — the single data model every
chase, query engine, and serialisation layer speaks.  The *physical*
representation lives behind the pluggable storage backends of
:mod:`repro.graph.backends`:

* the default :class:`~repro.graph.backends.DictBackend` keeps per-label
  hash adjacency in both directions, any-label incident-edge indexes
  (``edges_from`` / ``edges_to`` / ``incident_edges``) so the chase engine
  can find every edge touching a node in O(degree), and an append-only
  *edge journal* (``version`` / ``edges_since``) that makes semi-naive
  (delta) chase iteration possible;
* :meth:`GraphDatabase.freeze` compiles the graph into the read-optimized
  :class:`~repro.graph.backends.CsrBackend` — nodes and labels interned to
  dense integer ids, per-label adjacency as sorted CSR arrays — which the
  product-automaton evaluator traverses with an integer-id fast path.
  Frozen graphs refuse mutation (:class:`~repro.errors.FrozenGraphError`)
  and round-trip through the version-stamped snapshot files of
  :mod:`repro.graph.snapshot`; :meth:`GraphDatabase.thaw` goes back to a
  mutable dict-backed copy with the journal (hence the content
  fingerprint) preserved.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from repro.graph.backends import (
    CsrBackend,
    DictBackend,
    Edge,
    Fingerprint,
    StorageBackend,
)

Node = Hashable
LabelName = str

__all__ = [
    "Edge",
    "Fingerprint",
    "GraphDatabase",
    "LabelName",
    "Node",
]


class GraphDatabase:
    """A finite directed edge-labeled graph with fast per-label adjacency.

    ``alphabet`` optionally fixes the target schema Σ; when provided, adding
    an edge with a label outside Σ raises :class:`~repro.errors.SchemaError`.
    When omitted, the alphabet is open and grows with the edges.

    >>> g = GraphDatabase(alphabet={"f", "h"})
    >>> g.add_edge("c1", "f", "c2")
    >>> g.has_edge("c1", "f", "c2")
    True
    >>> sorted(g.successors("c1", "f"))
    ['c2']

    Storage is pluggable (see :mod:`repro.graph.backends`): every graph
    starts on the mutation-friendly dict backend; :meth:`freeze` compiles
    it into the read-optimized interned-CSR backend for query-heavy use:

    >>> frozen = g.freeze()
    >>> frozen.backend_name, frozen.is_frozen
    ('csr', True)
    >>> sorted(frozen.successors("c1", "f")) == sorted(g.successors("c1", "f"))
    True
    """

    __slots__ = ("_backend",)

    def __init__(
        self,
        alphabet: Iterable[LabelName] | None = None,
        nodes: Iterable[Node] = (),
        edges: Iterable[tuple[Node, LabelName, Node]] = (),
    ):
        self._backend: StorageBackend = DictBackend(alphabet)
        for node in nodes:
            self._backend.add_node(node)
        for source, lab, target in edges:
            self._backend.add_edge(source, lab, target)

    # ------------------------------------------------------------------ #
    # Storage backend surface
    # ------------------------------------------------------------------ #

    @classmethod
    def _from_backend(cls, backend: StorageBackend) -> "GraphDatabase":
        """Wrap an already-populated storage backend (internal)."""
        graph = cls.__new__(cls)
        graph._backend = backend
        return graph

    @property
    def backend(self) -> StorageBackend:
        """The live storage backend behind this graph (read its ``name``)."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """The storage backend identifier: ``"dict"`` or ``"csr"``.

        >>> GraphDatabase().backend_name
        'dict'
        """
        return self._backend.name

    @property
    def is_frozen(self) -> bool:
        """Whether this graph is on a read-only (CSR) backend.

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> g.is_frozen, g.freeze().is_frozen
        (False, True)
        """
        return not self._backend.mutable

    @property
    def csr(self) -> CsrBackend | None:
        """The CSR backend when frozen, else ``None`` (the fast-path probe).

        The product-automaton runner (:mod:`repro.graph.automaton`) calls
        this once per graph binding: a non-``None`` result switches the
        search loop to interned integer ids and CSR slice expansion.
        """
        backend = self._backend
        return backend if isinstance(backend, CsrBackend) else None

    def freeze(self) -> "GraphDatabase":
        """Return a read-optimized (interned CSR) view of this graph.

        The frozen graph has identical content, journal, and fingerprint,
        so query-engine caches keyed on :meth:`fingerprint` treat the two
        interchangeably — compile the chased result once, query it many
        times.  Freezing a frozen graph returns it unchanged.

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> frozen = g.freeze()
        >>> frozen.edges() == g.edges()
        True
        >>> frozen.fingerprint() == g.fingerprint()
        True
        >>> frozen.freeze() is frozen
        True
        """
        if self.is_frozen:
            return self
        return GraphDatabase._from_backend(CsrBackend.from_backend(self._backend))

    def refreeze(
        self, edges: Iterable[tuple[Node, LabelName, Node] | Edge] = ()
    ) -> "GraphDatabase":
        """Return a frozen graph extended with ``edges`` by journal replay.

        The incremental counterpart of :meth:`freeze` for warm serving
        paths: a frozen graph that gains an update batch does **not** pay a
        full thaw/re-freeze — only the labels the batch touches rebuild
        their CSR buffers (:meth:`~repro.graph.backends.CsrBackend.extended`),
        and the resulting fingerprint equals a cold freeze of a dict graph
        that applied the same insertions.  Duplicate edges (already present
        or repeated in the batch) are skipped like ``add_edge`` would; a
        batch with no effective insertions returns ``self`` unchanged, so
        fingerprints — and every cache keyed on them — survive no-op update
        batches.  A mutable graph is frozen first.

        >>> g = GraphDatabase(edges=[("u", "a", "v")]).freeze()
        >>> g.refreeze([]) is g
        True
        >>> bigger = g.refreeze([("v", "a", "w")])
        >>> bigger.is_frozen, sorted(str(e) for e in bigger.edges())
        (True, ['(u -a-> v)', '(v -a-> w)'])
        >>> twin = GraphDatabase(edges=[("u", "a", "v"), ("v", "a", "w")])
        >>> bigger.fingerprint() == twin.fingerprint()
        True
        """
        batch = [
            edge if isinstance(edge, Edge) else Edge(*edge) for edge in edges
        ]
        base = self if self.is_frozen else self.freeze()
        backend = base.csr.extended(batch)  # type: ignore[union-attr]
        if backend is base.backend:
            return base
        return GraphDatabase._from_backend(backend)

    def thaw(self) -> "GraphDatabase":
        """Return a mutable dict-backed copy of this graph.

        For non-destructive sources the edge journal is replayed in order,
        so the thawed copy carries the same fingerprint as the frozen one
        (``freeze``/``thaw`` round-trips are content- *and* cache-exact).
        Graphs that had destructively mutated before freezing rebuild from
        the edge set and stay fingerprint-less.  Thawing a mutable graph
        returns an independent copy.

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> thawed = g.freeze().thaw()
        >>> thawed.is_frozen
        False
        >>> thawed.fingerprint() == g.fingerprint()
        True
        """
        source = self._backend
        backend = DictBackend(source.declared_alphabet())
        if source.destructive:
            for edge in sorted(source.edges(), key=repr):
                backend.add_edge(edge.source, edge.label, edge.target)
            backend._destructive = True
        else:
            for edge in source.journal():
                backend.add_edge(edge.source, edge.label, edge.target)
        for node in source.nodes():
            backend.add_node(node)
        return GraphDatabase._from_backend(backend)

    # ------------------------------------------------------------------ #
    # Schema
    # ------------------------------------------------------------------ #

    @property
    def alphabet(self) -> frozenset[LabelName]:
        """The declared alphabet, or the set of labels in use if undeclared."""
        declared = self._backend.declared_alphabet()
        if declared is not None:
            return declared
        return self._backend.labels()

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add_node(self, node: Node) -> None:
        """Add an isolated node (idempotent).

        Raises :class:`~repro.errors.FrozenGraphError` on a frozen graph.
        """
        self._backend.add_node(node)

    def add_edge(self, source: Node, lab: LabelName, target: Node) -> None:
        """Add the edge ``(source, lab, target)``; endpoints are auto-added.

        Raises :class:`~repro.errors.FrozenGraphError` on a frozen graph.
        """
        self._backend.add_edge(source, lab, target)

    def remove_edge(self, source: Node, lab: LabelName, target: Node) -> None:
        """Remove an edge if present; endpoints stay in the node set.

        Raises :class:`~repro.errors.FrozenGraphError` on a frozen graph.
        """
        self._backend.remove_edge(source, lab, target)

    def rename_node(self, old: Node, new: Node) -> frozenset[Edge]:
        """Rename ``old`` to ``new`` in place, rewriting incident edges.

        Returns the rewritten edges (as they read *after* the rename) so
        that callers can re-match triggers against exactly the part of the
        graph that changed.  Unlike the copy-based approach this is
        O(degree(old)), not O(|E|).  Renaming a node onto itself or an
        unknown node is a no-op.  Raises
        :class:`~repro.errors.FrozenGraphError` on a frozen graph.

        >>> g = GraphDatabase(edges=[("u", "a", "x"), ("w", "b", "x")])
        >>> sorted(str(e) for e in g.rename_node("x", "y"))
        ['(u -a-> y)', '(w -b-> y)']
        >>> g.has_edge("u", "a", "x")
        False
        """
        return self._backend.rename_node(old, new)

    def discard_node(self, node: Node) -> None:
        """Remove an *isolated* node from the node set (absent: no-op).

        Raises :class:`~repro.errors.SchemaError` while ``node`` still has
        incident edges and :class:`~repro.errors.FrozenGraphError` on a
        frozen graph.  Like :meth:`remove_edge` this is a destructive
        mutation: the graph stops being fingerprintable.  The incremental
        chase uses it to drop merged nodes whose last supporting base edge
        was retracted.

        >>> g = GraphDatabase(nodes=["u"], edges=[("v", "a", "w")])
        >>> g.discard_node("u")
        >>> sorted(g.nodes())
        ['v', 'w']
        """
        self._backend.discard_node(node)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def has_edge(self, source: Node, lab: LabelName, target: Node) -> bool:
        """Return whether the edge ``(source, lab, target)`` is present."""
        return self._backend.has_edge(source, lab, target)

    def nodes(self) -> frozenset[Node]:
        """Return the node set."""
        return self._backend.nodes()

    def edges(self) -> frozenset[Edge]:
        """Return the edge set."""
        return self._backend.edges()

    def successors(self, node: Node, lab: LabelName) -> frozenset[Node]:
        """Return ``{v | (node, lab, v) ∈ E}``."""
        return self._backend.successors(node, lab)

    def predecessors(self, node: Node, lab: LabelName) -> frozenset[Node]:
        """Return ``{u | (u, lab, node) ∈ E}``."""
        return self._backend.predecessors(node, lab)

    def edges_with_label(self, lab: LabelName) -> frozenset[tuple[Node, Node]]:
        """Return all ``(u, v)`` pairs with an edge labeled ``lab``."""
        return frozenset(self._backend.iter_label_pairs(lab))

    def forward_index(self, lab: LabelName) -> dict[Node, set[Node]]:
        """Return the live forward adjacency index for ``lab`` — READ ONLY.

        Unlike :meth:`successors` this copies nothing: the returned mapping
        is the backend's own index (``node → set of successors``), shared
        for the lifetime of the graph.  Callers must not mutate it and must
        not hold it across edge insertions or removals.  On a frozen graph
        the view is materialised lazily from the CSR buffers (the automaton
        evaluator bypasses it entirely via the integer-id fast path).

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> g.forward_index("a")["u"]
        {'v'}
        >>> g.forward_index("zz")
        {}
        """
        return self._backend.forward_index(lab)

    def backward_index(self, lab: LabelName) -> dict[Node, set[Node]]:
        """Return the live backward adjacency index for ``lab`` — READ ONLY.

        The mirror of :meth:`forward_index` (``node → set of predecessors``);
        the same sharing caveats apply.

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> g.backward_index("a")["v"]
        {'u'}
        """
        return self._backend.backward_index(lab)

    def iter_label_pairs(self, lab: LabelName) -> Iterator[tuple[Node, Node]]:
        """Iterate the ``(u, v)`` pairs labeled ``lab`` without copying.

        Reads the live adjacency index: do not add or remove ``lab``
        edges while consuming it (use :meth:`edges_with_label` for a
        snapshot).

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> list(g.iter_label_pairs("a"))
        [('u', 'v')]
        """
        return self._backend.iter_label_pairs(lab)

    def has_successor(self, node: Node, lab: LabelName) -> bool:
        """Return whether ``node`` has any outgoing ``lab`` edge (no copying).

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> g.has_successor("u", "a"), g.has_successor("v", "a")
        (True, False)
        """
        return self._backend.has_successor(node, lab)

    def has_predecessor(self, node: Node, lab: LabelName) -> bool:
        """Return whether ``node`` has any incoming ``lab`` edge (no copying).

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> g.has_predecessor("v", "a"), g.has_predecessor("u", "a")
        (True, False)
        """
        return self._backend.has_predecessor(node, lab)

    def label_count(self, lab: LabelName) -> int:
        """Return the number of edges labeled ``lab``, from an O(1) counter.

        >>> g = GraphDatabase(edges=[("u", "a", "v"), ("v", "a", "w")])
        >>> g.label_count("a"), g.label_count("b")
        (2, 0)
        """
        return self._backend.label_count(lab)

    def edges_from(self, node: Node) -> frozenset[Edge]:
        """Return every edge whose source is ``node`` (any label).

        >>> g = GraphDatabase(edges=[("u", "a", "v"), ("w", "b", "u")])
        >>> [str(e) for e in g.edges_from("u")]
        ['(u -a-> v)']
        """
        return self._backend.edges_from(node)

    def edges_to(self, node: Node) -> frozenset[Edge]:
        """Return every edge whose target is ``node`` (any label).

        >>> g = GraphDatabase(edges=[("u", "a", "v"), ("w", "b", "u")])
        >>> [str(e) for e in g.edges_to("u")]
        ['(w -b-> u)']
        """
        return self._backend.edges_to(node)

    def incident_edges(self, node: Node) -> frozenset[Edge]:
        """Return every edge touching ``node`` as source or target.

        >>> g = GraphDatabase(edges=[("u", "a", "v"), ("w", "b", "u")])
        >>> len(g.incident_edges("u"))
        2
        """
        return self._backend.edges_from(node) | self._backend.edges_to(node)

    # ------------------------------------------------------------------ #
    # Journal / fingerprint
    # ------------------------------------------------------------------ #

    @property
    def version(self) -> int:
        """A counter that increases with every edge insertion.

        ``edges_since(version)`` later returns exactly the edges inserted
        after the version was read — the delta the semi-naive chase rounds
        re-match against.

        >>> g = GraphDatabase()
        >>> v = g.version
        >>> g.add_edge("u", "a", "v")
        >>> g.version == v + 1
        True
        """
        return self._backend.version

    def edges_since(self, version: int) -> list[Edge]:
        """Return the edges inserted after ``version`` was read, in order.

        Entries removed again via :meth:`remove_edge` are *not* expunged
        from the journal; consumers that only use the result to seed
        trigger matching are unaffected (a stale seed matches nothing).

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> v = g.version
        >>> g.add_edge("v", "a", "w")
        >>> [str(e) for e in g.edges_since(v)]
        ['(v -a-> w)']
        """
        return self._backend.edges_since(version)

    def fingerprint(self) -> Fingerprint | None:
        """Return a hashable content token, or ``None`` if uncacheable.

        The token is derived from the node set and the append-only edge
        journal: for graphs that only ever grew (no :meth:`remove_edge`, no
        :meth:`rename_node`), equal tokens imply equal content, so query
        engines may key evaluation caches on it — the *cross-candidate*
        cache of :class:`repro.engine.query.QueryEngine` does exactly that
        to let content-identical candidate solutions share work.  Graphs
        that underwent destructive mutation return ``None`` forever (their
        journal no longer determines their edges) and are simply evaluated
        without cross-graph caching.  Fingerprints are backend-independent:
        a graph and its :meth:`freeze` image carry equal tokens.

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> g.fingerprint() == GraphDatabase(edges=[("u", "a", "v")]).fingerprint()
        True
        >>> g.remove_edge("u", "a", "v")
        >>> g.fingerprint() is None
        True
        """
        return self._backend.fingerprint()

    # ------------------------------------------------------------------ #
    # Counting / copies
    # ------------------------------------------------------------------ #

    def node_count(self) -> int:
        """Return the number of nodes."""
        return self._backend.node_count()

    def edge_count(self) -> int:
        """Return the number of edges."""
        return self._backend.edge_count()

    def copy(self) -> "GraphDatabase":
        """Return an independent *mutable* copy (same alphabet declaration).

        Copies are always dict-backed, whatever the source backend — the
        point of copying is to mutate the result.  Dict-backed sources
        take the backend's structural :meth:`~DictBackend.clone` (index
        surgery, shared edge objects) instead of edge-by-edge replay.
        """
        if isinstance(self._backend, DictBackend):
            return GraphDatabase._from_backend(self._backend.clone())
        clone = GraphDatabase(alphabet=self._backend.declared_alphabet())
        for node in self._backend.nodes():
            clone.add_node(node)
        for edge in self._backend.edges():
            clone.add_edge(edge.source, edge.label, edge.target)
        return clone

    def extended(
        self, edges: Iterable[tuple[Node, LabelName, Node]]
    ) -> "GraphDatabase":
        """Return a copy with ``edges`` added (the original is untouched)."""
        clone = self.copy()
        for source, lab, target in edges:
            clone.add_edge(source, lab, target)
        return clone

    def with_alphabet(self, alphabet: Iterable[LabelName]) -> "GraphDatabase":
        """Return a copy whose declared alphabet is ``alphabet``.

        Useful when a graph built over Σ must be re-read over Σ ∪ {sameAs}.
        """
        if isinstance(self._backend, DictBackend):
            return GraphDatabase._from_backend(
                self._backend.clone(alphabet=frozenset(alphabet))
            )
        clone = GraphDatabase(alphabet=alphabet)
        for node in self._backend.nodes():
            clone.add_node(node)
        for edge in self._backend.edges():
            clone.add_edge(edge.source, edge.label, edge.target)
        return clone

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #

    def __contains__(self, node: object) -> bool:
        return self._backend.has_node(node)

    def __iter__(self) -> Iterator[Edge]:
        return iter(sorted(self._backend.edges(), key=repr))

    def __len__(self) -> int:
        return self._backend.edge_count()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphDatabase):
            return NotImplemented
        # Content equality is backend-independent: a graph equals its
        # frozen image.
        return (
            self._backend.nodes() == other._backend.nodes()
            and self._backend.edges() == other._backend.edges()
        )

    __hash__ = None  # type: ignore[assignment] - mutable container semantics

    def __repr__(self) -> str:
        return (
            f"GraphDatabase(|V|={self.node_count()}, |E|={self.edge_count()}, "
            f"Σ={sorted(map(str, self.alphabet))})"
        )

    def is_isomorphic_to(self, other: "GraphDatabase") -> bool:
        """Decide label-preserving graph isomorphism by backtracking.

        Exponential in the worst case; intended for the small graphs of the
        paper's figures (≤ ~10 nodes), where it is instantaneous.
        """
        if self.node_count() != other.node_count() or self.edge_count() != other.edge_count():
            return False

        def signature(g: GraphDatabase, node: Node) -> tuple:
            out = tuple(sorted((e.label) for e in g.edges() if e.source == node))
            inc = tuple(sorted((e.label) for e in g.edges() if e.target == node))
            return (out, inc)

        mine = sorted(self.nodes(), key=repr)
        sig_self = {n: signature(self, n) for n in mine}
        sig_other: dict[Node, tuple] = {n: signature(other, n) for n in other.nodes()}

        def backtrack(index: int, mapping: dict[Node, Node], used: set[Node]) -> bool:
            if index == len(mine):
                return True
            node = mine[index]
            for candidate in other.nodes():
                if candidate in used or sig_other[candidate] != sig_self[node]:
                    continue
                mapping[node] = candidate
                used.add(candidate)
                if _edges_consistent(self, other, mapping) and backtrack(
                    index + 1, mapping, used
                ):
                    return True
                del mapping[node]
                used.remove(candidate)
            return False

        return backtrack(0, {}, set())


def _edges_consistent(
    g1: GraphDatabase, g2: GraphDatabase, mapping: dict[Node, Node]
) -> bool:
    """Check that the partial ``mapping`` preserves edges in both directions."""
    for edge in g1.edges():
        if edge.source in mapping and edge.target in mapping:
            if not g2.has_edge(mapping[edge.source], edge.label, mapping[edge.target]):
                return False
    inverse = {v: k for k, v in mapping.items()}
    for edge in g2.edges():
        if edge.source in inverse and edge.target in inverse:
            if not g1.has_edge(inverse[edge.source], edge.label, inverse[edge.target]):
                return False
    return True
