"""Directed edge-labeled graph databases.

An instance over a target schema (finite alphabet) Σ is a directed,
edge-labeled graph ``G = (V, E)`` with ``V`` a finite set of node ids and
``E ⊆ V × Σ × V`` (paper, Section 2).  Nodes are arbitrary hashable values;
labels are strings.

The class keeps forward and backward adjacency indexes per label so that NRE
evaluation can traverse edges in both directions in O(degree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

from repro.errors import SchemaError

Node = Hashable
LabelName = str


@dataclass(frozen=True, order=True)
class Edge:
    """A labeled edge ``(source, label, target)``."""

    source: Node
    label: LabelName
    target: Node

    def __str__(self) -> str:
        return f"({self.source} -{self.label}-> {self.target})"


class GraphDatabase:
    """A finite directed edge-labeled graph with fast per-label adjacency.

    ``alphabet`` optionally fixes the target schema Σ; when provided, adding
    an edge with a label outside Σ raises :class:`~repro.errors.SchemaError`.
    When omitted, the alphabet is open and grows with the edges.

    >>> g = GraphDatabase(alphabet={"f", "h"})
    >>> g.add_edge("c1", "f", "c2")
    >>> g.has_edge("c1", "f", "c2")
    True
    >>> sorted(g.successors("c1", "f"))
    ['c2']
    """

    def __init__(
        self,
        alphabet: Iterable[LabelName] | None = None,
        nodes: Iterable[Node] = (),
        edges: Iterable[tuple[Node, LabelName, Node]] = (),
    ):
        self._alphabet: frozenset[LabelName] | None = (
            frozenset(alphabet) if alphabet is not None else None
        )
        self._nodes: set[Node] = set()
        self._edges: set[Edge] = set()
        # label -> node -> set of neighbours
        self._fwd: dict[LabelName, dict[Node, set[Node]]] = {}
        self._bwd: dict[LabelName, dict[Node, set[Node]]] = {}
        for node in nodes:
            self.add_node(node)
        for source, lab, target in edges:
            self.add_edge(source, lab, target)

    @property
    def alphabet(self) -> frozenset[LabelName]:
        """The declared alphabet, or the set of labels in use if undeclared."""
        if self._alphabet is not None:
            return self._alphabet
        return frozenset(self._fwd)

    def add_node(self, node: Node) -> None:
        """Add an isolated node (idempotent)."""
        self._nodes.add(node)

    def add_edge(self, source: Node, lab: LabelName, target: Node) -> None:
        """Add the edge ``(source, lab, target)``; endpoints are auto-added."""
        if self._alphabet is not None and lab not in self._alphabet:
            raise SchemaError(f"label {lab!r} is not in the alphabet {sorted(self._alphabet)}")
        self._nodes.add(source)
        self._nodes.add(target)
        self._edges.add(Edge(source, lab, target))
        self._fwd.setdefault(lab, {}).setdefault(source, set()).add(target)
        self._bwd.setdefault(lab, {}).setdefault(target, set()).add(source)

    def remove_edge(self, source: Node, lab: LabelName, target: Node) -> None:
        """Remove an edge if present; endpoints stay in the node set."""
        edge = Edge(source, lab, target)
        if edge in self._edges:
            self._edges.remove(edge)
            self._fwd[lab][source].discard(target)
            self._bwd[lab][target].discard(source)

    def has_edge(self, source: Node, lab: LabelName, target: Node) -> bool:
        """Return whether the edge ``(source, lab, target)`` is present."""
        return Edge(source, lab, target) in self._edges

    def nodes(self) -> frozenset[Node]:
        """Return the node set."""
        return frozenset(self._nodes)

    def edges(self) -> frozenset[Edge]:
        """Return the edge set."""
        return frozenset(self._edges)

    def successors(self, node: Node, lab: LabelName) -> frozenset[Node]:
        """Return ``{v | (node, lab, v) ∈ E}``."""
        return frozenset(self._fwd.get(lab, {}).get(node, ()))

    def predecessors(self, node: Node, lab: LabelName) -> frozenset[Node]:
        """Return ``{u | (u, lab, node) ∈ E}``."""
        return frozenset(self._bwd.get(lab, {}).get(node, ()))

    def edges_with_label(self, lab: LabelName) -> frozenset[tuple[Node, Node]]:
        """Return all ``(u, v)`` pairs with an edge labeled ``lab``."""
        forward = self._fwd.get(lab, {})
        return frozenset((u, v) for u, targets in forward.items() for v in targets)

    def node_count(self) -> int:
        """Return the number of nodes."""
        return len(self._nodes)

    def edge_count(self) -> int:
        """Return the number of edges."""
        return len(self._edges)

    def copy(self) -> "GraphDatabase":
        """Return an independent copy (same alphabet declaration)."""
        clone = GraphDatabase(alphabet=self._alphabet)
        clone._nodes = set(self._nodes)
        for edge in self._edges:
            clone.add_edge(edge.source, edge.label, edge.target)
        return clone

    def extended(
        self, edges: Iterable[tuple[Node, LabelName, Node]]
    ) -> "GraphDatabase":
        """Return a copy with ``edges`` added (the original is untouched)."""
        clone = self.copy()
        for source, lab, target in edges:
            clone.add_edge(source, lab, target)
        return clone

    def with_alphabet(self, alphabet: Iterable[LabelName]) -> "GraphDatabase":
        """Return a copy whose declared alphabet is ``alphabet``.

        Useful when a graph built over Σ must be re-read over Σ ∪ {sameAs}.
        """
        clone = GraphDatabase(alphabet=alphabet)
        for node in self._nodes:
            clone.add_node(node)
        for edge in self._edges:
            clone.add_edge(edge.source, edge.label, edge.target)
        return clone

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    def __iter__(self) -> Iterator[Edge]:
        return iter(sorted(self._edges, key=repr))

    def __len__(self) -> int:
        return len(self._edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphDatabase):
            return NotImplemented
        return self._nodes == other._nodes and self._edges == other._edges

    def __repr__(self) -> str:
        return (
            f"GraphDatabase(|V|={len(self._nodes)}, |E|={len(self._edges)}, "
            f"Σ={sorted(map(str, self.alphabet))})"
        )

    def is_isomorphic_to(self, other: "GraphDatabase") -> bool:
        """Decide label-preserving graph isomorphism by backtracking.

        Exponential in the worst case; intended for the small graphs of the
        paper's figures (≤ ~10 nodes), where it is instantaneous.
        """
        if self.node_count() != other.node_count() or self.edge_count() != other.edge_count():
            return False

        def signature(g: GraphDatabase, node: Node) -> tuple:
            out = tuple(sorted((e.label) for e in g.edges() if e.source == node))
            inc = tuple(sorted((e.label) for e in g.edges() if e.target == node))
            return (out, inc)

        mine = sorted(self._nodes, key=repr)
        sig_self = {n: signature(self, n) for n in mine}
        sig_other: dict[Node, tuple] = {n: signature(other, n) for n in other.nodes()}

        def backtrack(index: int, mapping: dict[Node, Node], used: set[Node]) -> bool:
            if index == len(mine):
                return True
            node = mine[index]
            for candidate in other.nodes():
                if candidate in used or sig_other[candidate] != sig_self[node]:
                    continue
                mapping[node] = candidate
                used.add(candidate)
                if _edges_consistent(self, other, mapping) and backtrack(
                    index + 1, mapping, used
                ):
                    return True
                del mapping[node]
                used.remove(candidate)
            return False

        return backtrack(0, {}, set())


def _edges_consistent(
    g1: GraphDatabase, g2: GraphDatabase, mapping: dict[Node, Node]
) -> bool:
    """Check that the partial ``mapping`` preserves edges in both directions."""
    for edge in g1.edges():
        if edge.source in mapping and edge.target in mapping:
            if not g2.has_edge(mapping[edge.source], edge.label, mapping[edge.target]):
                return False
    inverse = {v: k for k, v in mapping.items()}
    for edge in g2.edges():
        if edge.source in inverse and edge.target in inverse:
            if not g1.has_edge(inverse[edge.source], edge.label, inverse[edge.target]):
                return False
    return True
