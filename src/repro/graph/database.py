"""Directed edge-labeled graph databases.

An instance over a target schema (finite alphabet) Σ is a directed,
edge-labeled graph ``G = (V, E)`` with ``V`` a finite set of node ids and
``E ⊆ V × Σ × V`` (paper, Section 2).  Nodes are arbitrary hashable values;
labels are strings.

The class keeps forward and backward adjacency indexes per label so that NRE
evaluation can traverse edges in both directions in O(degree).  On top of
those it maintains, incrementally on every insertion:

* any-label incident-edge indexes (``edges_from`` / ``edges_to`` /
  ``incident_edges``) so the chase engine can find every edge touching a
  node in O(degree) — the key operation when a merge step renames a node;
* an append-only *edge journal* (``version`` / ``edges_since``) recording
  the order in which edges were added, which is what makes semi-naive
  (delta) chase iteration possible: a fixpoint round only re-matches
  triggers against the edges added since the round before
  (:mod:`repro.engine.matcher`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

from repro.errors import SchemaError

Node = Hashable
LabelName = str

# Shared empty adjacency returned by the *_index accessors for absent labels.
_EMPTY_INDEX: dict = {}


class Fingerprint:
    """A content token for an append-only :class:`GraphDatabase`.

    Wraps ``(nodes, journal)`` with a hash computed once at construction, so
    fingerprints are cheap to use as cache keys no matter how often they are
    looked up.  Two fingerprints compare equal iff the node sets and journal
    sequences are equal — i.e. iff the graphs have identical content (for
    graphs that never removed or renamed anything, the journal *is* the edge
    set, in insertion order).
    """

    __slots__ = ("key", "_hash")

    def __init__(self, nodes: frozenset, journal: tuple):
        self.key = (nodes, journal)
        self._hash = hash(self.key)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Fingerprint):
            return NotImplemented
        return self._hash == other._hash and self.key == other.key

    def __repr__(self) -> str:
        return f"Fingerprint(|V|={len(self.key[0])}, |journal|={len(self.key[1])})"


@dataclass(frozen=True, order=True)
class Edge:
    """A labeled edge ``(source, label, target)``."""

    source: Node
    label: LabelName
    target: Node

    def __str__(self) -> str:
        return f"({self.source} -{self.label}-> {self.target})"


class GraphDatabase:
    """A finite directed edge-labeled graph with fast per-label adjacency.

    ``alphabet`` optionally fixes the target schema Σ; when provided, adding
    an edge with a label outside Σ raises :class:`~repro.errors.SchemaError`.
    When omitted, the alphabet is open and grows with the edges.

    >>> g = GraphDatabase(alphabet={"f", "h"})
    >>> g.add_edge("c1", "f", "c2")
    >>> g.has_edge("c1", "f", "c2")
    True
    >>> sorted(g.successors("c1", "f"))
    ['c2']
    """

    def __init__(
        self,
        alphabet: Iterable[LabelName] | None = None,
        nodes: Iterable[Node] = (),
        edges: Iterable[tuple[Node, LabelName, Node]] = (),
    ):
        self._alphabet: frozenset[LabelName] | None = (
            frozenset(alphabet) if alphabet is not None else None
        )
        self._nodes: set[Node] = set()
        self._edges: set[Edge] = set()
        # label -> node -> set of neighbours
        self._fwd: dict[LabelName, dict[Node, set[Node]]] = {}
        self._bwd: dict[LabelName, dict[Node, set[Node]]] = {}
        # node -> incident edges, any label (for merges and delta matching)
        self._out_edges: dict[Node, set[Edge]] = {}
        self._in_edges: dict[Node, set[Edge]] = {}
        # label -> number of edges, so join ordering reads sizes in O(1)
        self._label_counts: dict[LabelName, int] = {}
        # Append-only log of edge insertions; len() is the graph version.
        self._journal: list[Edge] = []
        # Content fingerprint support (see fingerprint()): destructive
        # operations permanently disqualify the graph from journal-keyed
        # caching; the computed token is memoised per (journal, node) size.
        self._destructive = False
        self._fingerprint: "Fingerprint | None" = None
        self._fingerprint_key: tuple[int, int] | None = None
        for node in nodes:
            self.add_node(node)
        for source, lab, target in edges:
            self.add_edge(source, lab, target)

    @property
    def alphabet(self) -> frozenset[LabelName]:
        """The declared alphabet, or the set of labels in use if undeclared."""
        if self._alphabet is not None:
            return self._alphabet
        return frozenset(self._fwd)

    def add_node(self, node: Node) -> None:
        """Add an isolated node (idempotent)."""
        self._nodes.add(node)

    def add_edge(self, source: Node, lab: LabelName, target: Node) -> None:
        """Add the edge ``(source, lab, target)``; endpoints are auto-added."""
        if self._alphabet is not None and lab not in self._alphabet:
            raise SchemaError(f"label {lab!r} is not in the alphabet {sorted(self._alphabet)}")
        self._nodes.add(source)
        self._nodes.add(target)
        edge = Edge(source, lab, target)
        if edge in self._edges:
            return
        self._edges.add(edge)
        self._fwd.setdefault(lab, {}).setdefault(source, set()).add(target)
        self._bwd.setdefault(lab, {}).setdefault(target, set()).add(source)
        self._out_edges.setdefault(source, set()).add(edge)
        self._in_edges.setdefault(target, set()).add(edge)
        self._label_counts[lab] = self._label_counts.get(lab, 0) + 1
        self._journal.append(edge)

    def remove_edge(self, source: Node, lab: LabelName, target: Node) -> None:
        """Remove an edge if present; endpoints stay in the node set."""
        edge = Edge(source, lab, target)
        self._destructive = True  # the journal no longer determines the content
        if edge in self._edges:
            self._edges.remove(edge)
            self._fwd[lab][source].discard(target)
            self._bwd[lab][target].discard(source)
            self._out_edges[source].discard(edge)
            self._in_edges[target].discard(edge)
            self._label_counts[lab] -= 1

    def has_edge(self, source: Node, lab: LabelName, target: Node) -> bool:
        """Return whether the edge ``(source, lab, target)`` is present."""
        return Edge(source, lab, target) in self._edges

    def nodes(self) -> frozenset[Node]:
        """Return the node set."""
        return frozenset(self._nodes)

    def edges(self) -> frozenset[Edge]:
        """Return the edge set."""
        return frozenset(self._edges)

    def successors(self, node: Node, lab: LabelName) -> frozenset[Node]:
        """Return ``{v | (node, lab, v) ∈ E}``."""
        return frozenset(self._fwd.get(lab, {}).get(node, ()))

    def predecessors(self, node: Node, lab: LabelName) -> frozenset[Node]:
        """Return ``{u | (u, lab, node) ∈ E}``."""
        return frozenset(self._bwd.get(lab, {}).get(node, ()))

    def edges_with_label(self, lab: LabelName) -> frozenset[tuple[Node, Node]]:
        """Return all ``(u, v)`` pairs with an edge labeled ``lab``."""
        forward = self._fwd.get(lab, {})
        return frozenset((u, v) for u, targets in forward.items() for v in targets)

    def forward_index(self, lab: LabelName) -> dict[Node, set[Node]]:
        """Return the live forward adjacency index for ``lab`` — READ ONLY.

        Unlike :meth:`successors` this copies nothing: the returned mapping
        is the graph's own index (``node → set of successors``), shared for
        the lifetime of the graph.  It is the hot-path accessor of the
        product-automaton evaluator; callers must not mutate it and must not
        hold it across edge insertions or removals.

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> g.forward_index("a")["u"]
        {'v'}
        >>> g.forward_index("zz")
        {}
        """
        return self._fwd.get(lab, _EMPTY_INDEX)

    def backward_index(self, lab: LabelName) -> dict[Node, set[Node]]:
        """Return the live backward adjacency index for ``lab`` — READ ONLY.

        The mirror of :meth:`forward_index` (``node → set of predecessors``);
        the same sharing caveats apply.

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> g.backward_index("a")["v"]
        {'u'}
        """
        return self._bwd.get(lab, _EMPTY_INDEX)

    def iter_label_pairs(self, lab: LabelName) -> Iterator[tuple[Node, Node]]:
        """Iterate the ``(u, v)`` pairs labeled ``lab`` without copying.

        Reads the live adjacency index: do not add or remove ``lab``
        edges while consuming it (use :meth:`edges_with_label` for a
        snapshot).

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> list(g.iter_label_pairs("a"))
        [('u', 'v')]
        """
        for u, targets in self._fwd.get(lab, {}).items():
            for v in targets:
                yield (u, v)

    def has_successor(self, node: Node, lab: LabelName) -> bool:
        """Return whether ``node`` has any outgoing ``lab`` edge (no copying).

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> g.has_successor("u", "a"), g.has_successor("v", "a")
        (True, False)
        """
        return bool(self._fwd.get(lab, {}).get(node))

    def has_predecessor(self, node: Node, lab: LabelName) -> bool:
        """Return whether ``node`` has any incoming ``lab`` edge (no copying).

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> g.has_predecessor("v", "a"), g.has_predecessor("u", "a")
        (True, False)
        """
        return bool(self._bwd.get(lab, {}).get(node))

    def label_count(self, lab: LabelName) -> int:
        """Return the number of edges labeled ``lab``, from an O(1) counter.

        >>> g = GraphDatabase(edges=[("u", "a", "v"), ("v", "a", "w")])
        >>> g.label_count("a"), g.label_count("b")
        (2, 0)
        """
        return self._label_counts.get(lab, 0)

    def edges_from(self, node: Node) -> frozenset[Edge]:
        """Return every edge whose source is ``node`` (any label).

        >>> g = GraphDatabase(edges=[("u", "a", "v"), ("w", "b", "u")])
        >>> [str(e) for e in g.edges_from("u")]
        ['(u -a-> v)']
        """
        return frozenset(self._out_edges.get(node, ()))

    def edges_to(self, node: Node) -> frozenset[Edge]:
        """Return every edge whose target is ``node`` (any label).

        >>> g = GraphDatabase(edges=[("u", "a", "v"), ("w", "b", "u")])
        >>> [str(e) for e in g.edges_to("u")]
        ['(w -b-> u)']
        """
        return frozenset(self._in_edges.get(node, ()))

    def incident_edges(self, node: Node) -> frozenset[Edge]:
        """Return every edge touching ``node`` as source or target.

        >>> g = GraphDatabase(edges=[("u", "a", "v"), ("w", "b", "u")])
        >>> len(g.incident_edges("u"))
        2
        """
        return self.edges_from(node) | self.edges_to(node)

    @property
    def version(self) -> int:
        """A counter that increases with every edge insertion.

        ``edges_since(version)`` later returns exactly the edges inserted
        after the version was read — the delta the semi-naive chase rounds
        re-match against.

        >>> g = GraphDatabase()
        >>> v = g.version
        >>> g.add_edge("u", "a", "v")
        >>> g.version == v + 1
        True
        """
        return len(self._journal)

    def edges_since(self, version: int) -> list[Edge]:
        """Return the edges inserted after ``version`` was read, in order.

        Entries removed again via :meth:`remove_edge` are *not* expunged
        from the journal; consumers that only use the result to seed
        trigger matching are unaffected (a stale seed matches nothing).

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> v = g.version
        >>> g.add_edge("v", "a", "w")
        >>> [str(e) for e in g.edges_since(v)]
        ['(v -a-> w)']
        """
        return self._journal[version:]

    def fingerprint(self) -> Fingerprint | None:
        """Return a hashable content token, or ``None`` if uncacheable.

        The token is derived from the node set and the append-only edge
        journal: for graphs that only ever grew (no :meth:`remove_edge`, no
        :meth:`rename_node`), equal tokens imply equal content, so query
        engines may key evaluation caches on it — the *cross-candidate*
        cache of :class:`repro.engine.query.QueryEngine` does exactly that
        to let content-identical candidate solutions share work.  Graphs
        that underwent destructive mutation return ``None`` forever (their
        journal no longer determines their edges) and are simply evaluated
        without cross-graph caching.

        >>> g = GraphDatabase(edges=[("u", "a", "v")])
        >>> g.fingerprint() == GraphDatabase(edges=[("u", "a", "v")]).fingerprint()
        True
        >>> g.remove_edge("u", "a", "v")
        >>> g.fingerprint() is None
        True
        """
        if self._destructive:
            return None
        key = (len(self._journal), len(self._nodes))
        if self._fingerprint is None or self._fingerprint_key != key:
            self._fingerprint = Fingerprint(
                frozenset(self._nodes), tuple(self._journal)
            )
            self._fingerprint_key = key
        return self._fingerprint

    def rename_node(self, old: Node, new: Node) -> frozenset[Edge]:
        """Rename ``old`` to ``new`` in place, rewriting incident edges.

        Returns the rewritten edges (as they read *after* the rename) so
        that callers can re-match triggers against exactly the part of the
        graph that changed.  Unlike the copy-based approach this is
        O(degree(old)), not O(|E|).  Renaming a node onto itself or an
        unknown node is a no-op.

        >>> g = GraphDatabase(edges=[("u", "a", "x"), ("w", "b", "x")])
        >>> sorted(str(e) for e in g.rename_node("x", "y"))
        ['(u -a-> y)', '(w -b-> y)']
        >>> g.has_edge("u", "a", "x")
        False
        """
        if old == new or old not in self._nodes:
            return frozenset()
        self._destructive = True  # node set changes without a journal entry
        rewritten: set[Edge] = set()
        for edge in list(self.incident_edges(old)):
            self.remove_edge(edge.source, edge.label, edge.target)
            source = new if edge.source == old else edge.source
            target = new if edge.target == old else edge.target
            self.add_edge(source, edge.label, target)
            rewritten.add(Edge(source, edge.label, target))
        self._nodes.discard(old)
        self._nodes.add(new)
        return frozenset(rewritten)

    def node_count(self) -> int:
        """Return the number of nodes."""
        return len(self._nodes)

    def edge_count(self) -> int:
        """Return the number of edges."""
        return len(self._edges)

    def copy(self) -> "GraphDatabase":
        """Return an independent copy (same alphabet declaration)."""
        clone = GraphDatabase(alphabet=self._alphabet)
        clone._nodes = set(self._nodes)
        for edge in self._edges:
            clone.add_edge(edge.source, edge.label, edge.target)
        return clone

    def extended(
        self, edges: Iterable[tuple[Node, LabelName, Node]]
    ) -> "GraphDatabase":
        """Return a copy with ``edges`` added (the original is untouched)."""
        clone = self.copy()
        for source, lab, target in edges:
            clone.add_edge(source, lab, target)
        return clone

    def with_alphabet(self, alphabet: Iterable[LabelName]) -> "GraphDatabase":
        """Return a copy whose declared alphabet is ``alphabet``.

        Useful when a graph built over Σ must be re-read over Σ ∪ {sameAs}.
        """
        clone = GraphDatabase(alphabet=alphabet)
        for node in self._nodes:
            clone.add_node(node)
        for edge in self._edges:
            clone.add_edge(edge.source, edge.label, edge.target)
        return clone

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    def __iter__(self) -> Iterator[Edge]:
        return iter(sorted(self._edges, key=repr))

    def __len__(self) -> int:
        return len(self._edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphDatabase):
            return NotImplemented
        return self._nodes == other._nodes and self._edges == other._edges

    def __repr__(self) -> str:
        return (
            f"GraphDatabase(|V|={len(self._nodes)}, |E|={len(self._edges)}, "
            f"Σ={sorted(map(str, self.alphabet))})"
        )

    def is_isomorphic_to(self, other: "GraphDatabase") -> bool:
        """Decide label-preserving graph isomorphism by backtracking.

        Exponential in the worst case; intended for the small graphs of the
        paper's figures (≤ ~10 nodes), where it is instantaneous.
        """
        if self.node_count() != other.node_count() or self.edge_count() != other.edge_count():
            return False

        def signature(g: GraphDatabase, node: Node) -> tuple:
            out = tuple(sorted((e.label) for e in g.edges() if e.source == node))
            inc = tuple(sorted((e.label) for e in g.edges() if e.target == node))
            return (out, inc)

        mine = sorted(self._nodes, key=repr)
        sig_self = {n: signature(self, n) for n in mine}
        sig_other: dict[Node, tuple] = {n: signature(other, n) for n in other.nodes()}

        def backtrack(index: int, mapping: dict[Node, Node], used: set[Node]) -> bool:
            if index == len(mine):
                return True
            node = mine[index]
            for candidate in other.nodes():
                if candidate in used or sig_other[candidate] != sig_self[node]:
                    continue
                mapping[node] = candidate
                used.add(candidate)
                if _edges_consistent(self, other, mapping) and backtrack(
                    index + 1, mapping, used
                ):
                    return True
                del mapping[node]
                used.remove(candidate)
            return False

        return backtrack(0, {}, set())


def _edges_consistent(
    g1: GraphDatabase, g2: GraphDatabase, mapping: dict[Node, Node]
) -> bool:
    """Check that the partial ``mapping`` preserves edges in both directions."""
    for edge in g1.edges():
        if edge.source in mapping and edge.target in mapping:
            if not g2.has_edge(mapping[edge.source], edge.label, mapping[edge.target]):
                return False
    inverse = {v: k for k, v in mapping.items()}
    for edge in g2.edges():
        if edge.source in inverse and edge.target in inverse:
            if not g1.has_edge(inverse[edge.source], edge.label, inverse[edge.target]):
                return False
    return True
