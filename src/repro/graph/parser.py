"""Concrete syntax for nested regular expressions.

Grammar (whitespace-insensitive)::

    expr    := term { "+" term }                 -- disjunction
    term    := factor { "." factor }             -- concatenation
    factor  := primary { "*" | "[" expr "]" }    -- postfix star / postfix nesting
    primary := NAME [ "-" ]                      -- label, optionally backward
             | "(" expr ")"                      -- grouping
             | "[" expr "]"                      -- standalone node test
             | "()" | "eps"                      -- ε

Postfix nesting mirrors the paper's notation: ``f.f*[h].f-.(f-)*`` parses as
``f · f* · [h] · f⁻ · (f⁻)*`` — the query of Example 2.2.

>>> str(parse_nre("f . f*[h] . f- . (f-)*"))
'f . f* . [h] . f- . f-*'

(``f-*`` is the unparenthesised rendering of ``(f⁻)*`` — postfix ``*``
binds to the backward atom, so the two spellings parse identically.)
"""

from __future__ import annotations

import functools
import re

from repro.errors import ParseError
from repro.graph.nre import (
    NRE,
    backward,
    concat,
    epsilon,
    label,
    nest,
    star,
    union,
)

_TOKEN = re.compile(
    r"""\s*(?:
        (?P<eps>\(\)|eps\b)        |
        (?P<name>[A-Za-z_][A-Za-z0-9_]*) |
        (?P<minus>-)               |
        (?P<plus>\+)               |
        (?P<dot>\.|·)              |
        (?P<star>\*)               |
        (?P<lpar>\()               |
        (?P<rpar>\))               |
        (?P<lbra>\[)               |
        (?P<rbra>\])
    )""",
    re.VERBOSE,
)


class _Cursor:
    def __init__(self, text: str):
        self.text = text
        self.tokens: list[tuple[str, str, int]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN.match(text, pos)
            if match is None or match.end() == pos:
                if text[pos:].strip():
                    raise ParseError("unexpected character in NRE", text, pos)
                break
            kind = match.lastgroup or ""
            self.tokens.append((kind, match.group(kind), match.start(kind)))
            pos = match.end()
        self.index = 0

    def peek(self) -> str | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index][0]
        return None

    def next(self, expected: str | None = None) -> tuple[str, str, int]:
        if self.index >= len(self.tokens):
            raise ParseError(
                f"unexpected end of NRE (expected {expected or 'a token'})", self.text
            )
        item = self.tokens[self.index]
        if expected is not None and item[0] != expected:
            raise ParseError(f"expected {expected}, found {item[1]!r}", self.text, item[2])
        self.index += 1
        return item

    def done(self) -> bool:
        return self.index >= len(self.tokens)


def _parse_expr(cursor: _Cursor) -> NRE:
    parts = [_parse_term(cursor)]
    while cursor.peek() == "plus":
        cursor.next("plus")
        parts.append(_parse_term(cursor))
    return union(*parts)


def _parse_term(cursor: _Cursor) -> NRE:
    parts = [_parse_factor(cursor)]
    while cursor.peek() == "dot":
        cursor.next("dot")
        parts.append(_parse_factor(cursor))
    return concat(*parts)


def _parse_factor(cursor: _Cursor) -> NRE:
    result = _parse_primary(cursor)
    while True:
        kind = cursor.peek()
        if kind == "star":
            cursor.next("star")
            result = star(result)
        elif kind == "lbra":
            cursor.next("lbra")
            inner = _parse_expr(cursor)
            cursor.next("rbra")
            result = concat(result, nest(inner))
        else:
            return result


def _parse_primary(cursor: _Cursor) -> NRE:
    kind, value, pos = cursor.next()
    if kind == "eps":
        return epsilon()
    if kind == "name":
        if cursor.peek() == "minus":
            cursor.next("minus")
            return backward(value)
        return label(value)
    if kind == "lpar":
        inner = _parse_expr(cursor)
        cursor.next("rpar")
        return inner
    if kind == "lbra":
        inner = _parse_expr(cursor)
        cursor.next("rbra")
        return nest(inner)
    raise ParseError(f"unexpected token {value!r} in NRE", cursor.text, pos)


@functools.lru_cache(maxsize=1024)
def parse_nre(text: str) -> NRE:
    """Parse the concrete NRE syntax into an AST (memoised per string).

    NRE nodes are immutable values, so re-parsing the same text can share
    one AST; the identical object then keys the downstream automaton
    compilation cache (:func:`repro.graph.automaton.compile_nre`) by both
    identity and value.  The syntax round-trips: ``parse_nre(str(e)) == e``
    for every AST ``e`` built from the smart constructors (pinned by the
    property suite), so caches keyed on parsed NREs hit no matter whether
    the expression arrived as text or was printed and re-read.

    >>> from repro.graph.nre import Star, Concat
    >>> r = parse_nre("a . (b* + c*) . a")
    >>> r.size()
    9
    >>> parse_nre("a . (b* + c*) . a") is r
    True
    """
    cursor = _Cursor(text)
    result = _parse_expr(cursor)
    if not cursor.done():
        kind, value, pos = cursor.tokens[cursor.index]
        raise ParseError(f"trailing input {value!r} after NRE", text, pos)
    return result
