"""Abstract syntax of nested regular expressions (NREs).

The grammar is exactly the paper's (Section 2)::

    r := ε | a (a ∈ Σ) | a⁻ (a ∈ Σ) | r + r | r · r | r* | [r]

where ``+`` is disjunction, ``·`` concatenation, ``*`` Kleene star, ``a⁻``
backward traversal of an ``a``-edge, and ``[r]`` nesting: a node test that
succeeds on ``u`` iff some ``v`` with ``(u, v) ∈ ⟦r⟧`` exists.

The paper (and [5]) writes nesting postfix, as in ``f·f*[h]``, which denotes
the concatenation of ``f·f*`` with the node test ``[h]``; in this AST the
test is the standalone :class:`Nest` combinator and postfix application is
ordinary concatenation, e.g. ``concat(concat(label("f"), star(label("f"))),
nest(label("h")))``.

All nodes are frozen dataclasses: hashable, comparable, and safe to share.
Smart constructors (:func:`union`, :func:`concat`, :func:`star`, …) apply
lightweight simplifications (associativity flattening, identity elements)
without changing the language.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from functools import reduce
from typing import Iterator


class NRE:
    """Base class of all NRE AST nodes.

    Supports operator sugar so expressions read close to the paper::

        f, h = label("f"), label("h")
        q = f * star(f) * nest(h) * backward("f")   # '*' is concatenation
        alt = f + h                                  # '+' is disjunction
    """

    def __add__(self, other: "NRE") -> "NRE":
        return union(self, other)

    def __mul__(self, other: "NRE") -> "NRE":
        return concat(self, other)

    def children(self) -> tuple["NRE", ...]:
        """Return the direct subexpressions (empty for atoms)."""
        return ()

    def walk(self) -> Iterator["NRE"]:
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def size(self) -> int:
        """Return the number of AST nodes."""
        return sum(1 for _ in self.walk())

    def __str__(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class Epsilon(NRE):
    """The empty word ε: ``⟦ε⟧ = {(u, u) | u ∈ V}``."""

    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True)
class Label(NRE):
    """A forward edge label ``a``: ``⟦a⟧ = {(u, v) | (u, a, v) ∈ E}``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Backward(NRE):
    """A backward edge label ``a⁻``: ``⟦a⁻⟧ = {(u, v) | (v, a, u) ∈ E}``."""

    name: str

    def __str__(self) -> str:
        return f"{self.name}-"


@dataclass(frozen=True)
class Union(NRE):
    """Disjunction ``r₁ + r₂``: union of the two relations."""

    left: NRE
    right: NRE

    def children(self) -> tuple[NRE, ...]:
        """The two disjuncts."""
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} + {self.right})"


@dataclass(frozen=True)
class Concat(NRE):
    """Concatenation ``r₁ · r₂``: composition of the two relations."""

    left: NRE
    right: NRE

    def children(self) -> tuple[NRE, ...]:
        """The two concatenands, in order."""
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} . {self.right}"


@dataclass(frozen=True)
class Star(NRE):
    """Kleene star ``r*``: reflexive-transitive closure of ``⟦r⟧``."""

    inner: NRE

    def children(self) -> tuple[NRE, ...]:
        """The starred body."""
        return (self.inner,)

    def __str__(self) -> str:
        inner = str(self.inner)
        if isinstance(self.inner, (Label, Backward, Epsilon, Nest)):
            return f"{inner}*"
        return f"({inner})*"


@dataclass(frozen=True)
class Nest(NRE):
    """Nesting ``[r]``: ``⟦[r]⟧ = {(u, u) | ∃v. (u, v) ∈ ⟦r⟧}``."""

    inner: NRE

    def children(self) -> tuple[NRE, ...]:
        """The nested-test body."""
        return (self.inner,)

    def __str__(self) -> str:
        return f"[{self.inner}]"


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------

_EPSILON = Epsilon()


def epsilon() -> NRE:
    """Return the ε expression (a shared singleton)."""
    return _EPSILON


@functools.lru_cache(maxsize=65536)
def label(name: str) -> Label:
    """Return the forward-label atom ``a`` (interned — Labels are frozen,
    and constructions like the reduction families mint the same label
    objects thousands of times)."""
    return Label(name)


def backward(name: str) -> Backward:
    """Return the backward-label atom ``a⁻``."""
    return Backward(name)


def _flatten(parts: tuple[NRE, ...], node_type: type) -> list[NRE]:
    """Flatten nested ``node_type`` operands (associativity normalisation)."""
    flat: list[NRE] = []
    for part in parts:
        if isinstance(part, node_type):
            flat.extend(_flatten((part.left, part.right), node_type))  # type: ignore[attr-defined]
        else:
            flat.append(part)
    return flat


def union(*parts: NRE) -> NRE:
    """Return the disjunction of ``parts``, flattened and deduplicated.

    Associativity is normalised (left-nested) so that syntactically
    different groupings of the same alternatives compare equal;
    ``r + r ≡ r`` removes duplicates.
    """
    if not parts:
        raise ValueError("union() needs at least one operand")
    unique: list[NRE] = []
    for part in _flatten(tuple(parts), Union):
        if part not in unique:
            unique.append(part)
    return reduce(lambda acc, nxt: Union(acc, nxt), unique[1:], unique[0])


def concat(*parts: NRE) -> NRE:
    """Return the concatenation of ``parts``, flattened, with ε elided.

    Associativity is normalised (left-nested): ``concat(a, concat(b, c))``
    and ``concat(concat(a, b), c)`` build the same AST.  ε is the identity
    of concatenation: ``concat(ε, r) ≡ r``.
    """
    if not parts:
        return _EPSILON
    useful = [
        p for p in _flatten(tuple(parts), Concat) if not isinstance(p, Epsilon)
    ]
    if not useful:
        return _EPSILON
    return reduce(lambda acc, nxt: Concat(acc, nxt), useful[1:], useful[0])


def star(inner: NRE) -> NRE:
    """Return ``inner*``, collapsing ``(r*)* ≡ r*`` and ``ε* ≡ ε``."""
    if isinstance(inner, Star):
        return inner
    if isinstance(inner, Epsilon):
        return _EPSILON
    return Star(inner)


def plus(inner: NRE) -> NRE:
    """Return ``inner · inner*`` — the "one or more" derived combinator.

    The paper's ``f · f*`` idiom ("a flight with possible connections") is
    exactly ``plus(label("f"))``.
    """
    return concat(inner, star(inner))


def nest(inner: NRE) -> NRE:
    """Return the node test ``[inner]``."""
    return Nest(inner)


def word(*names: str) -> NRE:
    """Return the concatenation of forward labels, e.g. ``word("a","b")`` = a·b."""
    return concat(*(label(n) for n in names))
