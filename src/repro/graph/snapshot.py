"""Version-stamped snapshots of frozen graph databases.

The freeze/thaw story of :mod:`repro.graph.backends` gives a chased result
a read-optimized in-process form; this module makes that form *durable*:
a frozen :class:`~repro.graph.database.GraphDatabase` serialises to a
single snapshot file — interning table, edge journal, and raw CSR buffers
— and loads back without re-sorting, re-interning, or re-chasing
anything.  The round trip is exact: nodes, edges, alphabet declaration,
journal, and content fingerprint all survive
(``tests/test_graph/test_snapshot.py`` pins this).

Two consumption layers sit on top of the file format:

* the CLI's ``repro snapshot save/load/info`` subcommands
  (:mod:`repro.cli`) move graphs between JSON and snapshot form;
* :class:`SnapshotStore` is the content-keyed directory store the service
  worker pool uses for *per-tenant warm starts*: with
  ``REPRO_SNAPSHOT_DIR`` set (or ``repro serve --snapshot-dir``), workers
  persist each tenant's verified existence witness and skip the
  chase-and-search pipeline for that tenant after a restart
  (:mod:`repro.service.workers`).

Like the neighbouring automaton cache (:mod:`repro.graph.autocache`) the
on-disk layout is **version-stamped** — ``SNAPSHOT_FORMAT`` is baked into
every payload and bumped on any change to the pickled shape, so a newer
library never misreads an older file.  Unlike the autocache, explicit
:func:`load_snapshot` calls are user requests and fail loudly with
:class:`~repro.errors.SnapshotError` rather than degrading silently;
only the store's cache-style lookups treat damage as a miss.

**Trust boundary.** Snapshots are :mod:`pickle` payloads (node ids are
arbitrary hashable Python values — labeled nulls, tuples — which no
data-only encoding round-trips faithfully), and unpickling executes code
chosen by whoever wrote the file.  Load snapshots only from locations
you would load code from: your own exports and snapshot/cache
directories owned by the service user — the same standing rule as the
automaton cache.  Never point ``repro snapshot load`` or
``--snapshot-dir`` at untrusted or world-writable paths.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile

from repro.errors import SnapshotError
from repro.graph.backends import CsrBackend
from repro.graph.database import GraphDatabase

SNAPSHOT_FORMAT = 1
"""Bump on any change to the snapshot payload shape or CSR field layout."""

_MAGIC = "repro-graph-snapshot"


def save_snapshot(graph: GraphDatabase, path: str) -> None:
    """Write ``graph`` to ``path`` as a version-stamped snapshot file.

    A mutable graph is frozen first (the original is untouched); an
    already-frozen graph serialises its live CSR buffers as they are.
    The write is atomic (temp file + ``os.replace``), so a concurrent
    reader sees either the old file or the new one, never a torn pickle.

    >>> import tempfile, os
    >>> g = GraphDatabase(edges=[("u", "a", "v")])
    >>> with tempfile.TemporaryDirectory() as d:
    ...     save_snapshot(g, os.path.join(d, "g.snap"))
    ...     load_snapshot(os.path.join(d, "g.snap")) == g
    True
    """
    frozen = graph.freeze()
    backend = frozen.csr
    assert backend is not None  # freeze() guarantees a CSR backend
    payload = {
        "magic": _MAGIC,
        "format": SNAPSHOT_FORMAT,
        "state": backend.dump_state(),
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    descriptor, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(descriptor, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def load_snapshot(path: str) -> GraphDatabase:
    """Read a snapshot file back into a frozen :class:`GraphDatabase`.

    Raises :class:`~repro.errors.SnapshotError` when the file is missing,
    unreadable, not a snapshot, or carries a foreign format version —
    explicit loads fail loudly (use :class:`SnapshotStore` for cache-style
    miss-on-damage semantics).
    """
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        raise SnapshotError(f"no snapshot file at {path!r}") from None
    except Exception as error:  # noqa: BLE001 - pickle raises many shapes
        raise SnapshotError(f"unreadable snapshot {path!r}: {error}") from None
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise SnapshotError(f"{path!r} is not a repro graph snapshot")
    if payload.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{path!r} has snapshot format {payload.get('format')!r}; this "
            f"library reads format {SNAPSHOT_FORMAT} — re-export the snapshot"
        )
    try:
        backend = CsrBackend.restore_state(payload["state"])
    except (KeyError, TypeError, ValueError) as error:
        raise SnapshotError(f"corrupt snapshot payload in {path!r}: {error}") from None
    return GraphDatabase._from_backend(backend)


class SnapshotStore:
    """A content-keyed directory of graph snapshots (the warm-tenant store).

    Keys are arbitrary strings (the service uses request fingerprints);
    each key maps to one snapshot file named by its SHA-256.  Lookups have
    cache semantics — a missing, damaged, or foreign-format entry reads as
    ``None``, never an exception — while writes are atomic and last-writer
    -wins (all writers hold identical content for a given key, since keys
    are derived from the full request).

    >>> import tempfile
    >>> with tempfile.TemporaryDirectory() as d:
    ...     store = SnapshotStore(d)
    ...     store.load("tenant-1") is None
    ...     store.store("tenant-1", GraphDatabase(edges=[("u", "a", "v")]))
    ...     store.load("tenant-1").edge_count()
    True
    1
    """

    def __init__(self, directory: str):
        self.directory = directory

    def path_for(self, key: str) -> str:
        """The snapshot path for ``key`` (exists or not)."""
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return os.path.join(
            self.directory, f"v{SNAPSHOT_FORMAT}", digest + ".snap"
        )

    def load(self, key: str) -> GraphDatabase | None:
        """The frozen graph stored under ``key``, or ``None`` (cache miss)."""
        try:
            return load_snapshot(self.path_for(key))
        except SnapshotError:
            return None

    def store(self, key: str, graph: GraphDatabase) -> None:
        """Persist ``graph`` under ``key`` (freezing it if necessary).

        Best-effort, like every cache write in this library: filesystem
        trouble degrades to a skipped store, never an error in the
        serving path.
        """
        try:
            save_snapshot(graph, self.path_for(key))
        except OSError:
            pass
