"""Pluggable physical storage behind :class:`~repro.graph.database.GraphDatabase`.

The logical data model of the paper — a directed edge-labeled graph
``G = (V, E)``, ``E ⊆ V × Σ × V`` — admits more than one useful physical
representation.  The chases *write* (edge insertion, in-place node
renames), while the query engine only *reads* (bulk per-label traversal
in both directions).  This module separates the two concerns behind one
protocol with two conforming backends:

* :class:`DictBackend` — the mutation-friendly default: per-label hash
  adjacency (``label → node → set``), any-label incident-edge indexes,
  and the append-only edge journal that powers semi-naive chase rounds
  and content fingerprinting.  This is the original ``GraphDatabase``
  storage, extracted verbatim.
* :class:`CsrBackend` — a frozen, read-optimized representation: nodes
  and labels are *interned* to dense integer ids, and each label's
  forward/backward adjacency is a sorted CSR (compressed sparse row)
  pair of ``array`` buffers — ``offsets[u] : offsets[u+1]`` slices the
  neighbour ids of node ``u``.  The product-automaton evaluator
  (:mod:`repro.graph.automaton`) detects a CSR backend and switches to
  an integer-id search loop with per-state ``bytearray`` visited maps —
  the bulk-traversal fast path measured in
  ``benchmarks/bench_storage_backends.py``.

A graph moves between the two through
:meth:`~repro.graph.database.GraphDatabase.freeze` (dict → CSR, content
and journal preserved, mutations now raise
:class:`~repro.errors.FrozenGraphError`) and
:meth:`~repro.graph.database.GraphDatabase.thaw` (CSR → dict, journal
replayed so the fingerprint survives the round trip).  Frozen graphs
serialise to version-stamped snapshot files via
:mod:`repro.graph.snapshot`.

Both backends expose the same read surface (the :class:`StorageBackend`
protocol); ``tests/test_graph/test_backends.py`` drives random
mutation/query interleavings against both and asserts byte-identical
observable behaviour.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Protocol, runtime_checkable

from repro import kernels
from repro.errors import FrozenGraphError, SchemaError

Node = Hashable
LabelName = str

# Shared empty adjacency returned by the *_index accessors for absent labels.
_EMPTY_INDEX: dict = {}


class Fingerprint:
    """A content token for an append-only graph.

    Wraps ``(nodes, journal)`` with a hash computed once at construction, so
    fingerprints are cheap to use as cache keys no matter how often they are
    looked up.  Two fingerprints compare equal iff the node sets and journal
    sequences are equal — i.e. iff the graphs have identical content (for
    graphs that never removed or renamed anything, the journal *is* the edge
    set, in insertion order).  Fingerprints are backend-independent: a graph
    and its frozen CSR counterpart carry equal tokens.
    """

    __slots__ = ("key", "_hash")

    def __init__(self, nodes: frozenset, journal: tuple):
        self.key = (nodes, journal)
        self._hash = hash(self.key)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Fingerprint):
            return NotImplemented
        return self._hash == other._hash and self.key == other.key

    def __repr__(self) -> str:
        return f"Fingerprint(|V|={len(self.key[0])}, |journal|={len(self.key[1])})"


@dataclass(frozen=True, order=True)
class Edge:
    """A labeled edge ``(source, label, target)``."""

    source: Node
    label: LabelName
    target: Node

    def __hash__(self) -> int:
        # Edges are hashed constantly (edge sets, journals, incident-edge
        # indexes, trigger dedupe); the generated dataclass hash rebuilds
        # the field tuple on every call, so memoise it per instance.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.source, self.label, self.target))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self) -> dict:
        # The memoised hash is salted per process (PYTHONHASHSEED); it
        # must never survive pickling into another interpreter.
        state = self.__dict__.copy()
        state.pop("_hash", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def __str__(self) -> str:
        return f"({self.source} -{self.label}-> {self.target})"


@runtime_checkable
class StorageBackend(Protocol):
    """The physical-storage surface a :class:`GraphDatabase` delegates to.

    The protocol covers four concern groups:

    * **adjacency reads** — ``successors`` / ``predecessors`` /
      ``forward_index`` / ``backward_index`` / ``iter_label_pairs`` /
      ``has_successor`` / ``has_predecessor`` / ``label_count``;
    * **edge journal / versioning** — ``version`` / ``edges_since`` /
      ``journal`` (the substrate of semi-naive chase rounds);
    * **fingerprint support** — ``fingerprint()`` plus the
      ``destructive`` flag that permanently disqualifies a graph from
      journal-keyed caching;
    * **mutation hooks** — ``add_node`` / ``add_edge`` / ``remove_edge``
      / ``rename_node``; read-only backends raise
      :class:`~repro.errors.FrozenGraphError` from all four.

    ``name`` identifies the backend (``"dict"`` / ``"csr"``) and
    ``mutable`` states whether the mutation hooks are live.
    """

    name: str
    mutable: bool

    def declared_alphabet(self) -> frozenset[LabelName] | None:
        """The alphabet Σ fixed at construction, or ``None`` when open."""
        ...

    def labels(self) -> frozenset[LabelName]:
        """The labels carried by at least one edge (or index entry)."""
        ...

    def add_node(self, node: Node) -> None:
        """Add an isolated node (idempotent); frozen backends refuse."""
        ...

    def add_edge(self, source: Node, lab: LabelName, target: Node) -> None:
        """Add an edge, auto-adding endpoints; frozen backends refuse."""
        ...

    def remove_edge(self, source: Node, lab: LabelName, target: Node) -> None:
        """Remove an edge if present (a *destructive* mutation)."""
        ...

    def rename_node(self, old: Node, new: Node) -> frozenset[Edge]:
        """Rewrite every edge through ``old`` onto ``new``; O(degree)."""
        ...

    def discard_node(self, node: Node) -> None:
        """Remove an *isolated* node (a *destructive* mutation)."""
        ...

    def has_node(self, node: Node) -> bool:
        """Node-set membership."""
        ...

    def has_edge(self, source: Node, lab: LabelName, target: Node) -> bool:
        """Edge-set membership."""
        ...

    def nodes(self) -> frozenset[Node]:
        """The node set, as an immutable snapshot."""
        ...

    def edges(self) -> frozenset[Edge]:
        """The edge set, as an immutable snapshot."""
        ...

    def node_count(self) -> int:
        """``len(nodes())`` without building the snapshot."""
        ...

    def edge_count(self) -> int:
        """``len(edges())`` without building the snapshot."""
        ...

    def successors(self, node: Node, lab: LabelName) -> frozenset[Node]:
        """``{v | (node, lab, v) ∈ E}``."""
        ...

    def predecessors(self, node: Node, lab: LabelName) -> frozenset[Node]:
        """``{u | (u, lab, node) ∈ E}``."""
        ...

    def forward_index(self, lab: LabelName) -> dict:
        """A read-only dict view ``node → successors`` for one label."""
        ...

    def backward_index(self, lab: LabelName) -> dict:
        """A read-only dict view ``node → predecessors`` for one label."""
        ...

    def iter_label_pairs(self, lab: LabelName) -> Iterator[tuple[Node, Node]]:
        """Iterate the ``(u, v)`` pairs labeled ``lab`` without copying."""
        ...

    def has_successor(self, node: Node, lab: LabelName) -> bool:
        """Whether ``node`` has any outgoing ``lab`` edge (no copying)."""
        ...

    def has_predecessor(self, node: Node, lab: LabelName) -> bool:
        """Whether ``node`` has any incoming ``lab`` edge (no copying)."""
        ...

    def label_count(self, lab: LabelName) -> int:
        """The number of ``lab``-labeled edges, O(1)."""
        ...

    def edges_from(self, node: Node) -> frozenset[Edge]:
        """Every edge whose source is ``node``, any label."""
        ...

    def edges_to(self, node: Node) -> frozenset[Edge]:
        """Every edge whose target is ``node``, any label."""
        ...

    @property
    def version(self) -> int:
        """The journal length — grows by one per edge insertion."""
        ...

    def edges_since(self, version: int) -> list[Edge]:
        """The edges inserted after ``version`` was read, in order."""
        ...

    def journal(self) -> tuple[Edge, ...]:
        """The full append-only insertion log."""
        ...

    @property
    def destructive(self) -> bool:
        """Whether a remove/rename broke the journal-determines-content law."""
        ...

    def fingerprint(self) -> Fingerprint | None:
        """A hashable content token, or ``None`` after destructive mutation."""
        ...


class DictBackend:
    """The mutation-friendly hash-index backend (the library default).

    Keeps forward and backward adjacency indexes per label so that NRE
    evaluation can traverse edges in both directions in O(degree).  On top
    of those it maintains, incrementally on every insertion:

    * any-label incident-edge indexes (``edges_from`` / ``edges_to``) so
      the chase engine can find every edge touching a node in O(degree) —
      the key operation when a merge step renames a node;
    * an append-only *edge journal* (``version`` / ``edges_since``)
      recording the order in which edges were added, which is what makes
      semi-naive (delta) chase iteration possible.
    """

    name = "dict"
    mutable = True

    def __init__(self, alphabet: Iterable[LabelName] | None = None):
        self._alphabet: frozenset[LabelName] | None = (
            frozenset(alphabet) if alphabet is not None else None
        )
        self._nodes: set[Node] = set()
        self._edges: set[Edge] = set()
        # label -> node -> set of neighbours
        self._fwd: dict[LabelName, dict[Node, set[Node]]] = {}
        self._bwd: dict[LabelName, dict[Node, set[Node]]] = {}
        # node -> incident edges, any label (for merges and delta matching)
        self._out_edges: dict[Node, set[Edge]] = {}
        self._in_edges: dict[Node, set[Edge]] = {}
        # label -> number of edges, so join ordering reads sizes in O(1)
        self._label_counts: dict[LabelName, int] = {}
        # Append-only log of edge insertions; len() is the graph version.
        self._journal: list[Edge] = []
        # Destructive operations permanently disqualify the graph from
        # journal-keyed caching; the token is memoised per size key.
        self._destructive = False
        self._fingerprint: Fingerprint | None = None
        self._fingerprint_key: tuple[int, int] | None = None

    # -- schema ---------------------------------------------------------- #

    def declared_alphabet(self) -> frozenset[LabelName] | None:
        """The alphabet fixed at construction, or ``None`` when open."""
        return self._alphabet

    def labels(self) -> frozenset[LabelName]:
        """The labels currently carried by at least one edge.

        Counts-based, not index-keys-based: a label whose every edge was
        removed again is no longer *in use*, and the frozen CSR twin
        (built from the edge set) must observe the same label set.
        """
        return frozenset(
            lab for lab, count in self._label_counts.items() if count > 0
        )

    # -- mutation hooks --------------------------------------------------- #

    def add_node(self, node: Node) -> None:
        """Add an isolated node (idempotent)."""
        self._nodes.add(node)

    def add_edge(self, source: Node, lab: LabelName, target: Node) -> None:
        """Add the edge ``(source, lab, target)``; endpoints are auto-added.

        Duplicates are detected on the forward index (which mirrors the
        edge set exactly) *before* the :class:`Edge` is constructed — the
        chase re-adds edges constantly, and the duplicate path costs two
        dict probes and one set probe, no allocation.
        """
        if self._alphabet is not None and lab not in self._alphabet:
            raise SchemaError(
                f"label {lab!r} is not in the alphabet {sorted(self._alphabet)}"
            )
        fwd = self._fwd.get(lab)
        if fwd is None:
            fwd = self._fwd[lab] = {}
        targets = fwd.get(source)
        if targets is None:
            targets = fwd[source] = set()
        elif target in targets:
            return  # duplicate: endpoints are already present too
        targets.add(target)
        self._nodes.add(source)
        self._nodes.add(target)
        edge = Edge(source, lab, target)
        self._edges.add(edge)
        self._bwd.setdefault(lab, {}).setdefault(target, set()).add(source)
        self._out_edges.setdefault(source, set()).add(edge)
        self._in_edges.setdefault(target, set()).add(edge)
        self._label_counts[lab] = self._label_counts.get(lab, 0) + 1
        self._journal.append(edge)

    def clone(self, alphabet: "Iterable[LabelName] | None" = None) -> "DictBackend":
        """A structural copy — index surgery, not edge-by-edge replay.

        Copies the two-level adjacency indexes and incident-edge sets
        directly and *shares* the frozen :class:`Edge` objects (their
        memoised hashes ride along), so cloning costs container copies
        only — no per-edge alphabet check, construction, or re-hash.
        ``alphabet`` re-declares the clone's alphabet (``None`` keeps the
        source's); labels in use that the new alphabet lacks raise
        :class:`~repro.errors.SchemaError`, exactly like replaying the
        edges would.  The clone's journal is the live edge set (fresh
        graphs replayed edge-by-edge journal the same way), so it starts
        non-destructive with ``version == edge_count()``.
        """
        declared = self._alphabet if alphabet is None else frozenset(alphabet)
        if declared is not None:
            for lab, count in self._label_counts.items():
                if count > 0 and lab not in declared:
                    raise SchemaError(
                        f"label {lab!r} is not in the alphabet {sorted(declared)}"
                    )

        def copy_adjacency(
            index: dict[LabelName, dict[Node, set[Node]]],
        ) -> dict[LabelName, dict[Node, set[Node]]]:
            copied = {}
            for lab, bucket in index.items():
                live = {node: set(peers) for node, peers in bucket.items() if peers}
                if live:
                    copied[lab] = live
            return copied

        twin = DictBackend.__new__(DictBackend)
        twin._alphabet = declared
        twin._nodes = set(self._nodes)
        twin._edges = set(self._edges)
        twin._fwd = copy_adjacency(self._fwd)
        twin._bwd = copy_adjacency(self._bwd)
        twin._out_edges = {n: set(es) for n, es in self._out_edges.items() if es}
        twin._in_edges = {n: set(es) for n, es in self._in_edges.items() if es}
        twin._label_counts = {
            lab: count for lab, count in self._label_counts.items() if count > 0
        }
        twin._journal = list(self.edges())
        twin._destructive = False
        twin._fingerprint = None
        twin._fingerprint_key = None
        return twin

    def remove_edge(self, source: Node, lab: LabelName, target: Node) -> None:
        """Remove an edge if present; endpoints stay in the node set."""
        edge = Edge(source, lab, target)
        self._destructive = True  # the journal no longer determines the content
        if edge in self._edges:
            self._edges.remove(edge)
            self._fwd[lab][source].discard(target)
            self._bwd[lab][target].discard(source)
            self._out_edges[source].discard(edge)
            self._in_edges[target].discard(edge)
            self._label_counts[lab] -= 1

    def rename_node(self, old: Node, new: Node) -> frozenset[Edge]:
        """Rename ``old`` to ``new`` in place, rewriting incident edges.

        Returns the rewritten edges (as they read *after* the rename) so
        that callers can re-match triggers against exactly the part of the
        graph that changed.  O(degree(old)), not O(|E|).
        """
        if old == new or old not in self._nodes:
            return frozenset()
        self._destructive = True  # node set changes without a journal entry
        rewritten: set[Edge] = set()
        incident = self._out_edges.get(old, set()) | self._in_edges.get(old, set())
        for edge in list(incident):
            self.remove_edge(edge.source, edge.label, edge.target)
            source = new if edge.source == old else edge.source
            target = new if edge.target == old else edge.target
            self.add_edge(source, edge.label, target)
            rewritten.add(Edge(source, edge.label, target))
        self._nodes.discard(old)
        self._nodes.add(new)
        return frozenset(rewritten)

    def discard_node(self, node: Node) -> None:
        """Remove an isolated node; absent nodes are a no-op.

        Raises :class:`~repro.errors.SchemaError` when ``node`` still has
        incident edges — callers (the incremental chase's dead-node
        cleanup) must retract the edges first, so the node set can never
        silently disagree with the edge set.  Removing a node breaks the
        journal-determines-content law like any other destructive mutation.
        """
        if node not in self._nodes:
            return
        if self._out_edges.get(node) or self._in_edges.get(node):
            raise SchemaError(
                f"cannot discard node {node!r}: it still has incident edges"
            )
        self._destructive = True  # node set changes without a journal entry
        self._nodes.discard(node)

    # -- membership and bulk reads ---------------------------------------- #

    def has_node(self, node: Node) -> bool:
        """Whether ``node`` is in the node set."""
        return node in self._nodes

    def has_edge(self, source: Node, lab: LabelName, target: Node) -> bool:
        """Whether the edge ``(source, lab, target)`` is present.

        Probed on the forward index rather than the edge set: three
        container probes against one :class:`Edge` construction plus a
        three-field hash — this runs per candidate pair in the sameAs
        saturation's violation filter.
        """
        bucket = self._fwd.get(lab)
        if bucket is None:
            return False
        targets = bucket.get(source)
        return targets is not None and target in targets

    def nodes(self) -> frozenset[Node]:
        """The node set."""
        return frozenset(self._nodes)

    def edges(self) -> frozenset[Edge]:
        """The edge set."""
        return frozenset(self._edges)

    def node_count(self) -> int:
        """The number of nodes."""
        return len(self._nodes)

    def edge_count(self) -> int:
        """The number of edges."""
        return len(self._edges)

    # -- adjacency reads --------------------------------------------------- #

    def successors(self, node: Node, lab: LabelName) -> frozenset[Node]:
        """``{v | (node, lab, v) ∈ E}``."""
        return frozenset(self._fwd.get(lab, {}).get(node, ()))

    def predecessors(self, node: Node, lab: LabelName) -> frozenset[Node]:
        """``{u | (u, lab, node) ∈ E}``."""
        return frozenset(self._bwd.get(lab, {}).get(node, ()))

    def forward_index(self, lab: LabelName) -> dict[Node, set[Node]]:
        """The live forward adjacency index for ``lab`` — READ ONLY."""
        return self._fwd.get(lab, _EMPTY_INDEX)

    def backward_index(self, lab: LabelName) -> dict[Node, set[Node]]:
        """The live backward adjacency index for ``lab`` — READ ONLY."""
        return self._bwd.get(lab, _EMPTY_INDEX)

    def iter_label_pairs(self, lab: LabelName) -> Iterator[tuple[Node, Node]]:
        """Iterate the ``(u, v)`` pairs labeled ``lab`` without copying."""
        for u, targets in self._fwd.get(lab, {}).items():
            for v in targets:
                yield (u, v)

    def has_successor(self, node: Node, lab: LabelName) -> bool:
        """Whether ``node`` has any outgoing ``lab`` edge (no copying)."""
        return bool(self._fwd.get(lab, {}).get(node))

    def has_predecessor(self, node: Node, lab: LabelName) -> bool:
        """Whether ``node`` has any incoming ``lab`` edge (no copying)."""
        return bool(self._bwd.get(lab, {}).get(node))

    def label_count(self, lab: LabelName) -> int:
        """The number of edges labeled ``lab``, from an O(1) counter."""
        return self._label_counts.get(lab, 0)

    def edges_from(self, node: Node) -> frozenset[Edge]:
        """Every edge whose source is ``node`` (any label)."""
        return frozenset(self._out_edges.get(node, ()))

    def edges_to(self, node: Node) -> frozenset[Edge]:
        """Every edge whose target is ``node`` (any label)."""
        return frozenset(self._in_edges.get(node, ()))

    # -- journal / fingerprint --------------------------------------------- #

    @property
    def version(self) -> int:
        """A counter that increases with every edge insertion."""
        return len(self._journal)

    def edges_since(self, version: int) -> list[Edge]:
        """The edges inserted after ``version`` was read, in order."""
        return self._journal[version:]

    def journal(self) -> tuple[Edge, ...]:
        """The full append-only insertion log as a tuple."""
        return tuple(self._journal)

    @property
    def destructive(self) -> bool:
        """Whether a destructive mutation invalidated journal-keyed caching."""
        return self._destructive

    def fingerprint(self) -> Fingerprint | None:
        """A hashable content token, or ``None`` after destructive mutation."""
        if self._destructive:
            return None
        key = (len(self._journal), len(self._nodes))
        if self._fingerprint is None or self._fingerprint_key != key:
            self._fingerprint = Fingerprint(
                frozenset(self._nodes), tuple(self._journal)
            )
            self._fingerprint_key = key
        return self._fingerprint


def _frozen_mutation(operation: str) -> FrozenGraphError:
    return FrozenGraphError(
        f"cannot {operation} on a frozen (CSR) graph — call thaw() to get a "
        "mutable dict-backed copy first"
    )


class CsrBackend:
    """Read-only interned-CSR storage for frozen graphs.

    Nodes and labels are interned to dense integer ids at construction
    (deterministically, by ``repr`` order, so two content-equal graphs
    intern identically).  Each label holds four buffers::

        fwd_offsets[lab], fwd_targets[lab]   # out-neighbour ids of u at
                                             # fwd_targets[fwd_offsets[u] :
                                             #             fwd_offsets[u+1]]
        bwd_offsets[lab], bwd_targets[lab]   # mirrored for predecessors

    with each node's neighbour slice sorted ascending (so ``has_edge`` is
    a binary search and traversal output order is deterministic).  The
    buffers are numpy ``int64`` arrays when numpy is importable — the
    substrate of the vectorized execution kernel
    (:mod:`repro.graph.vector`), pickled into snapshots as-is so reloads
    reattach them without copies — and :class:`array.array` values
    (typecode ``"q"``) otherwise.  Every accessor treats the two buffer
    types interchangeably, so snapshots written by either installation
    load on the other (numpy-written snapshots do require numpy to
    unpickle).

    All mutation hooks raise :class:`~repro.errors.FrozenGraphError`.
    The generic read surface (``forward_index`` et al.) is served from
    lazily-materialised per-label dictionaries, so every consumer of the
    dict backend keeps working unchanged; the product-automaton evaluator
    bypasses those views entirely through :meth:`forward_csr` /
    :meth:`backward_csr` / :meth:`node_id` / :meth:`node_at`.
    """

    name = "csr"
    mutable = False

    def __init__(
        self,
        alphabet: frozenset[LabelName] | None,
        nodes: Iterable[Node],
        edges: Iterable[Edge],
        journal: tuple[Edge, ...],
        destructive: bool,
    ):
        self._alphabet = alphabet
        # Deterministic interning: sort by repr, like every other ordering
        # decision in the library (nodes are arbitrary hashables).
        self._node_list: list[Node] = sorted(set(nodes), key=repr)
        self._node_ids: dict[Node, int] = {
            node: index for index, node in enumerate(self._node_list)
        }
        self._journal = journal
        self._destructive = destructive
        self._fingerprint_token: Fingerprint | None = (
            None
            if destructive
            else Fingerprint(frozenset(self._node_list), journal)
        )

        by_label: dict[LabelName, list[tuple[int, int]]] = {}
        edge_total = 0
        for edge in edges:
            by_label.setdefault(edge.label, []).append(
                (self._node_ids[edge.source], self._node_ids[edge.target])
            )
            edge_total += 1
        self._edge_total = edge_total
        self._labels = frozenset(by_label)

        count = len(self._node_list)
        self._fwd_offsets: dict[LabelName, array] = {}
        self._fwd_targets: dict[LabelName, array] = {}
        self._bwd_offsets: dict[LabelName, array] = {}
        self._bwd_targets: dict[LabelName, array] = {}
        self._label_counts: dict[LabelName, int] = {}
        for lab, pairs in by_label.items():
            self._label_counts[lab] = len(pairs)
            self._fwd_offsets[lab], self._fwd_targets[lab] = _build_csr(
                count, sorted(pairs)
            )
            self._bwd_offsets[lab], self._bwd_targets[lab] = _build_csr(
                count, sorted((target, source) for source, target in pairs)
            )

        # Lazy dict-shaped views for the generic read surface.
        self._fwd_views: dict[LabelName, dict[Node, frozenset[Node]]] = {}
        self._bwd_views: dict[LabelName, dict[Node, frozenset[Node]]] = {}
        # Lazy plain-list twins of the CSR buffers: CPython indexes and
        # slices lists of (pre-boxed) ints markedly faster than array
        # values, so the scalar automaton fast path resolves against these.
        self._fwd_lists: dict[LabelName, tuple[list[int], list[int]]] = {}
        self._bwd_lists: dict[LabelName, tuple[list[int], list[int]]] = {}
        # Lazy numpy int64 twins for the vector kernel (no-copy views when
        # the buffers are already numpy-built).
        self._fwd_arrays: dict[LabelName, tuple] = {}
        self._bwd_arrays: dict[LabelName, tuple] = {}
        self._edge_set: frozenset[Edge] | None = None

    # -- interning / CSR surface (the automaton fast path) ----------------- #

    def node_id(self, node: Node) -> int | None:
        """The dense integer id of ``node``, or ``None`` if absent."""
        return self._node_ids.get(node)

    def node_at(self, node_id: int) -> Node:
        """The node interned at ``node_id`` (inverse of :meth:`node_id`)."""
        return self._node_list[node_id]

    def nodes_at(self, node_ids: Iterable[int]) -> "map":
        """Bulk :meth:`node_at`: the nodes interned at each id, in order.

        Returns a lazy C-level ``map`` so callers can feed it straight into
        a set or list constructor without a Python-level loop — the vector
        kernel decodes whole hit arrays through this.
        """
        return map(self._node_list.__getitem__, node_ids)

    def forward_csr(self, lab: LabelName) -> tuple[array, array] | None:
        """``(offsets, targets)`` arrays for ``lab``, or ``None`` if unused."""
        offsets = self._fwd_offsets.get(lab)
        if offsets is None:
            return None
        return offsets, self._fwd_targets[lab]

    def backward_csr(self, lab: LabelName) -> tuple[array, array] | None:
        """The predecessor mirror of :meth:`forward_csr`."""
        offsets = self._bwd_offsets.get(lab)
        if offsets is None:
            return None
        return offsets, self._bwd_targets[lab]

    def forward_lists(self, lab: LabelName) -> tuple[list, list] | None:
        """``(offsets, targets)`` as plain lists (memoised), or ``None``.

        The evaluation-speed twin of :meth:`forward_csr`: one ``tolist``
        per label converts the buffers at C speed, and every later BFS
        indexes pre-boxed ints instead of unboxing array elements.
        """
        lists = self._fwd_lists.get(lab)
        if lists is None:
            offsets = self._fwd_offsets.get(lab)
            if offsets is None:
                return None
            lists = self._fwd_lists[lab] = (
                offsets.tolist(),
                self._fwd_targets[lab].tolist(),
            )
        return lists

    def backward_lists(self, lab: LabelName) -> tuple[list, list] | None:
        """The predecessor mirror of :meth:`forward_lists`."""
        lists = self._bwd_lists.get(lab)
        if lists is None:
            offsets = self._bwd_offsets.get(lab)
            if offsets is None:
                return None
            lists = self._bwd_lists[lab] = (
                offsets.tolist(),
                self._bwd_targets[lab].tolist(),
            )
        return lists

    def forward_arrays(self, lab: LabelName) -> tuple | None:
        """``(offsets, targets)`` as numpy ``int64`` arrays (memoised).

        The vector kernel's buffer view: a no-copy pass-through when the
        backend was built with numpy, a one-time conversion when the
        buffers came from an :class:`array.array` build (e.g. a snapshot
        written by a numpy-less installation).  Returns ``None`` for
        labels absent from the graph — or when numpy itself is absent,
        which is what flips the kernel back to scalar.
        """
        arrays = self._fwd_arrays.get(lab)
        if arrays is None:
            np_mod = kernels.get_numpy()
            if np_mod is None:
                return None
            offsets = self._fwd_offsets.get(lab)
            if offsets is None:
                return None
            arrays = self._fwd_arrays[lab] = (
                np_mod.asarray(offsets, dtype=np_mod.int64),
                np_mod.asarray(self._fwd_targets[lab], dtype=np_mod.int64),
            )
        return arrays

    def backward_arrays(self, lab: LabelName) -> tuple | None:
        """The predecessor mirror of :meth:`forward_arrays`."""
        arrays = self._bwd_arrays.get(lab)
        if arrays is None:
            np_mod = kernels.get_numpy()
            if np_mod is None:
                return None
            offsets = self._bwd_offsets.get(lab)
            if offsets is None:
                return None
            arrays = self._bwd_arrays[lab] = (
                np_mod.asarray(offsets, dtype=np_mod.int64),
                np_mod.asarray(self._bwd_targets[lab], dtype=np_mod.int64),
            )
        return arrays

    # -- schema ------------------------------------------------------------ #

    def declared_alphabet(self) -> frozenset[LabelName] | None:
        """The alphabet declared when the source graph was built."""
        return self._alphabet

    def labels(self) -> frozenset[LabelName]:
        """The labels carried by at least one edge."""
        return self._labels

    # -- mutation hooks (all refused) -------------------------------------- #

    def add_node(self, node: Node) -> None:
        """Refused: frozen graphs are immutable."""
        raise _frozen_mutation("add_node")

    def add_edge(self, source: Node, lab: LabelName, target: Node) -> None:
        """Refused: frozen graphs are immutable."""
        raise _frozen_mutation("add_edge")

    def remove_edge(self, source: Node, lab: LabelName, target: Node) -> None:
        """Refused: frozen graphs are immutable."""
        raise _frozen_mutation("remove_edge")

    def rename_node(self, old: Node, new: Node) -> frozenset[Edge]:
        """Refused: frozen graphs are immutable."""
        raise _frozen_mutation("rename_node")

    def discard_node(self, node: Node) -> None:
        """Refused: frozen graphs are immutable."""
        raise _frozen_mutation("discard_node")

    # -- membership and bulk reads ----------------------------------------- #

    def has_node(self, node: Node) -> bool:
        """Whether ``node`` is in the node set."""
        return node in self._node_ids

    def has_edge(self, source: Node, lab: LabelName, target: Node) -> bool:
        """Edge membership by binary search in the sorted CSR slice."""
        offsets = self._fwd_offsets.get(lab)
        if offsets is None:
            return False
        sid = self._node_ids.get(source)
        tid = self._node_ids.get(target)
        if sid is None or tid is None:
            return False
        targets = self._fwd_targets[lab]
        low, high = int(offsets[sid]), int(offsets[sid + 1])
        position = bisect_left(targets, tid, low, high)
        return bool(position < high and targets[position] == tid)

    def nodes(self) -> frozenset[Node]:
        """The node set."""
        return frozenset(self._node_list)

    def edges(self) -> frozenset[Edge]:
        """The edge set (materialised from the CSR buffers once, cached)."""
        if self._edge_set is None:
            node_at = self._node_list
            collected: list[Edge] = []
            for lab, offsets in self._fwd_offsets.items():
                targets = self._fwd_targets[lab]
                for sid in range(len(node_at)):
                    source = node_at[sid]
                    for position in range(offsets[sid], offsets[sid + 1]):
                        collected.append(Edge(source, lab, node_at[targets[position]]))
            self._edge_set = frozenset(collected)
        return self._edge_set

    def node_count(self) -> int:
        """The number of nodes."""
        return len(self._node_list)

    def edge_count(self) -> int:
        """The number of edges."""
        return self._edge_total

    # -- adjacency reads ---------------------------------------------------- #

    def successors(self, node: Node, lab: LabelName) -> frozenset[Node]:
        """``{v | (node, lab, v) ∈ E}`` from the CSR slice."""
        offsets = self._fwd_offsets.get(lab)
        sid = self._node_ids.get(node)
        if offsets is None or sid is None:
            return frozenset()
        targets = self._fwd_targets[lab]
        node_at = self._node_list
        return frozenset(
            node_at[targets[position]]
            for position in range(offsets[sid], offsets[sid + 1])
        )

    def predecessors(self, node: Node, lab: LabelName) -> frozenset[Node]:
        """``{u | (u, lab, node) ∈ E}`` from the CSR slice."""
        offsets = self._bwd_offsets.get(lab)
        tid = self._node_ids.get(node)
        if offsets is None or tid is None:
            return frozenset()
        targets = self._bwd_targets[lab]
        node_at = self._node_list
        return frozenset(
            node_at[targets[position]]
            for position in range(offsets[tid], offsets[tid + 1])
        )

    def _view(
        self,
        lab: LabelName,
        views: dict[LabelName, dict[Node, frozenset[Node]]],
        offsets_by_label: dict[LabelName, array],
        targets_by_label: dict[LabelName, array],
    ) -> dict[Node, frozenset[Node]]:
        view = views.get(lab)
        if view is None:
            offsets = offsets_by_label.get(lab)
            if offsets is None:
                return _EMPTY_INDEX
            targets = targets_by_label[lab]
            node_at = self._node_list
            view = {}
            for nid in range(len(node_at)):
                low, high = offsets[nid], offsets[nid + 1]
                if low != high:
                    view[node_at[nid]] = frozenset(
                        node_at[targets[position]] for position in range(low, high)
                    )
            views[lab] = view
        return view

    def forward_index(self, lab: LabelName) -> dict:
        """A dict-shaped forward adjacency view (materialised lazily).

        Shaped like :meth:`DictBackend.forward_index` so generic
        consumers keep working; values are frozensets because the frozen
        graph never changes.
        """
        return self._view(lab, self._fwd_views, self._fwd_offsets, self._fwd_targets)

    def backward_index(self, lab: LabelName) -> dict:
        """The predecessor mirror of :meth:`forward_index`."""
        return self._view(lab, self._bwd_views, self._bwd_offsets, self._bwd_targets)

    def iter_label_pairs(self, lab: LabelName) -> Iterator[tuple[Node, Node]]:
        """Iterate the ``(u, v)`` pairs labeled ``lab`` from the CSR buffers."""
        offsets = self._fwd_offsets.get(lab)
        if offsets is None:
            return
        targets = self._fwd_targets[lab]
        node_at = self._node_list
        for sid in range(len(node_at)):
            source = node_at[sid]
            for position in range(offsets[sid], offsets[sid + 1]):
                yield (source, node_at[targets[position]])

    def has_successor(self, node: Node, lab: LabelName) -> bool:
        """Whether ``node`` has any outgoing ``lab`` edge."""
        offsets = self._fwd_offsets.get(lab)
        sid = self._node_ids.get(node)
        if offsets is None or sid is None:
            return False
        return offsets[sid] != offsets[sid + 1]

    def has_predecessor(self, node: Node, lab: LabelName) -> bool:
        """Whether ``node`` has any incoming ``lab`` edge."""
        offsets = self._bwd_offsets.get(lab)
        tid = self._node_ids.get(node)
        if offsets is None or tid is None:
            return False
        return offsets[tid] != offsets[tid + 1]

    def label_count(self, lab: LabelName) -> int:
        """The number of edges labeled ``lab``."""
        return self._label_counts.get(lab, 0)

    def edges_from(self, node: Node) -> frozenset[Edge]:
        """Every edge whose source is ``node`` (any label)."""
        sid = self._node_ids.get(node)
        if sid is None:
            return frozenset()
        node_at = self._node_list
        collected: list[Edge] = []
        for lab, offsets in self._fwd_offsets.items():
            targets = self._fwd_targets[lab]
            for position in range(offsets[sid], offsets[sid + 1]):
                collected.append(Edge(node, lab, node_at[targets[position]]))
        return frozenset(collected)

    def edges_to(self, node: Node) -> frozenset[Edge]:
        """Every edge whose target is ``node`` (any label)."""
        tid = self._node_ids.get(node)
        if tid is None:
            return frozenset()
        node_at = self._node_list
        collected: list[Edge] = []
        for lab, offsets in self._bwd_offsets.items():
            targets = self._bwd_targets[lab]
            for position in range(offsets[tid], offsets[tid + 1]):
                collected.append(Edge(node_at[targets[position]], lab, node))
        return frozenset(collected)

    # -- journal / fingerprint ---------------------------------------------- #

    @property
    def version(self) -> int:
        """The (now constant) journal length of the frozen graph."""
        return len(self._journal)

    def edges_since(self, version: int) -> list[Edge]:
        """The journal suffix after ``version`` (always empty at the tip)."""
        return list(self._journal[version:])

    def journal(self) -> tuple[Edge, ...]:
        """The journal carried over from the source graph at freeze time."""
        return self._journal

    @property
    def destructive(self) -> bool:
        """Whether the *source* graph had destructively mutated pre-freeze."""
        return self._destructive

    def fingerprint(self) -> Fingerprint | None:
        """The content token (computed once at freeze; ``None`` if tainted)."""
        return self._fingerprint_token

    @classmethod
    def from_backend(cls, backend: "StorageBackend") -> "CsrBackend":
        """Build a CSR backend holding exactly ``backend``'s content."""
        return cls(
            alphabet=backend.declared_alphabet(),
            nodes=backend.nodes(),
            edges=backend.edges(),
            journal=backend.journal(),
            destructive=backend.destructive,
        )

    def extended(self, new_edges: Iterable[Edge]) -> "CsrBackend":
        """A new CSR backend with ``new_edges`` appended to the journal.

        The journal-replay *refreeze* path: instead of thawing to a dict
        graph and re-freezing the whole thing per update batch, only the
        labels touched by the batch rebuild their CSR buffers — buffers,
        adjacency views and node interning of untouched labels are shared
        with ``self``.  Edges already present (or repeated inside the
        batch) are skipped, mirroring :meth:`DictBackend.add_edge`'s
        dedupe, so the resulting fingerprint equals the one a dict-backed
        twin would have produced applying the same insertions.  With an
        empty effective batch, ``self`` is returned unchanged (fingerprint
        survival under no-op batches is a pinned regression).

        Fresh endpoint nodes are interned *after* the existing ones (in
        repr order among themselves): existing node ids — and with them
        every shared buffer — stay valid.  Cost is O(touched labels' edges
        + new nodes), not O(|E|).
        """
        appended: list[Edge] = []
        seen: set[Edge] = set()
        for edge in new_edges:
            if self._alphabet is not None and edge.label not in self._alphabet:
                raise SchemaError(
                    f"label {edge.label!r} is not in the alphabet "
                    f"{sorted(self._alphabet)}"
                )
            if edge in seen or self.has_edge(edge.source, edge.label, edge.target):
                continue
            seen.add(edge)
            appended.append(edge)
        if not appended:
            return self

        clone = CsrBackend.__new__(CsrBackend)
        clone._alphabet = self._alphabet
        node_list = list(self._node_list)
        node_ids = dict(self._node_ids)
        fresh = sorted(
            {
                endpoint
                for edge in appended
                for endpoint in (edge.source, edge.target)
                if endpoint not in node_ids
            },
            key=repr,
        )
        for node in fresh:
            node_ids[node] = len(node_list)
            node_list.append(node)
        clone._node_list = node_list
        clone._node_ids = node_ids
        clone._journal = self._journal + tuple(appended)
        clone._destructive = self._destructive
        clone._fingerprint_token = (
            None
            if clone._destructive
            else Fingerprint(frozenset(node_list), clone._journal)
        )
        clone._edge_total = self._edge_total + len(appended)

        touched = {edge.label for edge in appended}
        count = len(node_list)
        old_count = len(self._node_list)
        clone._label_counts = dict(self._label_counts)
        clone._fwd_offsets = {}
        clone._fwd_targets = {}
        clone._bwd_offsets = {}
        clone._bwd_targets = {}
        clone._fwd_views = {}
        clone._bwd_views = {}
        clone._fwd_lists = {}
        clone._bwd_lists = {}
        clone._fwd_arrays = {}
        clone._bwd_arrays = {}
        clone._edge_set = None
        for lab in self._fwd_offsets:
            if lab in touched:
                continue
            if count == old_count:
                clone._fwd_offsets[lab] = self._fwd_offsets[lab]
                clone._bwd_offsets[lab] = self._bwd_offsets[lab]
            else:
                # Fresh nodes have no edges under untouched labels: extend
                # the offsets with the final running total, keep targets.
                clone._fwd_offsets[lab] = _extend_offsets(
                    self._fwd_offsets[lab], count - old_count
                )
                clone._bwd_offsets[lab] = _extend_offsets(
                    self._bwd_offsets[lab], count - old_count
                )
            clone._fwd_targets[lab] = self._fwd_targets[lab]
            clone._bwd_targets[lab] = self._bwd_targets[lab]
            view = self._fwd_views.get(lab)
            if view is not None:
                clone._fwd_views[lab] = view
            view = self._bwd_views.get(lab)
            if view is not None:
                clone._bwd_views[lab] = view
        for lab in touched:
            pairs: list[tuple[int, int]] = []
            offsets = self._fwd_offsets.get(lab)
            if offsets is not None:
                targets = self._fwd_targets[lab]
                tolist = getattr(targets, "tolist", None)
                target_values = tolist() if tolist is not None else list(targets)
                offset_values = offsets.tolist()
                for sid in range(old_count):
                    for position in range(offset_values[sid], offset_values[sid + 1]):
                        pairs.append((sid, target_values[position]))
            for edge in appended:
                if edge.label == lab:
                    pairs.append((node_ids[edge.source], node_ids[edge.target]))
            clone._label_counts[lab] = len(pairs)
            clone._fwd_offsets[lab], clone._fwd_targets[lab] = _build_csr(
                count, sorted(pairs)
            )
            clone._bwd_offsets[lab], clone._bwd_targets[lab] = _build_csr(
                count, sorted((target, source) for source, target in pairs)
            )
        clone._labels = frozenset(clone._fwd_offsets)
        return clone

    # -- snapshot support ---------------------------------------------------- #

    def dump_state(self) -> dict:
        """The picklable physical state for :mod:`repro.graph.snapshot`.

        Contains the interning table, the journal, and the raw CSR buffers
        — everything :meth:`restore_state` needs to reattach the backend
        without re-sorting or re-interning anything.
        """
        return {
            "alphabet": self._alphabet,
            "nodes": list(self._node_list),
            "journal": self._journal,
            "destructive": self._destructive,
            "edge_total": self._edge_total,
            "label_counts": dict(self._label_counts),
            "fwd_offsets": dict(self._fwd_offsets),
            "fwd_targets": dict(self._fwd_targets),
            "bwd_offsets": dict(self._bwd_offsets),
            "bwd_targets": dict(self._bwd_targets),
        }

    @classmethod
    def restore_state(cls, state: dict) -> "CsrBackend":
        """Reattach a backend from :meth:`dump_state` output (no rebuild).

        Buffers are reattached as stored — numpy arrays stay numpy arrays
        (no copies) — except when a snapshot written by a numpy-less
        installation (:class:`array.array` buffers) is loaded where numpy
        is available: those are upgraded once here, so the vector kernel
        never pays a per-query conversion.
        """
        backend = cls.__new__(cls)
        backend._alphabet = state["alphabet"]
        backend._node_list = list(state["nodes"])
        backend._node_ids = {
            node: index for index, node in enumerate(backend._node_list)
        }
        backend._journal = tuple(state["journal"])
        backend._destructive = bool(state["destructive"])
        backend._fingerprint_token = (
            None
            if backend._destructive
            else Fingerprint(frozenset(backend._node_list), backend._journal)
        )
        backend._edge_total = int(state["edge_total"])
        backend._label_counts = dict(state["label_counts"])
        backend._labels = frozenset(backend._label_counts)
        backend._fwd_offsets = _coerce_buffers(state["fwd_offsets"])
        backend._fwd_targets = _coerce_buffers(state["fwd_targets"])
        backend._bwd_offsets = _coerce_buffers(state["bwd_offsets"])
        backend._bwd_targets = _coerce_buffers(state["bwd_targets"])
        backend._fwd_views = {}
        backend._bwd_views = {}
        backend._fwd_lists = {}
        backend._bwd_lists = {}
        backend._fwd_arrays = {}
        backend._bwd_arrays = {}
        backend._edge_set = None
        return backend


def _build_csr(node_count: int, sorted_pairs: list[tuple[int, int]]) -> tuple:
    """Build ``(offsets, targets)`` buffers from pairs sorted by (row, col).

    With numpy the whole build is three array ops (``bincount`` for the
    per-row degrees, ``cumsum`` for the offsets, one fancy slice for the
    targets); the :class:`array.array` fallback is the original Python
    counting loop.  Both produce identical integer content.
    """
    np_mod = kernels.get_numpy()
    if np_mod is not None:
        offsets = np_mod.zeros(node_count + 1, dtype=np_mod.int64)
        if sorted_pairs:
            pairs = np_mod.asarray(sorted_pairs, dtype=np_mod.int64)
            np_mod.cumsum(
                np_mod.bincount(pairs[:, 0], minlength=node_count),
                out=offsets[1:],
            )
            targets = np_mod.ascontiguousarray(pairs[:, 1])
        else:
            targets = np_mod.empty(0, dtype=np_mod.int64)
        return offsets, targets
    offsets = array("q", bytes(8 * (node_count + 1)))
    targets = array("q", (col for _, col in sorted_pairs))
    for row, _ in sorted_pairs:
        offsets[row + 1] += 1
    running = 0
    for index in range(1, node_count + 1):
        running += offsets[index]
        offsets[index] = running
    return offsets, targets


def _extend_offsets(offsets, extra: int):
    """Append ``extra`` copies of the final running total to an offsets buffer."""
    np_mod = kernels.get_numpy()
    if np_mod is not None and isinstance(offsets, np_mod.ndarray):
        return np_mod.concatenate(
            [offsets, np_mod.full(extra, offsets[-1], dtype=np_mod.int64)]
        )
    extended = array("q", offsets)
    extended.extend([extended[-1]] * extra)
    return extended


def _coerce_buffers(buffers: dict) -> dict:
    """Upgrade restored CSR buffers to numpy when numpy is available."""
    np_mod = kernels.get_numpy()
    if np_mod is None:
        return dict(buffers)
    return {
        lab: buf
        if isinstance(buf, np_mod.ndarray)
        else np_mod.asarray(buf, dtype=np_mod.int64)
        for lab, buf in buffers.items()
    }
