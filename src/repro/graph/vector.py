"""The vectorized (numpy) product-automaton search kernel.

This is the array-at-a-time twin of the scalar integer-id search in
:meth:`repro.graph.automaton._Runner._search_ids`, and the substrate of
the ``"vector"`` execution kernel (:mod:`repro.kernels`).  The scalar
loop visits one product config ``(node, state)`` per Python iteration;
here a whole *frontier* moves at once:

* the per-state frontier is an ``int64`` array of flat configs
  ``src_index × |V| + node`` — one search evaluates **many sources
  simultaneously**, which is what turns a 120-source bulk sweep into a
  handful of large array ops instead of 120 small searches;
* the visited map is one boolean matrix of shape
  ``state_count × (n_src · |V|)``;
* edge expansion is a vectorized CSR gather: per drained state, degrees
  come from one fancy-indexed ``offsets`` read, the slice positions from
  ``np.repeat`` over the degree counts plus an ``arange``, and the
  successor configs from one fancy-indexed ``targets`` read — no
  per-node Python at all;
* nested ``[·]`` tests batch their candidate arrays through a recursive
  multi-source search, memoised per (sub-automaton, node) in boolean
  ``known`` / ``value`` arrays shared by every source.

Frontier insertion filters fresh configs through the visited row
(``succ[~row[succ]]``) *before* appending, so cross-batch duplicates
never re-expand; duplicates *within* one gathered array (two frontier
nodes sharing a successor in the same drain) are tolerated — their
second expansion finds every successor already visited — because the
sort a full dedupe needs costs more than the duplicate work saves.

Answers are byte-identical to the scalar kernel on every query; the
property suite in ``tests/test_properties/test_kernel_properties.py``
pins vector == scalar == reference over random graphs and NREs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro import kernels

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.graph.automaton import CompiledAutomaton

# Soft cap on product-space configs materialised per batched search;
# callers chunk source lists so the visited matrix stays ~state_count ×
# this many bools regardless of how many sources they sweep.
CHUNK_CONFIGS = 1 << 19


class VectorSearch:
    """Batched product-automaton searches over one frozen CSR backend.

    Owned by a :class:`~repro.graph.automaton._Runner` the way the scalar
    memo tables are: one instance per (graph, runner), holding the
    resolved per-state move tables and the nested-test memos.  ``stats``
    is the runner's duck-typed counter object (may be ``None``).
    """

    def __init__(self, csr, stats: object | None = None):
        self.csr = csr
        self.stats = stats
        self.np = kernels.get_numpy()
        # automaton cache_key -> per-state (moves, checks) with numpy
        # CSR buffers bound; mirrors _Runner._resolve_ids.
        self._resolved: dict[int, tuple] = {}
        # automaton cache_key -> (known, value) boolean arrays over |V|:
        # the vectorized nested-test memo (node-level — test answers are
        # source-independent, so every source shares one row).
        self._test_memo: dict[int, tuple] = {}

    # ------------------------------------------------------------------ #
    # Public modes
    # ------------------------------------------------------------------ #

    def reachable_many(
        self, compiled: "CompiledAutomaton", source_ids: Sequence[int]
    ) -> list:
        """Per-source accepted node ids (ascending), one list entry per source.

        The bulk-traversal entry point: all sources advance through one
        shared product BFS, chunked so the visited matrix never exceeds
        ~:data:`CHUNK_CONFIGS` configs per state.
        """
        np = self.np
        node_count = self.csr.node_count()
        per_chunk = max(1, CHUNK_CONFIGS // max(1, node_count))
        results: list = []
        for begin in range(0, len(source_ids), per_chunk):
            chunk = source_ids[begin : begin + per_chunk]
            hits = self._run_collect(compiled, chunk)
            for index in range(len(chunk)):
                row = hits[index * node_count : (index + 1) * node_count]
                results.append(np.flatnonzero(row))
        return results

    def nonempty_many(
        self, compiled: "CompiledAutomaton", source_ids: Sequence[int]
    ):
        """Boolean array: whether each source reaches *any* accepting config.

        The batched nested-test question, with per-source early exit:
        sources whose verdict is already ``True`` drop out of every later
        frontier, and the whole search stops once every source is done.
        """
        np = self.np
        verdict = np.zeros(len(source_ids), dtype=bool)
        node_count = self.csr.node_count()
        per_chunk = max(1, CHUNK_CONFIGS // max(1, node_count))
        for begin in range(0, len(source_ids), per_chunk):
            chunk = source_ids[begin : begin + per_chunk]
            verdict[begin : begin + len(chunk)] = self._run_nonempty(
                compiled, chunk
            )
        return verdict

    def holds(
        self, compiled: "CompiledAutomaton", source_id: int, target_id: int
    ) -> bool:
        """Single-pair mode with early exit on the target's acceptance."""
        return self._run_holds(compiled, source_id, target_id)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _resolve(self, compiled: "CompiledAutomaton") -> tuple:
        """Bind the automaton's per-state moves to the numpy CSR buffers.

        Per state: ``(moves, checks)`` where each move is ``(offsets,
        targets, next_states)`` — forward and backward merged, absent
        labels contributing nothing — and checks are the compiled nested
        tests ``(sub_automaton, next_state)``.
        """
        key = compiled.cache_key
        resolved = self._resolved.get(key)
        if resolved is None:
            csr = self.csr
            per_state = []
            for state in range(compiled.state_count):
                moves = []
                for lab, targets in compiled.fwd[state].items():
                    buffers = csr.forward_arrays(lab)
                    if buffers is not None:
                        moves.append((buffers[0], buffers[1], targets))
                for lab, targets in compiled.bwd[state].items():
                    buffers = csr.backward_arrays(lab)
                    if buffers is not None:
                        moves.append((buffers[0], buffers[1], targets))
                per_state.append((tuple(moves), compiled.tests[state]))
            resolved = self._resolved[key] = tuple(per_state)
        return resolved

    def _gather(self, np, offsets, targets, node, srcbase):
        """One vectorized CSR expansion of a frontier.

        Returns the flat successor configs (with intra-array duplicates,
        see the module docstring) or ``None`` when the frontier has no
        edges under this label.
        """
        starts = offsets[node]
        degs = offsets[node + 1] - starts
        total = int(degs.sum())
        if not total:
            return None
        # ndarray methods, not np.repeat/np.cumsum: the module-level
        # functions route through a dispatch wrapper that costs more than
        # the kernel's smaller gathers.
        cum = degs.cumsum()
        positions = (starts - (cum - degs)).repeat(degs)
        positions += np.arange(total, dtype=np.int64)
        succ = srcbase.repeat(degs)
        succ += targets[positions]
        return succ

    def _admitted(self, compiled_nested: "CompiledAutomaton", node):
        """Vectorized nested test: the boolean verdict per frontier node.

        Consults the (sub-automaton, node) memo arrays and batches every
        still-unknown node through one recursive :meth:`nonempty_many`.
        """
        np = self.np
        memo = self._test_memo.get(compiled_nested.cache_key)
        if memo is None:
            node_count = self.csr.node_count()
            memo = self._test_memo[compiled_nested.cache_key] = (
                np.zeros(node_count, dtype=bool),
                np.zeros(node_count, dtype=bool),
            )
        known, value = memo
        unknown = np.unique(node[~known[node]])
        stats = self.stats
        if unknown.size:
            if stats is not None:
                stats.nested_tests += int(unknown.size)  # type: ignore[attr-defined]
            value[unknown] = self.nonempty_many(compiled_nested, unknown)
            known[unknown] = True
        elif stats is not None:
            stats.nested_test_cache_hits += 1  # type: ignore[attr-defined]
        return value[node]

    def _run_collect(self, compiled: "CompiledAutomaton", source_ids):
        """Multi-source collect mode: the flat boolean hit mask."""
        np = self.np
        node_count = self.csr.node_count()
        state_count = compiled.state_count
        accepting = compiled.accepting
        resolved = self._resolve(compiled)
        n_src = len(source_ids)
        domain = n_src * node_count
        seen = np.zeros((state_count, domain), dtype=bool)
        start = compiled.start
        init = np.arange(n_src, dtype=np.int64) * node_count
        init += np.asarray(source_ids, dtype=np.int64)
        seen[start, init] = True
        pending: list = [None] * state_count
        pending[start] = [init]
        active = [start]
        while active:
            state = active.pop()
            chunks = pending[state]
            pending[state] = None
            if chunks is None:
                continue
            batch = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            node = batch % node_count
            srcbase = batch - node
            moves, checks = resolved[state]
            for offsets, targets, next_states in moves:
                succ = self._gather(np, offsets, targets, node, srcbase)
                if succ is None:
                    continue
                for next_state in next_states:
                    row = seen[next_state]
                    fresh = succ[~row[succ]]
                    if fresh.size:
                        row[fresh] = True
                        bucket = pending[next_state]
                        if bucket is None:
                            pending[next_state] = [fresh]
                            active.append(next_state)
                        else:
                            bucket.append(fresh)
            for nested, next_state in checks:
                passed = batch[self._admitted(nested, node)]
                if passed.size:
                    row = seen[next_state]
                    fresh = passed[~row[passed]]
                    if fresh.size:
                        row[fresh] = True
                        bucket = pending[next_state]
                        if bucket is None:
                            pending[next_state] = [fresh]
                            active.append(next_state)
                        else:
                            bucket.append(fresh)
        hits = np.zeros(domain, dtype=bool)
        for state in range(state_count):
            if accepting[state]:
                hits |= seen[state]
        return hits

    def _run_nonempty(self, compiled: "CompiledAutomaton", source_ids):
        """Any-accepting-config mode with per-source early exit."""
        np = self.np
        node_count = self.csr.node_count()
        state_count = compiled.state_count
        accepting = compiled.accepting
        n_src = len(source_ids)
        found = np.zeros(n_src, dtype=bool)
        if accepting[compiled.start]:
            # ε ∈ L: every in-graph source trivially reaches itself.
            found[:] = True
            return found
        resolved = self._resolve(compiled)
        domain = n_src * node_count
        seen = np.zeros((state_count, domain), dtype=bool)
        start = compiled.start
        init = np.arange(n_src, dtype=np.int64) * node_count
        init += np.asarray(source_ids, dtype=np.int64)
        seen[start, init] = True
        pending: list = [None] * state_count
        pending[start] = [init]
        active = [start]
        remaining = n_src
        while active and remaining:
            state = active.pop()
            chunks = pending[state]
            pending[state] = None
            if chunks is None:
                continue
            batch = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            # Retire configs of sources whose verdict is already settled.
            keep = ~found[batch // node_count]
            if not keep.all():
                batch = batch[keep]
            if not batch.size:
                continue
            node = batch % node_count
            srcbase = batch - node
            moves, checks = resolved[state]
            for offsets, targets, next_states in moves:
                succ = self._gather(np, offsets, targets, node, srcbase)
                if succ is None:
                    continue
                for next_state in next_states:
                    row = seen[next_state]
                    fresh = succ[~row[succ]]
                    if fresh.size:
                        row[fresh] = True
                        if accepting[next_state]:
                            found[fresh // node_count] = True
                            remaining = n_src - int(found.sum())
                            if not remaining:
                                return found
                        else:
                            bucket = pending[next_state]
                            if bucket is None:
                                pending[next_state] = [fresh]
                                active.append(next_state)
                            else:
                                bucket.append(fresh)
            for nested, next_state in checks:
                passed = batch[self._admitted(nested, node)]
                if passed.size:
                    row = seen[next_state]
                    fresh = passed[~row[passed]]
                    if fresh.size:
                        row[fresh] = True
                        if accepting[next_state]:
                            found[fresh // node_count] = True
                            remaining = n_src - int(found.sum())
                            if not remaining:
                                return found
                        else:
                            bucket = pending[next_state]
                            if bucket is None:
                                pending[next_state] = [fresh]
                                active.append(next_state)
                            else:
                                bucket.append(fresh)
        return found

    def _run_holds(
        self, compiled: "CompiledAutomaton", source_id: int, target_id: int
    ) -> bool:
        """Single-pair mode: early exit as soon as the target is accepted."""
        np = self.np
        node_count = self.csr.node_count()
        state_count = compiled.state_count
        accepting = compiled.accepting
        if accepting[compiled.start] and source_id == target_id:
            return True
        resolved = self._resolve(compiled)
        seen = np.zeros((state_count, node_count), dtype=bool)
        start = compiled.start
        init = np.asarray([source_id], dtype=np.int64)
        seen[start, init] = True
        pending: list = [None] * state_count
        pending[start] = [init]
        active = [start]
        while active:
            state = active.pop()
            chunks = pending[state]
            pending[state] = None
            if chunks is None:
                continue
            batch = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            srcbase = np.zeros(batch.size, dtype=np.int64)
            moves, checks = resolved[state]
            for offsets, targets, next_states in moves:
                succ = self._gather(np, offsets, targets, batch, srcbase)
                if succ is None:
                    continue
                for next_state in next_states:
                    row = seen[next_state]
                    fresh = succ[~row[succ]]
                    if fresh.size:
                        row[fresh] = True
                        if accepting[next_state] and row[target_id]:
                            return True
                        bucket = pending[next_state]
                        if bucket is None:
                            pending[next_state] = [fresh]
                            active.append(next_state)
                        else:
                            bucket.append(fresh)
            for nested, next_state in checks:
                passed = batch[self._admitted(nested, batch)]
                if passed.size:
                    row = seen[next_state]
                    fresh = passed[~row[passed]]
                    if fresh.size:
                        row[fresh] = True
                        if accepting[next_state] and row[target_id]:
                            return True
                        bucket = pending[next_state]
                        if bucket is None:
                            pending[next_state] = [fresh]
                            active.append(next_state)
                        else:
                            bucket.append(fresh)
        return False
