"""Structural classifiers for NREs.

The paper's hardness results hold under syntactic restrictions which these
predicates make checkable:

* Theorem 4.1 restriction (iii): s-t tgd heads use only NREs of the form
  ``a`` or ``a + b`` — :func:`is_single_symbol` / :func:`is_union_of_symbols`;
* Theorem 4.1 restriction (iv): egd bodies use only ``a₁ · … · aₙ`` with
  pairwise-distinct symbols, the class "SORE(·)" of [2] —
  :func:`is_sore_concat`;
* the Section 3.1 relational fragment: heads that are single symbols only.

Also provided: :func:`alphabet_of` (the labels an NRE mentions),
:func:`nesting_depth`, and :func:`is_star_free`.
"""

from __future__ import annotations

import functools

from repro.graph.nre import (
    NRE,
    Backward,
    Concat,
    Epsilon,
    Label,
    Nest,
    Star,
    Union,
)


@functools.lru_cache(maxsize=4096)
def alphabet_of(expr: NRE) -> frozenset[str]:
    """Return the set of edge labels mentioned by ``expr`` (either direction).

    Memoised — NREs are frozen values, and setting validation re-asks this
    for every dependency of every constructed setting.
    """
    labels: set[str] = set()
    for node in expr.walk():
        if isinstance(node, (Label, Backward)):
            labels.add(node.name)
    return frozenset(labels)


def nesting_depth(expr: NRE) -> int:
    """Return the maximal depth of ``[·]`` nesting (0 when nest-free)."""
    if isinstance(expr, Nest):
        return 1 + nesting_depth(expr.inner)
    children = expr.children()
    if not children:
        return 0
    return max(nesting_depth(child) for child in children)


def is_star_free(expr: NRE) -> bool:
    """Return whether ``expr`` contains no Kleene star."""
    return not any(isinstance(node, Star) for node in expr.walk())


def is_single_symbol(expr: NRE) -> bool:
    """Return whether ``expr`` is a bare forward label ``a``.

    This is the Section 3.1 fragment: with such heads the exchange setting
    degenerates to relational data exchange over binary relations.
    """
    return isinstance(expr, Label)


def is_union_of_symbols(expr: NRE) -> bool:
    """Return whether ``expr`` is ``a₁ + … + aₙ`` with forward labels only.

    Theorem 4.1's restriction (iii) allows heads of the form ``a`` or
    ``a + b``; any union of bare symbols qualifies.
    """
    if isinstance(expr, Label):
        return True
    if isinstance(expr, Union):
        return is_union_of_symbols(expr.left) and is_union_of_symbols(expr.right)
    return False


def is_sore_concat(expr: NRE) -> bool:
    """Return whether ``expr`` is ``a₁ · … · aₙ`` with pairwise-distinct labels.

    "SORE(·)" — single-occurrence regular expressions over concatenation —
    is the class [2] to which the paper restricts egd bodies in Theorem 4.1's
    restriction (iv).
    """
    symbols: list[str] = []

    def collect(node: NRE) -> bool:
        if isinstance(node, Label):
            symbols.append(node.name)
            return True
        if isinstance(node, Concat):
            return collect(node.left) and collect(node.right)
        return False

    if not collect(expr):
        return False
    return len(symbols) == len(set(symbols))


def is_epsilon_free(expr: NRE) -> bool:
    """Return whether ``expr`` contains no ε atom."""
    return not any(isinstance(node, Epsilon) for node in expr.walk())


def uses_backward(expr: NRE) -> bool:
    """Return whether ``expr`` traverses any edge backwards."""
    return any(isinstance(node, Backward) for node in expr.walk())


def is_nest_free(expr: NRE) -> bool:
    """Return whether ``expr`` is a plain RPQ (no ``[·]`` tests)."""
    return nesting_depth(expr) == 0
