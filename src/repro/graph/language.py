"""Language-level operations on NREs.

An NRE over Σ, ignoring nesting for a moment, denotes a language of words
over the extended alphabet Σ ∪ Σ⁻ (backward traversals).  With nesting, a
"word" generalises to a *branching word*: nesting subtrees hang off
positions.  This module works with the word abstraction that the paper's
restricted fragments need:

* :func:`matches_word` — does a plain word (forward labels only) belong to
  the un-nested language of the NRE?  (Nested tests are treated as
  ε-accepting filters on the path — i.e. the word matches when some
  assignment of the tests succeeds vacuously; exact for nest-free NREs.)
* :func:`is_empty_language` — no NRE denotes the empty language (every
  combinator preserves non-emptiness), so this is a constant ``False``;
  it exists to document the fact and to guard against future grammar
  extensions silently breaking the invariant.
* :func:`shortest_word_length` — length of the shortest witness
  (delegates to :func:`repro.graph.witness.witness_cost`);
* :func:`enumerate_words` — enumerate words of the (nest-free projection
  of the) language in order of non-decreasing length;
* :func:`language_is_finite` — whether the language is finite (no star
  whose body can match a non-empty word).

These power the property tests (witnesses ↔ language membership) and the
``SORE(·)``-fragment reasoning in the SAT encoder.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.graph.database import GraphDatabase
from repro.graph.eval import nre_holds
from repro.graph.nre import (
    NRE,
    Backward,
    Concat,
    Epsilon,
    Label,
    Nest,
    Star,
    Union,
)
from repro.graph.witness import witness_cost

Word = tuple[str, ...]


def matches_word(expr: NRE, word: tuple[str, ...] | list[str]) -> bool:
    """Return whether the forward word ``word`` is accepted by ``expr``.

    The check builds a simple path graph ``n0 -w1-> n1 -w2-> … -> nk`` and
    asks whether ``(n0, nk) ∈ ⟦expr⟧`` on it.  For nest-free,
    backward-free NREs this is exactly language membership; with backward
    atoms or nesting it answers path-satisfaction on the chain, which is
    the semantics the chase fragments need.
    """
    labels = tuple(word)
    graph = GraphDatabase()
    graph.add_node("n0")
    for index, lab in enumerate(labels):
        graph.add_edge(f"n{index}", lab, f"n{index + 1}")
    return nre_holds(graph, expr, "n0", f"n{len(labels)}")


def is_empty_language(expr: NRE) -> bool:
    """Return whether ``expr`` denotes the empty language — always ``False``.

    Every production of the NRE grammar preserves non-emptiness: atoms
    accept their one-letter word, ε/stars accept the empty word, unions
    and concatenations combine non-empty languages, and nesting filters a
    non-empty branch.  The function validates its argument and documents
    the invariant that :mod:`repro.graph.witness` relies on (a witness
    always exists).
    """
    if not isinstance(expr, NRE):
        raise TypeError(f"expected an NRE, got {expr!r}")
    return False


def shortest_word_length(expr: NRE) -> int:
    """Return the edge count of the shortest witness of ``expr``."""
    return witness_cost(expr)


def language_is_finite(expr: NRE) -> bool:
    """Return whether the (branching-)language of ``expr`` is finite.

    A star makes the language infinite exactly when its body admits a
    witness with at least one edge; a star over ε-only bodies (e.g.
    ``(())*``) stays finite.
    """
    for node in expr.walk():
        if isinstance(node, Star) and _has_nonempty_witness(node.inner):
            return False
    return True


def _has_nonempty_witness(expr: NRE) -> bool:
    """Whether ``expr`` admits a witness containing at least one edge."""
    if isinstance(expr, (Label, Backward)):
        return True
    if isinstance(expr, Epsilon):
        return False
    if isinstance(expr, Union):
        return _has_nonempty_witness(expr.left) or _has_nonempty_witness(expr.right)
    if isinstance(expr, Concat):
        return _has_nonempty_witness(expr.left) or _has_nonempty_witness(expr.right)
    if isinstance(expr, (Star, Nest)):
        return _has_nonempty_witness(expr.inner)
    raise TypeError(f"unknown NRE node {expr!r}")  # pragma: no cover


def enumerate_words(expr: NRE, max_length: int = 5) -> Iterator[Word]:
    """Yield forward words of length ≤ ``max_length`` accepted by ``expr``.

    Exact for nest-free, backward-free NREs.  Words are produced in
    non-decreasing length (ties in lexicographic order), each at most once.
    The implementation is a best-first search over partial derivations.
    """
    alphabet = sorted(_forward_alphabet(expr))
    if _uses_backward_anywhere(expr):
        raise ValueError("enumerate_words handles forward-only NREs")

    # Brute-force over the bounded word universe, membership-checked; the
    # alphabet and length bounds keep this tractable for the library's
    # expression sizes, and correctness is what the oracles need.
    for length in range(0, max_length + 1):
        for combo in itertools.product(alphabet, repeat=length):
            if matches_word(expr, combo):
                yield combo


def _forward_alphabet(expr: NRE) -> set[str]:
    return {n.name for n in expr.walk() if isinstance(n, Label)}


def _uses_backward_anywhere(expr: NRE) -> bool:
    return any(isinstance(n, Backward) for n in expr.walk())


def contained_in_bounded(left: NRE, right: NRE, max_length: int = 4) -> bool:
    """Bounded language containment: every word of ``left`` up to
    ``max_length`` is accepted by ``right``.

    Exact for finite, nest-free, forward-only ``left`` whose longest word
    fits the bound; a *sound refutation* in general (a ``False`` verdict
    exhibits a concrete separating word — retrievable via
    :func:`separating_word`).  NRE containment is PSPACE-hard already for
    plain regular expressions, so a complete decision procedure is out of
    scope by design.
    """
    return separating_word(left, right, max_length) is None


def separating_word(left: NRE, right: NRE, max_length: int = 4) -> Word | None:
    """Return a word accepted by ``left`` but not ``right``, or ``None``.

    Searches words up to ``max_length``; a returned word is a certified
    counterexample to ``L(left) ⊆ L(right)``.
    """
    for word in enumerate_words(left, max_length=max_length):
        if not matches_word(right, word):
            return word
    return None


def equivalent_bounded(left: NRE, right: NRE, max_length: int = 4) -> bool:
    """Bounded language equivalence (containment both ways)."""
    return contained_in_bounded(left, right, max_length) and contained_in_bounded(
        right, left, max_length
    )


def semantically_contained(
    left: NRE,
    right: NRE,
    trials: int = 25,
    seed: int = 0,
) -> bool:
    """Randomised *semantic* containment check: ``⟦left⟧_G ⊆ ⟦right⟧_G`` on
    random graphs.

    Unlike the word-based check this handles backward atoms and nesting
    (semantic containment over graphs is what NRE queries actually mean).
    A ``False`` verdict is certified by a concrete graph; ``True`` verdicts
    are evidence, not proof.
    """
    import random as _random

    from repro.graph.eval import evaluate_nre

    alphabet = tuple(
        sorted(
            {n.name for n in left.walk() if isinstance(n, (Label, Backward))}
            | {n.name for n in right.walk() if isinstance(n, (Label, Backward))}
        )
    ) or ("a",)
    rng = _random.Random(seed)
    from repro.scenarios.generators import random_graph

    for _ in range(trials):
        graph = random_graph(
            rng.randint(1, 6), rng.randint(0, 12), alphabet=alphabet, rng=rng
        )
        if not evaluate_nre(graph, left) <= evaluate_nre(graph, right):
            return False
    return True
