"""CNRE queries: conjunctions of nested regular expressions with variables.

A *target query* in the paper is a conjunction of NRE atoms using variables
only (Section 2).  An atom ``(x, r, y)`` holds under an assignment ``h`` when
``(h(x), h(y)) ∈ ⟦r⟧_G``.  As with the relational side, we additionally allow
constants (node ids) in atom positions — dependency heads need them never,
but solution checking seeds assignments with constants, and allowing them
keeps one uniform mechanism.

Evaluation precomputes ``⟦r⟧_G`` for each distinct NRE in the query and then
backtracks over variable assignments, most-constrained-atom first.  The
per-NRE relations come from a query engine — by default (``engine=None``)
the shared compiled :class:`~repro.engine.query.QueryEngine`, so repeated
graphs hit its cross-candidate cache; pass an explicit engine instance such
as :class:`~repro.engine.query.ReferenceEngine` to run the set-algebraic
oracle instead (the differential tests do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, Mapping, Sequence

from repro.errors import SchemaError
from repro.graph.database import GraphDatabase
from repro.graph.nre import NRE
from repro.relational.query import Variable, is_variable

Node = Hashable
Term = object  # Variable or node id


@dataclass(frozen=True)
class CNREAtom:
    """An atom ``(subject, nre, object)`` of a CNRE query."""

    subject: Term
    nre: NRE
    object: Term

    def variables(self) -> tuple[Variable, ...]:
        """Return the atom's variables in subject-then-object order."""
        result: list[Variable] = []
        for term in (self.subject, self.object):
            if is_variable(term) and term not in result:
                result.append(term)
        return tuple(result)

    def __str__(self) -> str:
        return f"({self.subject}, {self.nre}, {self.object})"


class CNREQuery:
    """A conjunction of :class:`CNREAtom` with declared output variables.

    >>> from repro.graph.parser import parse_nre
    >>> x, y = Variable("x"), Variable("y")
    >>> q = CNREQuery([CNREAtom(x, parse_nre("f . f*"), y)])
    >>> [v.name for v in q.outputs]
    ['x', 'y']
    """

    def __init__(
        self,
        atoms: Sequence[CNREAtom],
        outputs: Sequence[Variable] | None = None,
    ):
        self.atoms: tuple[CNREAtom, ...] = tuple(atoms)
        if not self.atoms:
            raise SchemaError("a CNRE query needs at least one atom")
        self._variables: tuple[Variable, ...] | None = None
        self._hash: int | None = None
        body_vars = self.variables()
        if outputs is None:
            self.outputs: tuple[Variable, ...] = body_vars
        else:
            self.outputs = tuple(outputs)
            unknown = [v for v in self.outputs if v not in body_vars]
            if unknown:
                names = ", ".join(v.name for v in unknown)
                raise SchemaError(f"output variables not in query body: {names}")

    def variables(self) -> tuple[Variable, ...]:
        """Return all variables in order of first occurrence (computed once)."""
        if self._variables is None:
            seen: dict[Variable, None] = {}
            for atom in self.atoms:
                for var in atom.variables():
                    seen.setdefault(var, None)
            self._variables = tuple(seen)
        return self._variables

    def constants(self) -> frozenset[Node]:
        """Return all node constants used in atom positions."""
        result: set[Node] = set()
        for atom in self.atoms:
            for term in (atom.subject, atom.object):
                if not is_variable(term):
                    result.add(term)
        return frozenset(result)

    def expressions(self) -> tuple[NRE, ...]:
        """Return the distinct NREs of the query, in first-use order."""
        seen: dict[NRE, None] = {}
        for atom in self.atoms:
            seen.setdefault(atom.nre, None)
        return tuple(seen)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CNREQuery):
            return NotImplemented
        return self.atoms == other.atoms and self.outputs == other.outputs

    def __hash__(self) -> int:
        # Memoised: queries are immutable and hashed hot (lru-cached
        # matchers/encodes key on them).
        if self._hash is None:
            self._hash = hash((self.atoms, self.outputs))
        return self._hash

    def __str__(self) -> str:
        body = " ∧ ".join(str(a) for a in self.atoms)
        heads = ", ".join(v.name for v in self.outputs)
        return f"{body} -> ({heads})"

    def __repr__(self) -> str:
        return f"CNREQuery({self})"


Assignment = dict[Variable, Node]


def cnre_homomorphisms(
    query: CNREQuery,
    graph: GraphDatabase,
    seed: Mapping[Variable, Node] | None = None,
    engine=None,
) -> Iterator[Assignment]:
    """Yield every assignment of the query's variables satisfying all atoms.

    ``seed`` pre-binds variables (used when dependency bodies seed head
    checks).  Each yielded dictionary is fresh.  ``engine`` supplies the
    per-NRE relations (default: the shared compiled engine).
    """
    if engine is None:
        from repro.engine.query import default_engine

        engine = default_engine()
    relations: dict[NRE, frozenset[tuple[Node, Node]]] = {}
    for expr in query.expressions():
        relations[expr] = engine.pairs(graph, expr)

    # Order atoms: those with the smallest relations first, re-ranked as
    # variables become bound (cheap static approximation: sort by size).
    ordered = sorted(query.atoms, key=lambda a: len(relations[a.nre]))

    def value(term: Term, assignment: Assignment) -> object:
        if is_variable(term):
            return assignment.get(term, _UNSET)
        return term

    def extend(index: int, assignment: Assignment) -> Iterator[Assignment]:
        if index == len(ordered):
            yield dict(assignment)
            return
        atom = ordered[index]
        subject = value(atom.subject, assignment)
        obj = value(atom.object, assignment)
        for u, v in relations[atom.nre]:
            if subject is not _UNSET and u != subject:
                continue
            if obj is not _UNSET and v != obj:
                continue
            added: list[Variable] = []
            if is_variable(atom.subject) and subject is _UNSET:
                assignment[atom.subject] = u
                added.append(atom.subject)
            if is_variable(atom.object) and atom.object not in assignment:
                if atom.subject == atom.object and u != v:
                    for var in added:
                        del assignment[var]
                    continue
                assignment[atom.object] = v
                added.append(atom.object)
            elif is_variable(atom.object) and assignment[atom.object] != v:
                for var in added:
                    del assignment[var]
                continue
            yield from extend(index + 1, assignment)
            for var in added:
                del assignment[var]

    initial: Assignment = dict(seed) if seed else {}
    # Reject seeds that already clash with constants in atom positions.
    yield from extend(0, initial)


_UNSET = object()


def evaluate_cnre(
    query: CNREQuery, graph: GraphDatabase, engine=None
) -> frozenset[tuple]:
    """Evaluate a CNRE query, returning projections onto its outputs.

    >>> from repro.graph.parser import parse_nre
    >>> g = GraphDatabase(edges=[("u", "a", "v")])
    >>> x, y = Variable("x"), Variable("y")
    >>> evaluate_cnre(CNREQuery([CNREAtom(x, parse_nre("a"), y)]), g)
    frozenset({('u', 'v')})
    """
    answers = set()
    for hom in cnre_homomorphisms(query, graph, engine=engine):
        answers.add(tuple(hom[v] for v in query.outputs))
    return frozenset(answers)
