"""On-disk cache of compiled NRE automata — the cold-start accelerator.

The in-process ``lru_cache`` on :func:`repro.graph.automaton.compile_nre`
makes repeated queries free *within* a process, but a fresh CLI invocation
still pays Thompson compilation plus the ε-free lowering for every NRE it
touches — the ROADMAP's "cold-start" item.  This module persists compiled
automata across processes: each cache entry is a pickle of the
:class:`~repro.graph.automaton.NREAutomaton` (with its lowered
:class:`~repro.graph.automaton.CompiledAutomaton` already materialised),
keyed by the SHA-256 of the NRE's canonical string rendering (``str`` on
NREs round-trips through the parser — a property pinned in the test
suite).

Layout and safety:

* entries live under a **version-stamped** directory —
  ``$REPRO_CACHE_DIR`` (or ``~/.cache/repro-nre``) ``/
  v{CACHE_FORMAT}-py{major}.{minor}/<sha256>.pkl`` — so a format bump or a
  Python upgrade never reads stale pickles;
* writes are atomic (temp file + ``os.replace``) and best-effort: any
  filesystem or unpickling problem silently degrades to recompilation;
* each payload records the source string and is cross-checked on load
  (hash-collision paranoia, costs one string compare);
* only automata with at least :data:`_MIN_STATES` states are persisted —
  caching single-label atoms would trade a microsecond of compilation for
  a filesystem round-trip and an unbounded flood of tiny files;
* **opt-out**: set ``REPRO_AUTOMATON_CACHE=off`` (or ``0``/``no``/
  ``false``) or pass ``--no-automaton-cache`` to the CLI.  The test suite
  disables it globally for hermeticity and re-enables it in the dedicated
  cache tests.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import tempfile
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # import cycle: automaton.py imports this module
    from repro.graph.automaton import NREAutomaton
    from repro.graph.nre import NRE

CACHE_FORMAT = 1
"""Bump on any change to the automaton classes' pickled shape."""

_MIN_STATES = 8
"""Smallest Thompson state count worth a filesystem round-trip."""

_ENV_SWITCH = "REPRO_AUTOMATON_CACHE"
_ENV_DIR = "REPRO_CACHE_DIR"
_DISABLED = {"off", "0", "no", "false"}


def enabled() -> bool:
    """Whether the on-disk cache is active (it is, unless opted out)."""
    return os.environ.get(_ENV_SWITCH, "").strip().lower() not in _DISABLED


def cache_dir() -> str:
    """The version-stamped directory holding the pickled automata."""
    root = os.environ.get(_ENV_DIR)
    if not root:
        root = os.path.join(os.path.expanduser("~"), ".cache", "repro-nre")
    stamp = f"v{CACHE_FORMAT}-py{sys.version_info[0]}.{sys.version_info[1]}"
    return os.path.join(root, stamp)


def _entry_path(source: str) -> str:
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return os.path.join(cache_dir(), digest + ".pkl")


def load(expr: "NRE") -> "NREAutomaton | None":
    """Return the cached automaton for ``expr``, or ``None``.

    Never raises: a missing, corrupt, foreign-format, or colliding entry
    reads as a miss.
    """
    if not enabled():
        return None
    source = str(expr)
    try:
        with open(_entry_path(source), "rb") as handle:
            payload = pickle.load(handle)
    except Exception:  # noqa: BLE001 - any unreadable entry is a miss:
        # pickle.load raises far more than PickleError on garbage bytes
        # (ValueError, UnicodeDecodeError, IndexError, ...), and a corrupt
        # cache must degrade to recompilation, never crash compile_nre.
        return None
    if not isinstance(payload, dict) or payload.get("format") != CACHE_FORMAT:
        return None
    if payload.get("source") != source:
        return None  # hash collision or tampering: recompile
    from repro.graph.automaton import NREAutomaton

    automaton = payload.get("automaton")
    return automaton if isinstance(automaton, NREAutomaton) else None


def store(expr: "NRE", automaton: "NREAutomaton") -> None:
    """Persist ``automaton`` (with its lowering precomputed), best-effort."""
    if not enabled() or automaton.state_count < _MIN_STATES:
        return
    source = str(expr)
    try:
        automaton.compiled()  # persist the ε-free lowering too
        directory = cache_dir()
        os.makedirs(directory, exist_ok=True)
        payload = {
            "format": CACHE_FORMAT,
            "source": source,
            "automaton": automaton,
        }
        descriptor, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, _entry_path(source))
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
    except Exception:  # noqa: BLE001 - best-effort persistence only
        pass  # a broken cache must never break compilation
