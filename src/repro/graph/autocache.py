"""On-disk cache of compiled NRE automata — the cold-start accelerator.

The in-process ``lru_cache`` on :func:`repro.graph.automaton.compile_nre`
makes repeated queries free *within* a process, but a fresh CLI invocation
still pays Thompson compilation plus the ε-free lowering for every NRE it
touches — the ROADMAP's "cold-start" item.  This module persists compiled
automata across processes: each cache entry is a pickle of the
:class:`~repro.graph.automaton.NREAutomaton` (with its lowered
:class:`~repro.graph.automaton.CompiledAutomaton` already materialised),
keyed by the SHA-256 of the NRE's canonical string rendering (``str`` on
NREs round-trips through the parser — a property pinned in the test
suite).

Layout and safety:

* entries live under a **version-stamped** directory —
  ``$REPRO_CACHE_DIR`` (or ``~/.cache/repro-nre``) ``/
  v{CACHE_FORMAT}-py{major}.{minor}/<sha256>.pkl`` — so a format bump or a
  Python upgrade never reads stale pickles;
* writes are atomic (temp file + ``os.replace``) and best-effort: any
  filesystem or unpickling problem silently degrades to recompilation;
* writes are also **concurrency-safe**: a per-entry ``.lock`` file
  (``O_CREAT | O_EXCL``, stale-broken after five minutes) elects a single
  writer when N pool workers warm the same automaton at once — the losers
  skip their redundant stores instead of stacking writes (see
  :func:`store`; pinned by a real-multi-process regression test);
* each payload records the source string and is cross-checked on load
  (hash-collision paranoia, costs one string compare);
* only automata with at least :data:`_MIN_STATES` states are persisted —
  caching single-label atoms would trade a microsecond of compilation for
  a filesystem round-trip and an unbounded flood of tiny files;
* **opt-out**: set ``REPRO_AUTOMATON_CACHE=off`` (or ``0``/``no``/
  ``false``) or pass ``--no-automaton-cache`` to the CLI.  The test suite
  disables it globally for hermeticity and re-enables it in the dedicated
  cache tests.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import tempfile
import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # import cycle: automaton.py imports this module
    from repro.graph.automaton import NREAutomaton
    from repro.graph.nre import NRE

CACHE_FORMAT = 2
"""Bump on any change to the automaton classes' pickled shape.

Format 2: entries additionally carry the codegen kernel's generated
source strings (``_codegen_source`` side-attributes on every compiled
automaton in the test tree), so a warm process skips code generation as
well as Thompson compilation.  Format-1 entries read as misses via the
version-stamped directory and are recompiled silently."""

_MIN_STATES = 8
"""Smallest Thompson state count worth a filesystem round-trip."""

_ENV_SWITCH = "REPRO_AUTOMATON_CACHE"
_ENV_DIR = "REPRO_CACHE_DIR"
_DISABLED = {"off", "0", "no", "false"}


def enabled() -> bool:
    """Whether the on-disk cache is active (it is, unless opted out)."""
    return os.environ.get(_ENV_SWITCH, "").strip().lower() not in _DISABLED


def cache_dir() -> str:
    """The version-stamped directory holding the pickled automata."""
    root = os.environ.get(_ENV_DIR)
    if not root:
        root = os.path.join(os.path.expanduser("~"), ".cache", "repro-nre")
    stamp = f"v{CACHE_FORMAT}-py{sys.version_info[0]}.{sys.version_info[1]}"
    return os.path.join(root, stamp)


def _entry_path(source: str) -> str:
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return os.path.join(cache_dir(), digest + ".pkl")


def load(expr: "NRE") -> "NREAutomaton | None":
    """Return the cached automaton for ``expr``, or ``None``.

    Never raises: a missing, corrupt, foreign-format, or colliding entry
    reads as a miss.
    """
    if not enabled():
        return None
    source = str(expr)
    try:
        with open(_entry_path(source), "rb") as handle:
            payload = pickle.load(handle)
    except Exception:  # noqa: BLE001 - any unreadable entry is a miss:
        # pickle.load raises far more than PickleError on garbage bytes
        # (ValueError, UnicodeDecodeError, IndexError, ...), and a corrupt
        # cache must degrade to recompilation, never crash compile_nre.
        return None
    if not isinstance(payload, dict) or payload.get("format") != CACHE_FORMAT:
        return None
    if payload.get("source") != source:
        return None  # hash collision or tampering: recompile
    from repro.graph.automaton import NREAutomaton

    automaton = payload.get("automaton")
    if not isinstance(automaton, NREAutomaton):
        return None
    if automaton._compiled is not None:
        # Persisted codegen source from a different generator version
        # must not shadow regeneration (the directory stamp only guards
        # the pickle shape, not the generated code).
        from repro.graph.codegen import validate_sources

        validate_sources(automaton._compiled)
    return automaton


_LOCK_STALE_SECONDS = 300.0
"""A writer lock older than this is presumed orphaned (crashed writer)."""


def _acquire_entry_lock(lock_path: str, token: str) -> bool:
    """Try to become the writer for one cache entry.

    ``O_CREAT | O_EXCL`` is the atomic test-and-set: among processes
    racing on a *live* entry, exactly one wins and the losers skip their
    (redundant) stores.  A lock file left behind by a crashed writer is
    broken once it is demonstrably stale, so an unlucky crash degrades
    the cache for at most :data:`_LOCK_STALE_SECONDS`, never forever.
    The stale-break path is best-effort — two breakers racing within
    microseconds of each other can both proceed, which costs one
    redundant (still atomic, never torn) write, not correctness.  The
    ``token`` written into the lock records ownership so release can
    refuse to unlink a lock it no longer owns.
    """
    flags = os.O_CREAT | os.O_EXCL | os.O_WRONLY
    try:
        descriptor = os.open(lock_path, flags)
    except FileExistsError:
        try:
            age = time.time() - os.path.getmtime(lock_path)
        except OSError:
            return False  # the concurrent writer just finished and unlinked
        if age <= _LOCK_STALE_SECONDS:
            return False  # an active writer owns this entry
        try:
            os.unlink(lock_path)  # break the stale lock
        except OSError:
            pass
        try:
            descriptor = os.open(lock_path, flags)
        except OSError:
            return False  # lost the post-break race: someone else writes
    with os.fdopen(descriptor, "w") as handle:
        handle.write(token)
    return True


def _release_entry_lock(lock_path: str, token: str) -> None:
    """Unlink the lock only if this process still owns it.

    After a stale-lock break, the lock on disk may belong to a *newer*
    writer — unlinking unconditionally would cascade the break to a third
    process.
    """
    try:
        with open(lock_path, encoding="utf-8") as handle:
            if handle.read() != token:
                return
        os.unlink(lock_path)
    except OSError:
        pass


def store(expr: "NRE", automaton: "NREAutomaton") -> None:
    """Persist ``automaton`` (with its lowering precomputed), best-effort.

    Safe under concurrent worker pools: the first process to warm an
    automaton takes a per-entry lock file and writes atomically (temp file
    + ``os.replace``); every other process warming the same NRE at the
    same time sees either the finished entry or the held lock and skips
    its own write.  No reader can ever observe a torn pickle, and N
    workers never stack N redundant multi-megabyte writes.
    """
    if not enabled() or automaton.state_count < _MIN_STATES:
        return
    source = str(expr)
    try:
        compiled = automaton.compiled()  # persist the ε-free lowering too
        from repro.graph.codegen import ensure_sources

        ensure_sources(compiled)  # ... and the generated kernel source
        directory = cache_dir()
        os.makedirs(directory, exist_ok=True)
        target = _entry_path(source)
        if os.path.exists(target) and load(expr) is not None:
            return  # another process already warmed this entry — skip the
            # redundant write.  The load() cross-check matters: an entry
            # that *exists* but does not load (truncated, foreign format,
            # colliding source) must be overwritten, or the cache would be
            # permanently dead for this NRE.
        lock_path = target + ".lock"
        token = f"{os.getpid()}:{id(automaton):x}"
        if not _acquire_entry_lock(lock_path, token):
            return  # a concurrent writer owns the entry; its copy will land
        try:
            payload = {
                "format": CACHE_FORMAT,
                "source": source,
                "automaton": automaton,
            }
            descriptor, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(descriptor, "wb") as handle:
                    pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temp_path, target)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        finally:
            _release_entry_lock(lock_path, token)
    except Exception:  # noqa: BLE001 - best-effort persistence only
        pass  # a broken cache must never break compilation
