"""The generated-code (specializing) NRE execution kernel.

The scalar kernel walks every automaton through one *generic* product
search (:meth:`repro.graph.automaton._Runner._search_ids`): per drained
state it unpacks resolved move tuples, iterates hop lists, and rebinds
buffers — interpreter dispatch that is pure overhead once the automaton
is fixed.  This module removes that dispatch the way query compilers do
when they lower automata to code: each
:class:`~repro.graph.automaton.CompiledAutomaton` is lowered **once** to
a specialized Python source string in which

* the per-state dispatch is unrolled into direct ``if state == k:``
  branches, one per *live* state (states reachable from the start state
  through non-ε moves — dead states get no code at all);
* every move is straight-line code over its own label-resolved CSR
  buffer locals (``o3``/``g3``), with the flat-config bases
  (``state × |V|``) hoisted and the degree-1 fast path inlined;
* nested ``[·]`` tests become calls to memoised helper closures passed
  in as ``tests[k]`` — the memo lives in the driving
  :class:`CodegenSearch`, shared across every caller of the same
  sub-automaton;
* the three query modes get three *separate* functions — ``collect``,
  ``nonempty``, ``holds`` — so mode checks vanish from the hot loop and
  each variant keeps its own early exits (``nonempty`` returns on the
  first edge into an accepting state without even marking it visited;
  ``holds`` tests the target at insert time).

The source string is compiled with :func:`compile`/``exec`` once per
process and — because it is a plain string — pickles through the on-disk
:mod:`repro.graph.autocache` (format version 2), so a warm process skips
both Thompson compilation *and* code generation: it just ``exec``\\s the
cached source.

Select with ``--kernel codegen`` / ``REPRO_KERNEL=codegen`` /
``QueryEngine(kernel="codegen")``.  Like the vector kernel, the
generated code runs on frozen CSR graphs; dict-backed graphs fall back
to the generic scalar loops.  Unlike the vector kernel it needs no
numpy.  Answers are byte-identical to the scalar and vector kernels on
every query — pinned by the three-way differential suite in
``tests/test_properties/test_kernel_properties.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.graph.automaton import CompiledAutomaton

CODEGEN_VERSION = 1
"""Bump on any change to the generated source's shape or calling
convention; stamped into every generated module so a loader can refuse
foreign source (the autocache directory version already isolates
formats — this is belt and braces for debugging)."""


@dataclass(frozen=True)
class _Plan:
    """The deterministic lowering plan shared by generator and binder.

    Everything the generated code's *caller* must reproduce —
    buffer order, nested-test order — is derived from this one
    structure, so a source string restored from the on-disk cache
    binds identically to one generated in-process.
    """

    live: tuple[int, ...]  # live state ids, dense index = position
    accepting: tuple[bool, ...]  # per dense index
    moves: tuple[tuple[tuple[int, tuple[int, ...]], ...], ...]
    # per dense index: ((buffer_index, dense_targets), ...)
    checks: tuple[tuple[tuple[int, int], ...], ...]
    # per dense index: ((test_index, dense_target), ...)
    buffers: tuple[tuple[str, str], ...]  # (label, "fwd"|"bwd") per buffer
    tests: tuple["CompiledAutomaton", ...]  # sub-automata by test index


def _plan_for(compiled: "CompiledAutomaton") -> _Plan:
    """Compute the lowering plan (memoised on the automaton instance).

    Live-state discovery is a BFS from the start state over non-ε move
    and test targets, in the automaton's own (deterministic, pickled)
    iteration order — the same walk :func:`source_for` compiles and
    :class:`CodegenSearch` binds, which is what keeps cached source and
    fresh binders aligned.
    """
    cached = compiled.__dict__.get("_codegen_plan")
    if cached is not None:
        return cached
    dense: dict[int, int] = {compiled.start: 0}
    order: list[int] = [compiled.start]
    cursor = 0
    while cursor < len(order):
        state = order[cursor]
        cursor += 1
        for targets in compiled.fwd[state].values():
            for target in targets:
                if target not in dense:
                    dense[target] = len(order)
                    order.append(target)
        for targets in compiled.bwd[state].values():
            for target in targets:
                if target not in dense:
                    dense[target] = len(order)
                    order.append(target)
        for _nested, target in compiled.tests[state]:
            if target not in dense:
                dense[target] = len(order)
                order.append(target)
    buffer_index: dict[tuple[str, str], int] = {}
    tests: list["CompiledAutomaton"] = []
    moves: list[tuple[tuple[int, tuple[int, ...]], ...]] = []
    checks: list[tuple[tuple[int, int], ...]] = []
    for state in order:
        state_moves: list[tuple[int, tuple[int, ...]]] = []
        for direction, table in (("fwd", compiled.fwd[state]), ("bwd", compiled.bwd[state])):
            for lab, targets in table.items():
                key = (lab, direction)
                index = buffer_index.setdefault(key, len(buffer_index))
                state_moves.append((index, tuple(dense[t] for t in targets)))
        state_checks: list[tuple[int, int]] = []
        for nested, target in compiled.tests[state]:
            state_checks.append((len(tests), dense[target]))
            tests.append(nested)
        moves.append(tuple(state_moves))
        checks.append(tuple(state_checks))
    plan = _Plan(
        live=tuple(order),
        accepting=tuple(compiled.accepting[s] for s in order),
        moves=tuple(moves),
        checks=tuple(checks),
        buffers=tuple(key for key, _ in sorted(buffer_index.items(), key=lambda kv: kv[1])),
        tests=tuple(tests),
    )
    object.__setattr__(compiled, "_codegen_plan", plan)
    return plan


# --------------------------------------------------------------------- #
# Source generation
# --------------------------------------------------------------------- #


def _cfg(dense: int, expr: str) -> str:
    """The flat-config expression ``dense × |V| + expr``, base folded."""
    return expr if dense == 0 else f"b{dense} + {expr}"


def _emit_prologue(lines: list[str], plan: _Plan, mode: str) -> None:
    """Shared function prologue: buffer locals, bases, seen, worklist."""
    emit = lines.append
    if plan.buffers:
        unpack = ", ".join(f"(o{i}, g{i})" for i in range(len(plan.buffers)))
        emit(f"    {unpack}, = b")
    for index in range(len(plan.tests)):
        emit(f"    t{index} = tests[{index}]")
    state_count = len(plan.live)
    emit(f"    seen = bytearray({state_count} * V)")
    for dense in range(1, state_count):
        emit(f"    b{dense} = {dense} * V" if dense > 1 else f"    b{dense} = V")
    emit("    seen[src] = 1")
    emit(f"    pending = [None] * {state_count}")
    emit("    pending[0] = [src]")
    emit("    active = [0]")
    emit("    active_append = active.append")
    if mode == "collect":
        emit("    hit_mask = bytearray(V)")
        emit("    hits = []")
        emit("    hits_append = hits.append")


def _emit_move(
    lines: list[str],
    buffer: int,
    dense_target: int,
    plan: _Plan,
    mode: str,
    pad: str,
) -> None:
    """One move's inlined CSR expansion into ``w{dense_target}``."""
    emit = lines.append
    accepting = plan.accepting[dense_target]
    if mode == "nonempty" and accepting:
        # Any successor at all lands in an accepting state: the verdict
        # is settled without touching the visited map.
        emit(f"{pad}for n in batch:")
        emit(f"{pad}    if o{buffer}[n] != o{buffer}[n + 1]:")
        emit(f"{pad}        return True")
        return
    found = mode == "holds" and accepting
    emit(f"{pad}a = w{dense_target}.append")
    emit(f"{pad}for n in batch:")
    emit(f"{pad}    lo = o{buffer}[n]; hi = o{buffer}[n + 1]")
    emit(f"{pad}    if lo != hi:")
    emit(f"{pad}        if hi - lo == 1:")
    emit(f"{pad}            t = g{buffer}[lo]")
    emit(f"{pad}            c = {_cfg(dense_target, 't')}")
    emit(f"{pad}            if not seen[c]:")
    emit(f"{pad}                seen[c] = 1")
    if found:
        emit(f"{pad}                if t == tgt:")
        emit(f"{pad}                    return True")
    emit(f"{pad}                a(t)")
    emit(f"{pad}        else:")
    emit(f"{pad}            for t in g{buffer}[lo:hi]:")
    emit(f"{pad}                c = {_cfg(dense_target, 't')}")
    emit(f"{pad}                if not seen[c]:")
    emit(f"{pad}                    seen[c] = 1")
    if found:
        emit(f"{pad}                    if t == tgt:")
        emit(f"{pad}                        return True")
    emit(f"{pad}                    a(t)")


def _emit_check(
    lines: list[str],
    test_index: int,
    dense_target: int,
    plan: _Plan,
    mode: str,
    pad: str,
) -> None:
    """One nested test's memoised-helper call into ``w{dense_target}``."""
    emit = lines.append
    accepting = plan.accepting[dense_target]
    if mode == "nonempty" and accepting:
        emit(f"{pad}for n in batch:")
        emit(f"{pad}    if t{test_index}(n):")
        emit(f"{pad}        return True")
        return
    found = mode == "holds" and accepting
    emit(f"{pad}a = w{dense_target}.append")
    emit(f"{pad}for n in batch:")
    emit(f"{pad}    c = {_cfg(dense_target, 'n')}")
    emit(f"{pad}    if not seen[c] and t{test_index}(n):")
    emit(f"{pad}        seen[c] = 1")
    if found:
        emit(f"{pad}        if n == tgt:")
        emit(f"{pad}            return True")
    emit(f"{pad}        a(n)")


def _emit_state(lines: list[str], dense: int, plan: _Plan, mode: str) -> None:
    """One live state's drain branch inside the dispatch chain."""
    emit = lines.append
    keyword = "if" if dense == 0 else "elif"
    emit(f"        {keyword} state == {dense}:")
    pad = "            "
    body_open = len(lines)
    if plan.accepting[dense] and mode == "collect":
        emit(f"{pad}for n in batch:")
        emit(f"{pad}    if not hit_mask[n]:")
        emit(f"{pad}        hit_mask[n] = 1")
        emit(f"{pad}        hits_append(n)")
    # Which states does this branch insert into?  One staging list per
    # target, flushed into the shared worklist after all moves ran.
    inserts: list[int] = []
    for _buffer, dense_targets in plan.moves[dense]:
        for target in dense_targets:
            skip = mode == "nonempty" and plan.accepting[target]
            if not skip and target not in inserts:
                inserts.append(target)
    for _test_index, target in plan.checks[dense]:
        skip = mode == "nonempty" and plan.accepting[target]
        if not skip and target not in inserts:
            inserts.append(target)
    for target in inserts:
        emit(f"{pad}w{target} = []")
    for buffer, dense_targets in plan.moves[dense]:
        for target in dense_targets:
            _emit_move(lines, buffer, target, plan, mode, pad)
    for test_index, target in plan.checks[dense]:
        _emit_check(lines, test_index, target, plan, mode, pad)
    for target in inserts:
        emit(f"{pad}if w{target}:")
        emit(f"{pad}    q = pending[{target}]")
        emit(f"{pad}    if q is None:")
        emit(f"{pad}        pending[{target}] = w{target}")
        emit(f"{pad}        active_append({target})")
        emit(f"{pad}    else:")
        emit(f"{pad}        q.extend(w{target})")
    if len(lines) == body_open:
        emit(f"{pad}pass")


def _emit_function(plan: _Plan, mode: str) -> list[str]:
    """Emit one mode's full function definition."""
    lines: list[str] = []
    emit = lines.append
    if mode == "holds":
        emit("def holds(src, tgt, V, b, tests):")
    else:
        emit(f"def {mode}(src, V, b, tests):")
    if mode == "nonempty" and plan.accepting[0]:
        # ε ∈ L: every in-graph source trivially reaches itself.
        emit("    return True")
        return lines
    if mode == "holds" and plan.accepting[0]:
        emit("    if src == tgt:")
        emit("        return True")
    _emit_prologue(lines, plan, mode)
    emit("    while active:")
    emit("        state = active.pop()")
    emit("        batch = pending[state]")
    emit("        if batch is None:")
    emit("            continue")
    emit("        pending[state] = None")
    for dense in range(len(plan.live)):
        if mode == "nonempty" and plan.accepting[dense]:
            # Unreachable: inserts into accepting states returned already
            # and the (non-accepting, checked above) start state is dense 0.
            continue
        _emit_state(lines, dense, plan, mode)
    if mode == "collect":
        emit("    return hits")
    else:
        emit("    return False")
    return lines


def source_for(compiled: "CompiledAutomaton") -> str:
    """Return the specialized module source (memoised on the instance).

    The string is pure metadata plus three function definitions — no
    imports, no captured objects — so it pickles through the autocache
    and ``exec``\\s identically in any process.
    """
    cached = compiled.__dict__.get("_codegen_source")
    if cached is not None:
        return cached
    plan = _plan_for(compiled)
    lines = [
        f"CODEGEN_VERSION = {CODEGEN_VERSION}",
        f"BUFFERS = {plan.buffers!r}",
        f"TEST_COUNT = {len(plan.tests)}",
        f"STATE_COUNT = {len(plan.live)}",
    ]
    for mode in ("collect", "nonempty", "holds"):
        lines.append("")
        lines.extend(_emit_function(plan, mode))
    source = "\n".join(lines) + "\n"
    object.__setattr__(compiled, "_codegen_source", source)
    return source


def ensure_sources(compiled: "CompiledAutomaton") -> None:
    """Pre-generate source for ``compiled`` and every nested automaton.

    Called by :func:`repro.graph.autocache.store` so the persisted pickle
    carries the generated source of the whole test tree — a warm process
    then skips code generation entirely.
    """
    source_for(compiled)
    for nested in _plan_for(compiled).tests:
        ensure_sources(nested)


def validate_sources(compiled: "CompiledAutomaton") -> None:
    """Drop any persisted source stamped by a different codegen version.

    Called by :func:`repro.graph.autocache.load` on restored automata:
    the cache directory's format version protects the *pickle* shape, but
    a generated-source change within one format would otherwise keep
    serving stale code forever (the ``_codegen_source`` memo wins over
    regeneration).  A mismatched stamp simply costs one regeneration.
    """
    stamp = f"CODEGEN_VERSION = {CODEGEN_VERSION}\n"
    stack = [compiled]
    seen: set[int] = set()
    while stack:
        automaton = stack.pop()
        if id(automaton) in seen:
            continue
        seen.add(id(automaton))
        source = automaton.__dict__.get("_codegen_source")
        if source is not None and not source.startswith(stamp):
            automaton.__dict__.pop("_codegen_source", None)
        for checks in automaton.tests:
            for nested, _target in checks:
                stack.append(nested)


@dataclass(frozen=True)
class CodegenProgram:
    """The executed form of one automaton's generated module."""

    collect: object  # (src, V, b, tests) -> list[int]
    nonempty: object  # (src, V, b, tests) -> bool
    holds: object  # (src, tgt, V, b, tests) -> bool
    plan: _Plan


def program_for(compiled: "CompiledAutomaton") -> CodegenProgram:
    """Compile and exec the generated source (once per process/instance).

    The code object and function objects are never pickled — only the
    source string round-trips; restoring in another process re-``exec``\\s
    it here on first use.
    """
    cached = compiled.__dict__.get("_codegen_program")
    if cached is not None:
        return cached
    plan = _plan_for(compiled)
    source = source_for(compiled)
    namespace: dict = {"__builtins__": __builtins__}
    code = compile(source, f"<nre-codegen-{compiled.cache_key}>", "exec")
    exec(code, namespace)  # noqa: S102 - our own generated source
    program = CodegenProgram(
        collect=namespace["collect"],
        nonempty=namespace["nonempty"],
        holds=namespace["holds"],
        plan=plan,
    )
    object.__setattr__(compiled, "_codegen_program", program)
    return program


class CodegenSearch:
    """Drives generated-code searches over one frozen CSR backend.

    The codegen twin of :class:`repro.graph.vector.VectorSearch`: owned
    by a :class:`~repro.graph.automaton._Runner`, holding the per-graph
    buffer bindings and the nested-test memo tables.  ``stats`` is the
    runner's duck-typed counter object (may be ``None``).
    """

    def __init__(self, csr, stats: object | None = None):
        self.csr = csr
        self.stats = stats
        # automaton cache_key -> (buffers tuple, tests tuple) with this
        # graph's CSR list buffers bound in the plan's buffer order.
        self._bound: dict[int, tuple] = {}
        # automaton cache_key -> {node_id: bool} nested-test memo.
        self._memo: dict[int, dict[int, bool]] = {}
        # Shared all-zero offsets for labels absent from the graph: the
        # generated loops read ``o[n]``/``o[n+1]`` unconditionally.
        self._zeros: list[int] | None = None

    # ------------------------------------------------------------------ #
    # Public modes (the _Runner entry points)
    # ------------------------------------------------------------------ #

    def collect(self, compiled: "CompiledAutomaton", source_id: int) -> list[int]:
        """Accepted node ids reachable from ``source_id`` (unordered)."""
        program = program_for(compiled)
        buffers, tests = self._binding(compiled, program)
        return program.collect(source_id, self.csr.node_count(), buffers, tests)

    def nonempty(self, compiled: "CompiledAutomaton", source_id: int) -> bool:
        """Whether any node is reachable — the nested-test question."""
        program = program_for(compiled)
        buffers, tests = self._binding(compiled, program)
        return program.nonempty(source_id, self.csr.node_count(), buffers, tests)

    def holds(
        self, compiled: "CompiledAutomaton", source_id: int, target_id: int
    ) -> bool:
        """Single-pair mode with insert-time early exit on the target."""
        program = program_for(compiled)
        buffers, tests = self._binding(compiled, program)
        return program.holds(
            source_id, target_id, self.csr.node_count(), buffers, tests
        )

    # ------------------------------------------------------------------ #
    # Binding
    # ------------------------------------------------------------------ #

    def _binding(
        self, compiled: "CompiledAutomaton", program: CodegenProgram
    ) -> tuple:
        key = compiled.cache_key
        bound = self._bound.get(key)
        if bound is None:
            csr = self.csr
            buffers = []
            for lab, direction in program.plan.buffers:
                lists = (
                    csr.forward_lists(lab)
                    if direction == "fwd"
                    else csr.backward_lists(lab)
                )
                if lists is None:
                    if self._zeros is None:
                        self._zeros = [0] * (csr.node_count() + 1)
                    lists = (self._zeros, ())
                buffers.append(lists)
            tests = tuple(
                self._make_test(nested) for nested in program.plan.tests
            )
            bound = self._bound[key] = (tuple(buffers), tests)
        return bound

    def _make_test(self, nested: "CompiledAutomaton"):
        """A memoised nested-test closure over this graph's binding."""
        memo = self._memo.setdefault(nested.cache_key, {})
        stats = self.stats
        memo_get = memo.get
        run = self.nonempty

        def test(node_id: int) -> bool:
            verdict = memo_get(node_id)
            if verdict is None:
                if stats is not None:
                    stats.nested_tests += 1  # type: ignore[attr-defined]
                verdict = memo[node_id] = run(nested, node_id)
            elif stats is not None:
                stats.nested_test_cache_hits += 1  # type: ignore[attr-defined]
            return verdict

        return test


def preview_source(expr_or_automaton) -> str:
    """Return the generated source for an NRE or compiled automaton.

    Debugging/teaching helper (used by the docs): accepts an NRE node,
    an :class:`~repro.graph.automaton.NREAutomaton`, or a
    :class:`~repro.graph.automaton.CompiledAutomaton`.

    >>> from repro.graph.parser import parse_nre
    >>> src = preview_source(parse_nre("a . b"))
    >>> "def collect" in src and "def holds" in src
    True
    """
    from repro.graph.automaton import NREAutomaton, compile_nre
    from repro.graph.nre import NRE

    if isinstance(expr_or_automaton, NRE):
        expr_or_automaton = compile_nre(expr_or_automaton)
    if isinstance(expr_or_automaton, NREAutomaton):
        expr_or_automaton = expr_or_automaton.compiled()
    return source_for(expr_or_automaton)
