"""Graph substrate: edge-labeled graphs and nested regular expressions.

This package implements the *target* side of the exchange setting
(paper, Section 2, "Target schemas and queries"):

* :class:`~repro.graph.database.GraphDatabase` — a directed edge-labeled
  graph ``G = (V, E)`` with ``E ⊆ V × Σ × V``;
* :mod:`repro.graph.nre` — the NRE abstract syntax
  ``r := ε | a | a⁻ | r + r | r · r | r* | [r]``;
* :func:`~repro.graph.parser.parse_nre` — concrete syntax, e.g.
  ``"f . f*[h] . f- . (f-)*"``;
* :mod:`repro.graph.eval` — recursive set-algebraic evaluation of
  ``⟦r⟧_G ⊆ V × V``;
* :mod:`repro.graph.automaton` — an independent product-automaton evaluator
  (used for differential testing and for single-source queries);
* :mod:`repro.graph.cnre` — conjunctions of NREs (CNRE) with variables, the
  paper's target query language, plus homomorphism-based evaluation;
* :mod:`repro.graph.witness` — extraction of concrete witness trees proving
  ``(u, v) ∈ ⟦r⟧``, used to instantiate graph patterns into solutions;
* :mod:`repro.graph.classes` — structural classifiers (``SORE(·)``,
  star-freeness, nesting depth) used to state the paper's restrictions;
* :mod:`repro.graph.backends` — the pluggable physical storage behind
  ``GraphDatabase``: the mutation-friendly ``DictBackend`` (default) and
  the frozen, interned-CSR ``CsrBackend`` reached via
  ``GraphDatabase.freeze()``;
* :mod:`repro.graph.snapshot` — version-stamped save/load of frozen
  graphs (``save_snapshot`` / ``load_snapshot``) plus the content-keyed
  ``SnapshotStore`` the service uses for warm-tenant restarts.
"""

from repro.graph.database import GraphDatabase, Edge
from repro.graph.backends import (
    CsrBackend,
    DictBackend,
    Fingerprint,
    StorageBackend,
)
from repro.graph.snapshot import (
    SnapshotStore,
    load_snapshot,
    save_snapshot,
)
from repro.graph.nre import (
    NRE,
    Epsilon,
    Label,
    Backward,
    Union,
    Concat,
    Star,
    Nest,
    epsilon,
    label,
    backward,
    union,
    concat,
    star,
    nest,
)
from repro.graph.parser import parse_nre
from repro.graph.eval import evaluate_nre, nre_pairs, nre_reachable, nre_holds
from repro.graph.automaton import (
    CompiledAutomaton,
    NREAutomaton,
    automaton_holds,
    automaton_reachable,
    compile_nre,
    evaluate_nre_automaton,
)
from repro.graph.cnre import CNREAtom, CNREQuery, evaluate_cnre, cnre_homomorphisms
from repro.graph.witness import witness_tree, materialize_witness, WitnessTree
from repro.graph.classes import (
    is_single_symbol,
    is_union_of_symbols,
    is_sore_concat,
    is_star_free,
    nesting_depth,
    alphabet_of,
)
from repro.graph.homomorphism import (
    graph_homomorphisms,
    find_graph_homomorphism,
    is_homomorphic,
)
from repro.graph.language import (
    matches_word,
    is_empty_language,
    shortest_word_length,
    language_is_finite,
    enumerate_words,
)

__all__ = [
    "GraphDatabase",
    "Edge",
    "StorageBackend",
    "DictBackend",
    "CsrBackend",
    "Fingerprint",
    "SnapshotStore",
    "save_snapshot",
    "load_snapshot",
    "NRE",
    "Epsilon",
    "Label",
    "Backward",
    "Union",
    "Concat",
    "Star",
    "Nest",
    "epsilon",
    "label",
    "backward",
    "union",
    "concat",
    "star",
    "nest",
    "parse_nre",
    "evaluate_nre",
    "nre_pairs",
    "nre_reachable",
    "nre_holds",
    "NREAutomaton",
    "CompiledAutomaton",
    "compile_nre",
    "evaluate_nre_automaton",
    "automaton_reachable",
    "automaton_holds",
    "CNREAtom",
    "CNREQuery",
    "evaluate_cnre",
    "cnre_homomorphisms",
    "witness_tree",
    "materialize_witness",
    "WitnessTree",
    "is_single_symbol",
    "is_union_of_symbols",
    "is_sore_concat",
    "is_star_free",
    "nesting_depth",
    "alphabet_of",
    "graph_homomorphisms",
    "find_graph_homomorphism",
    "is_homomorphic",
    "matches_word",
    "is_empty_language",
    "shortest_word_length",
    "language_is_finite",
    "enumerate_words",
]
