"""Witness extraction: materialising NREs as concrete edge trees.

Chased graph patterns carry NREs on their edges (Section 3.2 / Figure 3 of
the paper).  To turn a pattern into an actual graph — a candidate solution —
each NRE edge ``(u, r, v)`` must be *instantiated*: we choose a word (more
precisely, a tree, because nested tests branch) in the language of ``r`` and
materialise it with fresh intermediate nodes.

A witness is a pair ``(edges, merges)``:

* ``edges`` — concrete labeled edges over the endpoint nodes and fresh nodes;
* ``merges`` — pairs of nodes that the choice forces to be equal (ε, a star
  taken zero times, and node tests all connect their endpoints with the
  empty word).

The caller resolves ``merges`` with a union-find before adding the edges, so
a single uniform representation covers every combinator.

Two entry points:

* :func:`witness_tree` — one canonical (shortest) witness, used for the
  canonical instantiation of patterns;
* :func:`enumerate_witnesses` — all witnesses with star repetitions bounded
  by ``star_bound``, used by the minimal-solution enumeration behind the
  certain-answer engine (see :mod:`repro.core.certain`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterator

from repro.graph.nre import (
    NRE,
    Backward,
    Concat,
    Epsilon,
    Label,
    Nest,
    Star,
    Union,
)

Node = Hashable
EdgeTriple = tuple[Node, str, Node]
FreshFn = Callable[[], Node]


@dataclass
class WitnessTree:
    """A concrete instantiation of one NRE edge.

    ``edges`` may mention the designated ``start``/``end`` nodes plus fresh
    nodes produced by the allocator; ``merges`` are equalities the caller
    must apply (via union-find) for the witness to be valid.
    """

    start: Node
    end: Node
    edges: list[EdgeTriple] = field(default_factory=list)
    merges: list[tuple[Node, Node]] = field(default_factory=list)

    def all_nodes(self) -> frozenset[Node]:
        """Return every node mentioned by the witness."""
        nodes: set[Node] = {self.start, self.end}
        for source, _, target in self.edges:
            nodes.add(source)
            nodes.add(target)
        for left, right in self.merges:
            nodes.add(left)
            nodes.add(right)
        return frozenset(nodes)


def default_fresh_factory(prefix: str = "_w") -> FreshFn:
    """Return an allocator producing ``_w0, _w1, ...`` fresh node names."""
    counter = itertools.count()
    return lambda: f"{prefix}{next(counter)}"


def witness_cost(expr: NRE) -> int:
    """Return the number of edges in the cheapest witness of ``expr``.

    ε and stars cost nothing (zero repetitions), atoms cost one edge,
    concatenations add up, unions take the cheaper branch, and nesting pays
    for its branch.
    """
    if isinstance(expr, (Epsilon, Star)):
        return 0
    if isinstance(expr, (Label, Backward)):
        return 1
    if isinstance(expr, Union):
        return min(witness_cost(expr.left), witness_cost(expr.right))
    if isinstance(expr, Concat):
        return witness_cost(expr.left) + witness_cost(expr.right)
    if isinstance(expr, Nest):
        return witness_cost(expr.inner)
    raise TypeError(f"unknown NRE node {expr!r}")  # pragma: no cover


def witness_tree(
    expr: NRE,
    start: Node,
    end: Node,
    fresh: FreshFn | None = None,
) -> WitnessTree:
    """Return one canonical (minimum-edge) witness for ``(start, end) ∈ ⟦expr⟧``.

    The canonical choice takes every star zero times and every union's
    cheaper branch (ties break left), i.e. a shortest derivation in the
    language.  For Example 5.2's ``a·(b*+c*)·a`` from ``c1`` to ``c2`` this
    produces exactly the Figure 6(b) graph ``c1 -a-> N -a-> c2``.
    """
    allocate = fresh if fresh is not None else default_fresh_factory()
    witness = WitnessTree(start=start, end=end)
    _build_canonical(expr, start, end, allocate, witness)
    return witness


def _build_canonical(
    expr: NRE, start: Node, end: Node, fresh: FreshFn, out: WitnessTree
) -> None:
    if isinstance(expr, Epsilon):
        out.merges.append((start, end))
    elif isinstance(expr, Label):
        out.edges.append((start, expr.name, end))
    elif isinstance(expr, Backward):
        out.edges.append((end, expr.name, start))
    elif isinstance(expr, Union):
        if witness_cost(expr.right) < witness_cost(expr.left):
            _build_canonical(expr.right, start, end, fresh, out)
        else:
            _build_canonical(expr.left, start, end, fresh, out)
    elif isinstance(expr, Concat):
        middle = fresh()
        _build_canonical(expr.left, start, middle, fresh, out)
        _build_canonical(expr.right, middle, end, fresh, out)
    elif isinstance(expr, Star):
        out.merges.append((start, end))
    elif isinstance(expr, Nest):
        out.merges.append((start, end))
        branch_end = fresh()
        _build_canonical(expr.inner, start, branch_end, fresh, out)
    else:  # pragma: no cover - exhaustive over the AST
        raise TypeError(f"unknown NRE node {expr!r}")


def enumerate_witnesses(
    expr: NRE,
    start: Node,
    end: Node,
    star_bound: int = 2,
    fresh: FreshFn | None = None,
) -> Iterator[WitnessTree]:
    """Yield every witness of ``expr`` with ≤ ``star_bound`` star unrollings.

    The enumeration covers all union branches and all star repetition counts
    in ``0..star_bound`` (per star occurrence), so the number of witnesses is
    exponential in the expression size — callers bound their consumption.
    Fresh nodes drawn from one shared allocator are globally unique across
    all yielded witnesses.
    """
    allocate = fresh if fresh is not None else default_fresh_factory()

    def go(node: NRE, s: Node, e: Node) -> Iterator[tuple[list[EdgeTriple], list[tuple[Node, Node]]]]:
        if isinstance(node, Epsilon):
            yield [], [(s, e)]
        elif isinstance(node, Label):
            yield [(s, node.name, e)], []
        elif isinstance(node, Backward):
            yield [(e, node.name, s)], []
        elif isinstance(node, Union):
            yield from go(node.left, s, e)
            yield from go(node.right, s, e)
        elif isinstance(node, Concat):
            middle = allocate()
            for left_edges, left_merges in go(node.left, s, middle):
                for right_edges, right_merges in go(node.right, middle, e):
                    yield left_edges + right_edges, left_merges + right_merges
        elif isinstance(node, Star):
            # k = 0: endpoints coincide.
            yield [], [(s, e)]
            for repetitions in range(1, star_bound + 1):
                waypoints = [s] + [allocate() for _ in range(repetitions - 1)] + [e]
                segments = [
                    go(node.inner, waypoints[i], waypoints[i + 1])
                    for i in range(repetitions)
                ]
                for combo in itertools.product(*[list(seg) for seg in segments]):
                    edges: list[EdgeTriple] = []
                    merges: list[tuple[Node, Node]] = []
                    for seg_edges, seg_merges in combo:
                        edges.extend(seg_edges)
                        merges.extend(seg_merges)
                    yield edges, merges
        elif isinstance(node, Nest):
            branch_end = allocate()
            for sub_edges, sub_merges in go(node.inner, s, branch_end):
                yield sub_edges, sub_merges + [(s, e)]
        else:  # pragma: no cover - exhaustive over the AST
            raise TypeError(f"unknown NRE node {node!r}")

    for edges, merges in go(expr, start, end):
        yield WitnessTree(start=start, end=end, edges=list(edges), merges=list(merges))


def materialize_witness(witness: WitnessTree) -> tuple[list[EdgeTriple], dict[Node, Node]]:
    """Resolve a witness's merges and return rewritten edges.

    Returns ``(edges, canonical)`` where ``canonical`` maps every node of the
    witness to its merge-class representative and ``edges`` are the witness
    edges with endpoints rewritten.  Representatives prefer the witness's
    declared ``start``/``end`` endpoints over fresh nodes, so instantiation
    never renames a pattern node away.
    """
    parent: dict[Node, Node] = {}

    def find(node: Node) -> Node:
        parent.setdefault(node, node)
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def is_fresh(node: Node) -> bool:
        # "_w" is this module's allocator prefix; "_t" is the target-tgd
        # chase's.  Both denote invented intermediate nodes that must never
        # shadow a real endpoint as a merge-class representative.
        return isinstance(node, str) and (node.startswith("_w") or node.startswith("_t"))

    def link(left: Node, right: Node) -> None:
        root_left, root_right = find(left), find(right)
        if root_left == root_right:
            return
        # Prefer non-fresh representatives so pattern endpoints survive.
        if is_fresh(root_left) and not is_fresh(root_right):
            parent[root_left] = root_right
        else:
            parent[root_right] = root_left

    for node in witness.all_nodes():
        find(node)
    for left, right in witness.merges:
        link(left, right)

    canonical = {node: find(node) for node in witness.all_nodes()}
    edges = [
        (canonical[source], lab, canonical[target])
        for source, lab, target in witness.edges
    ]
    return edges, canonical
