"""Product-automaton evaluation of NREs.

An NRE is compiled, Thompson-style, into a nondeterministic finite automaton
whose transitions are of four kinds:

* ``eps`` — spontaneous;
* ``fwd a`` — traverse a forward ``a``-edge of the graph;
* ``bwd a`` — traverse an ``a``-edge backwards;
* ``test A`` — a *nested test*: stay on the current node ``u`` provided some
  node is reachable from ``u`` in the sub-automaton ``A`` (this implements
  the ``[r]`` combinator of [5]).

Evaluation is a BFS over the product of the graph and the automaton, which is
the textbook PTIME algorithm for (nested) RPQs.  Nested tests are memoised
per (automaton, node).

Two compilation layers exist.  :func:`compile_nre` produces the Thompson NFA
(one transition list, mostly ε moves) and is cached with
:func:`functools.lru_cache` — NRE nodes are frozen dataclasses, so equal
expressions share one automaton.  :meth:`NREAutomaton.compiled` then lowers
the NFA, once, into a :class:`CompiledAutomaton`: ε transitions are
eliminated by precomputing ε-closures, and the surviving moves are bucketed
per state *by edge label*, so the product BFS steps straight from a config
``(node, state)`` to its successors through the graph's per-label hash
indexes without ever touching an ε edge at run time.

This module is an independent implementation of the same semantics as
:mod:`repro.graph.eval`; the two are differential-tested against each other
in the property-based test suite.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro import kernels
from repro.graph.database import GraphDatabase
from repro.graph.nre import (
    NRE,
    Backward,
    Concat,
    Epsilon,
    Label,
    Nest,
    Star,
    Union,
)

Node = Hashable


@dataclass(frozen=True)
class Transition:
    """A single automaton transition ``source --kind/payload--> target``."""

    source: int
    kind: str  # "eps" | "fwd" | "bwd" | "test"
    payload: object  # label name for fwd/bwd, NREAutomaton for test, None for eps
    target: int


# Monotonic per-process ids for CompiledAutomaton memo keying: unlike
# id(), a key is never reused after its automaton is garbage-collected,
# so long-lived memo tables cannot silently alias two automata that
# happened to occupy the same address.
_cache_key_counter = itertools.count()


@dataclass(frozen=True, eq=False)  # identity semantics: one key per instance
class CompiledAutomaton:
    """The ε-free, label-indexed lowering of an :class:`NREAutomaton`.

    Per state ``s`` (with ``C(s)`` its ε-closure):

    * ``accepting[s]`` — whether ``accept ∈ C(s)``;
    * ``fwd[s]`` / ``bwd[s]`` — label → target states of the forward/backward
      moves leaving any state of ``C(s)``;
    * ``tests[s]`` — ``(sub_automaton, target)`` pairs for the nested tests
      leaving any state of ``C(s)``, with the body already compiled.

    The product BFS therefore only ever enqueues configs whose state is the
    start state or the target of a non-ε move — a fraction of the Thompson
    state count.
    """

    start: int
    accepting: tuple[bool, ...]
    fwd: tuple[dict[str, tuple[int, ...]], ...]
    bwd: tuple[dict[str, tuple[int, ...]], ...]
    tests: tuple[tuple[tuple["CompiledAutomaton", int], ...], ...]
    state_count: int

    @property
    def cache_key(self) -> int:
        """A process-unique, never-recycled id for memo tables.

        ``id()`` keyed the nested-test and resolved-move memos before,
        which can alias: garbage-collect an automaton and a newly
        compiled one may reuse its address, silently inheriting its memo
        entries.  The counter-based key is assigned on first use and
        lives exactly as long as the instance.
        """
        key = self.__dict__.get("_cache_key")
        if key is None:
            key = next(_cache_key_counter)
            object.__setattr__(self, "_cache_key", key)
        return key

    def __getstate__(self) -> dict:
        # Never pickle the cache key: an automaton restored in another
        # process (the on-disk autocache) must get a fresh key there, or
        # two restored automata could collide on keys assigned by
        # different original processes.  The codegen kernel's executed
        # program and lowering plan are process-local too (function
        # objects; rebuilt lazily) — only the generated *source* string
        # (``_codegen_source``) is worth persisting, and it survives by
        # staying in the dict.
        state = self.__dict__.copy()
        state.pop("_cache_key", None)
        state.pop("_codegen_program", None)
        state.pop("_codegen_plan", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


@dataclass
class NREAutomaton:
    """A Thompson-style NFA with one start and one accept state."""

    start: int = 0
    accept: int = 1
    state_count: int = 2
    transitions: list[Transition] = field(default_factory=list)
    _outgoing: dict[int, list[Transition]] | None = field(default=None, repr=False)
    _compiled: CompiledAutomaton | None = field(
        default=None, repr=False, compare=False
    )

    def outgoing(self, state: int) -> list[Transition]:
        """Return the transitions leaving ``state`` (indexed lazily)."""
        if self._outgoing is None:
            index: dict[int, list[Transition]] = {}
            for transition in self.transitions:
                index.setdefault(transition.source, []).append(transition)
            self._outgoing = index
        return self._outgoing.get(state, [])

    def compiled(self) -> CompiledAutomaton:
        """Return the ε-free label-indexed form (lowered lazily, once)."""
        if self._compiled is None:
            self._compiled = _lower(self)
        return self._compiled


def _lower(automaton: NREAutomaton) -> CompiledAutomaton:
    """Eliminate ε transitions and bucket the remaining moves by label."""
    count = automaton.state_count
    eps_adjacency: list[list[int]] = [[] for _ in range(count)]
    concrete: list[list[Transition]] = [[] for _ in range(count)]
    for transition in automaton.transitions:
        if transition.kind == "eps":
            eps_adjacency[transition.source].append(transition.target)
        else:
            concrete[transition.source].append(transition)
    closures: list[set[int]] = []
    for state in range(count):
        closure = {state}
        stack = [state]
        while stack:
            for nxt in eps_adjacency[stack.pop()]:
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        closures.append(closure)
    accepting = tuple(automaton.accept in closure for closure in closures)
    fwd: list[dict[str, tuple[int, ...]]] = []
    bwd: list[dict[str, tuple[int, ...]]] = []
    tests: list[tuple[tuple[CompiledAutomaton, int], ...]] = []
    for state in range(count):
        forward: dict[str, dict[int, None]] = {}
        backward_moves: dict[str, dict[int, None]] = {}
        checks: list[tuple[CompiledAutomaton, int]] = []
        for member in closures[state]:
            for transition in concrete[member]:
                if transition.kind == "fwd":
                    forward.setdefault(transition.payload, {})[  # type: ignore[index]
                        transition.target
                    ] = None
                elif transition.kind == "bwd":
                    backward_moves.setdefault(transition.payload, {})[  # type: ignore[index]
                        transition.target
                    ] = None
                else:  # "test"
                    nested: NREAutomaton = transition.payload  # type: ignore[assignment]
                    checks.append((nested.compiled(), transition.target))
        fwd.append({lab: tuple(targets) for lab, targets in forward.items()})
        bwd.append({lab: tuple(targets) for lab, targets in backward_moves.items()})
        tests.append(tuple(checks))
    return CompiledAutomaton(
        start=automaton.start,
        accepting=accepting,
        fwd=tuple(fwd),
        bwd=tuple(bwd),
        tests=tuple(tests),
        state_count=count,
    )


class _Builder:
    """Accumulates states and transitions during compilation."""

    def __init__(self) -> None:
        self.count = 0
        self.transitions: list[Transition] = []

    def fresh(self) -> int:
        state = self.count
        self.count += 1
        return state

    def add(self, source: int, kind: str, payload: object, target: int) -> None:
        self.transitions.append(Transition(source, kind, payload, target))


def _compile(expr: NRE, builder: _Builder) -> tuple[int, int]:
    """Compile ``expr`` to a fragment, returning its (start, accept) states."""
    start, accept = builder.fresh(), builder.fresh()
    if isinstance(expr, Epsilon):
        builder.add(start, "eps", None, accept)
    elif isinstance(expr, Label):
        builder.add(start, "fwd", expr.name, accept)
    elif isinstance(expr, Backward):
        builder.add(start, "bwd", expr.name, accept)
    elif isinstance(expr, Union):
        for part in (expr.left, expr.right):
            sub_start, sub_accept = _compile(part, builder)
            builder.add(start, "eps", None, sub_start)
            builder.add(sub_accept, "eps", None, accept)
    elif isinstance(expr, Concat):
        left_start, left_accept = _compile(expr.left, builder)
        right_start, right_accept = _compile(expr.right, builder)
        builder.add(start, "eps", None, left_start)
        builder.add(left_accept, "eps", None, right_start)
        builder.add(right_accept, "eps", None, accept)
    elif isinstance(expr, Star):
        sub_start, sub_accept = _compile(expr.inner, builder)
        builder.add(start, "eps", None, accept)
        builder.add(start, "eps", None, sub_start)
        builder.add(sub_accept, "eps", None, sub_start)
        builder.add(sub_accept, "eps", None, accept)
    elif isinstance(expr, Nest):
        nested = compile_nre(expr.inner)
        builder.add(start, "test", nested, accept)
    else:  # pragma: no cover - exhaustive over the AST
        raise TypeError(f"unknown NRE node {expr!r}")
    return start, accept


@functools.lru_cache(maxsize=1024)
def compile_nre(expr: NRE) -> NREAutomaton:
    """Compile an NRE into an :class:`NREAutomaton` (memoised).

    Nested tests compile their bodies into separate sub-automata referenced
    by ``test`` transitions, so the result is a tree of automata mirroring
    the nesting structure of the expression.

    NRE nodes are frozen, hashable values, so compilation is cached with
    :func:`functools.lru_cache`: evaluating the same query across thousands
    of candidate solutions compiles it exactly once, and the shared automaton
    object keys the nested-test memo tables by identity.  Callers must treat
    the result as immutable.

    A second, cross-process layer lives in :mod:`repro.graph.autocache`:
    on an in-process miss the compiled (and lowered) automaton is looked
    up in — and written back to — a version-stamped on-disk pickle cache,
    so a fresh CLI invocation skips compilation for every NRE it has seen
    before.  Disable with ``REPRO_AUTOMATON_CACHE=off``.
    """
    from repro.graph import autocache

    cached = autocache.load(expr)
    if cached is not None:
        return cached
    builder = _Builder()
    start, accept = _compile(expr, builder)
    automaton = NREAutomaton(
        start=start,
        accept=accept,
        state_count=builder.count,
        transitions=builder.transitions,
    )
    autocache.store(expr, automaton)
    return automaton


class _Runner:
    """Evaluates automata over one fixed graph, memoising nested tests.

    ``stats`` is duck-typed (:class:`repro.engine.query.EvalStats` or any
    object with ``nested_tests`` / ``nested_test_cache_hits`` counters).

    ``kernel`` selects the execution kernel (:mod:`repro.kernels`):
    ``None`` defers to ``REPRO_KERNEL``/the built-in default.  A
    ``"vector"`` resolution takes effect only on CSR-backed graphs with
    numpy importable, a ``"codegen"`` resolution only on CSR-backed
    graphs (it needs no numpy) — everything else runs the scalar loops.
    All kernels are answer-identical.
    """

    def __init__(
        self,
        graph: GraphDatabase,
        stats: object | None = None,
        kernel: str | None = None,
    ):
        self.graph = graph
        self.stats = stats
        self.kernel = kernels.resolve_kernel(kernel)
        # Frozen graphs expose their CSR backend; a non-None probe flips
        # every search in this runner to the interned integer-id loop.
        self._csr = getattr(graph, "csr", None)
        self._vector = self._make_vector()
        self._codegen = self._make_codegen()
        self._test_cache: dict[tuple[int, Node], bool] = {}
        # Nested-test memos of the CSR loop, keyed by (automaton cache
        # key, interned node id) — kept apart from _test_cache because
        # integer node ids could collide with graphs whose nodes *are*
        # integers.
        self._id_test_cache: dict[tuple[int, int], bool] = {}
        # CompiledAutomaton.cache_key → per-state move tables with the
        # graph's per-label adjacency dicts (or CSR buffers) looked up.
        self._resolved: dict[int, tuple] = {}

    def _make_vector(self):
        if self.kernel != "vector" or self._csr is None:
            return None
        from repro.graph.vector import VectorSearch

        if kernels.get_numpy() is None:  # masked after construction
            return None
        return VectorSearch(self._csr, self.stats)

    def _make_codegen(self):
        if self.kernel != "codegen" or self._csr is None:
            return None
        from repro.graph.codegen import CodegenSearch

        return CodegenSearch(self._csr, self.stats)

    def rebind(self, graph: GraphDatabase) -> None:
        """Point the runner at ``graph`` (same content, different object).

        Nested-test memos keyed by node carry over (they depend only on
        content); the resolved move tables and the id-keyed memos do not
        (they hold the old object's adjacency structures and interning)
        and are rebuilt lazily.
        """
        self.graph = graph
        self._csr = getattr(graph, "csr", None)
        self._vector = self._make_vector()
        self._codegen = self._make_codegen()
        self._resolved.clear()
        self._id_test_cache.clear()

    def _resolve(self, compiled: CompiledAutomaton) -> tuple:
        """Bind the automaton's per-state moves to this graph's indexes.

        Each fwd/bwd move becomes ``(adjacency_dict, target_states)`` with
        the label already resolved, so the product BFS does one dict ``get``
        per step instead of a method call plus a label lookup.
        """
        key = compiled.cache_key
        resolved = self._resolved.get(key)
        if resolved is None:
            graph = self.graph
            per_state = []
            for state in range(compiled.state_count):
                forward = tuple(
                    (graph.forward_index(lab), targets)
                    for lab, targets in compiled.fwd[state].items()
                )
                backward = tuple(
                    (graph.backward_index(lab), targets)
                    for lab, targets in compiled.bwd[state].items()
                )
                per_state.append((forward, backward, compiled.tests[state]))
            resolved = self._resolved[key] = tuple(per_state)
        return resolved

    def _compiled(self, automaton: NREAutomaton | CompiledAutomaton) -> CompiledAutomaton:
        if isinstance(automaton, NREAutomaton):
            return automaton.compiled()
        return automaton

    def reachable(
        self, automaton: NREAutomaton | CompiledAutomaton, source: Node
    ) -> frozenset[Node]:
        """Return the nodes reachable from ``source`` through ``automaton``."""
        csr = self._csr
        if csr is not None:
            source_id = csr.node_id(source)
            if source_id is None:
                return frozenset()
            compiled = self._compiled(automaton)
            vector = self._vector
            if vector is not None:
                hits = vector.reachable_many(compiled, [source_id])[0]
                return frozenset(csr.nodes_at(hits.tolist()))
            codegen = self._codegen
            if codegen is not None:
                return frozenset(csr.nodes_at(codegen.collect(compiled, source_id)))
            hits = self._search_ids(compiled, source_id, _COLLECT)
            return frozenset(csr.nodes_at(hits))
        if source not in self.graph:
            return frozenset()
        return frozenset(self._search(self._compiled(automaton), source, _ALL))

    def reachable_many(
        self,
        automaton: NREAutomaton | CompiledAutomaton,
        sources: Iterable[Node],
    ) -> dict[Node, frozenset[Node]]:
        """Batched :meth:`reachable`: one answer set per source, in bulk.

        On the vector kernel all sources run through *one* product search
        (the frontier carries a flat ``source × |V| + node`` config per
        entry), which is where the array-at-a-time kernel earns its keep —
        per-source calls cannot amortise the numpy dispatch overhead.
        Elsewhere this is a plain loop over :meth:`reachable`.  Sources
        outside the graph map to the empty set.
        """
        sources = list(sources)
        csr = self._csr
        vector = self._vector
        if vector is None or csr is None:
            return {source: self.reachable(automaton, source) for source in sources}
        compiled = self._compiled(automaton)
        in_graph: list[Node] = []
        source_ids: list[int] = []
        answers: dict[Node, frozenset[Node]] = {}
        for source in sources:
            source_id = csr.node_id(source)
            if source_id is None:
                answers[source] = frozenset()
            else:
                in_graph.append(source)
                source_ids.append(source_id)
        # Closure-heavy queries give many sources the *same* answer set
        # (every source inside one strongly connected component reaches the
        # same closure).  Hit arrays come back sorted, so identical answers
        # have identical bytes — decode each distinct array once and share
        # the frozenset object across its sources.
        decoded: dict[bytes, frozenset[Node]] = {}
        for source, hits in zip(
            in_graph, vector.reachable_many(compiled, source_ids)
        ):
            key = hits.tobytes()
            answer = decoded.get(key)
            if answer is None:
                answer = decoded[key] = frozenset(csr.nodes_at(hits.tolist()))
            answers[source] = answer
        return answers

    def holds(
        self, automaton: NREAutomaton | CompiledAutomaton, source: Node, target: Node
    ) -> bool:
        """Single-pair mode: whether ``target`` is reachable from ``source``.

        The product BFS stops as soon as ``target`` is accepted, so deciding
        one pair never materialises the full reachable set.
        """
        csr = self._csr
        if csr is not None:
            source_id = csr.node_id(source)
            target_id = csr.node_id(target)
            if source_id is None or target_id is None:
                return False
            compiled = self._compiled(automaton)
            vector = self._vector
            if vector is not None:
                return vector.holds(compiled, source_id, target_id)
            codegen = self._codegen
            if codegen is not None:
                return codegen.holds(compiled, source_id, target_id)
            return self._search_ids(compiled, source_id, target_id) is _FOUND
        if source not in self.graph or target not in self.graph:
            return False
        return self._search(self._compiled(automaton), source, target) is _FOUND

    def _nonempty(self, compiled: CompiledAutomaton, source: Node) -> bool:
        """Whether *any* node is reachable — the nested-test question."""
        return self._search(compiled, source, _ANY) is _FOUND

    def _search(
        self, compiled: CompiledAutomaton, source: Node, target: object
    ) -> object:
        """Product BFS from ``(source, start)``.

        ``target`` selects the mode: :data:`_ALL` collects and returns the
        full hit set, :data:`_ANY` returns :data:`_FOUND` on the first
        accepting config, and a concrete node returns :data:`_FOUND` when
        that node is accepted (early exit in both latter modes).
        """
        accepting = compiled.accepting
        resolved = self._resolve(compiled)
        collect = target is _ALL
        # Visited bookkeeping is one node set per state: hashing a node is
        # cheaper than hashing a (node, state) tuple, and states are dense.
        seen: list[set[Node] | None] = [None] * compiled.state_count
        start = compiled.start
        seen[start] = {source}
        stack: list[tuple[Node, int]] = [(source, start)]
        hits: set[Node] = set()
        while stack:
            node, state = stack.pop()
            if accepting[state]:
                if collect:
                    hits.add(node)
                elif target is _ANY or node == target:
                    return _FOUND
            forward, backward, tests = resolved[state]
            for adjacency, targets in forward:
                successors = adjacency.get(node)
                if successors:
                    for next_state in targets:
                        bucket = seen[next_state]
                        if bucket is None:
                            bucket = seen[next_state] = set()
                        for succ in successors:
                            if succ not in bucket:
                                bucket.add(succ)
                                stack.append((succ, next_state))
            for adjacency, targets in backward:
                predecessors = adjacency.get(node)
                if predecessors:
                    for next_state in targets:
                        bucket = seen[next_state]
                        if bucket is None:
                            bucket = seen[next_state] = set()
                        for pred in predecessors:
                            if pred not in bucket:
                                bucket.add(pred)
                                stack.append((pred, next_state))
            for nested, next_state in tests:
                if self._test(nested, node):
                    bucket = seen[next_state]
                    if bucket is None:
                        bucket = seen[next_state] = set()
                    if node not in bucket:
                        bucket.add(node)
                        stack.append((node, next_state))
        return hits if collect else None

    def _test(self, nested: CompiledAutomaton, node: Node) -> bool:
        key = (nested.cache_key, node)
        cached = self._test_cache.get(key)
        if cached is None:
            stats = self.stats
            if stats is not None:
                stats.nested_tests += 1  # type: ignore[attr-defined]
            cached = self._nonempty(nested, node)
            self._test_cache[key] = cached
        elif self.stats is not None:
            self.stats.nested_test_cache_hits += 1  # type: ignore[attr-defined]
        return cached

    # ------------------------------------------------------------------ #
    # The CSR fast path: the same product BFS over interned integer ids.
    # ------------------------------------------------------------------ #

    def _resolve_ids(self, compiled: CompiledAutomaton) -> tuple:
        """Bind the automaton's per-state moves to the graph's CSR lists.

        Per state the result is ``(moves, checks)``: each move is
        ``(offsets, targets, hops)`` with the label already resolved to
        its two (list-converted) buffers — forward and backward moves are
        merged, each backward move simply binding the predecessor CSR —
        and ``hops`` the successor states paired with their flat-config
        bases (``state × |V|``).  Labels absent from the graph contribute
        no move at all.  ``checks`` are ``(sub_automaton, base, state)``
        triples for the nested tests.
        """
        key = compiled.cache_key
        resolved = self._resolved.get(key)
        if resolved is None:
            csr = self._csr
            node_count = csr.node_count()
            per_state = []
            for state in range(compiled.state_count):
                moves = []
                for lab, targets in compiled.fwd[state].items():
                    lists = csr.forward_lists(lab)
                    if lists is not None:
                        moves.append(
                            (lists[0], lists[1],
                             tuple((s * node_count, s) for s in targets))
                        )
                for lab, targets in compiled.bwd[state].items():
                    lists = csr.backward_lists(lab)
                    if lists is not None:
                        moves.append(
                            (lists[0], lists[1],
                             tuple((s * node_count, s) for s in targets))
                        )
                checks = tuple(
                    (nested, s * node_count, s)
                    for nested, s in compiled.tests[state]
                )
                per_state.append((tuple(moves), checks))
            resolved = self._resolved[key] = tuple(per_state)
        return resolved

    def _search_ids(
        self, compiled: CompiledAutomaton, source_id: int, target_id: object
    ) -> object:
        """Product search from ``(source_id, start)`` over interned ids.

        The id-space twin of :meth:`_search`.  ``target_id`` selects the
        mode: :data:`_COLLECT` gathers and returns the accepted node ids,
        :data:`_ANY_ID` returns :data:`_FOUND` on the first accepting
        config, and a concrete id returns :data:`_FOUND` when that id is
        accepted.

        Exploration is *batched by automaton state*: the worklist holds,
        per state, the list of newly-discovered node ids, and one
        iteration drains a whole batch through the state's resolved moves
        — so the move tables, acceptance flag, and CSR buffers are bound
        once per batch instead of once per config, and the inner loop is
        a flat scan of each node's CSR slice.  Visited bookkeeping is a
        single ``bytearray`` over the product space indexed by
        ``state × |V| + node`` — integer indexing replaces every hash
        lookup and tuple allocation of the dict path.
        """
        resolved = self._resolve_ids(compiled)
        accepting = compiled.accepting
        collect = target_id is _COLLECT
        node_count = self._csr.node_count()
        seen = bytearray(compiled.state_count * node_count)
        start = compiled.start
        seen[start * node_count + source_id] = 1
        pending: list[list[int] | None] = [None] * compiled.state_count
        pending[start] = [source_id]
        active: list[int] = [start]
        hit_mask = bytearray(node_count) if collect else None
        hits: list[int] = []
        while active:
            state = active.pop()
            batch = pending[state]
            if batch is None:
                continue
            pending[state] = None
            if accepting[state]:
                if collect:
                    for node_id in batch:
                        if not hit_mask[node_id]:
                            hit_mask[node_id] = 1
                            hits.append(node_id)
                elif target_id is _ANY_ID or target_id in batch:
                    return _FOUND
            moves, checks = resolved[state]
            for offsets, targets_list, hops in moves:
                for base, next_state in hops:
                    bucket = pending[next_state]
                    if bucket is None:
                        bucket = pending[next_state] = []
                        active.append(next_state)
                    append = bucket.append
                    for node_id in batch:
                        low = offsets[node_id]
                        high = offsets[node_id + 1]
                        if low != high:
                            # Degree-1 nodes skip the slice allocation —
                            # the common case on sparse chased graphs.
                            if high - low == 1:
                                succ = targets_list[low]
                                config = base + succ
                                if not seen[config]:
                                    seen[config] = 1
                                    append(succ)
                            else:
                                for succ in targets_list[low:high]:
                                    config = base + succ
                                    if not seen[config]:
                                        seen[config] = 1
                                        append(succ)
                    if not bucket:
                        # Nothing new for this state: retract the
                        # activation so the drain loop stays O(work).
                        pending[next_state] = None
                        if active and active[-1] == next_state:
                            active.pop()
            for nested, base, next_state in checks:
                bucket = pending[next_state]
                fresh = bucket is None
                if fresh:
                    bucket = []
                append = bucket.append
                for node_id in batch:
                    config = base + node_id
                    if not seen[config] and self._test_ids(nested, node_id):
                        seen[config] = 1
                        append(node_id)
                if fresh and bucket:
                    pending[next_state] = bucket
                    active.append(next_state)
        return hits if collect else None

    def _test_ids(self, nested: CompiledAutomaton, node_id: int) -> bool:
        key = (nested.cache_key, node_id)
        cached = self._id_test_cache.get(key)
        if cached is None:
            stats = self.stats
            if stats is not None:
                stats.nested_tests += 1  # type: ignore[attr-defined]
            cached = self._search_ids(nested, node_id, _ANY_ID) is _FOUND
            self._id_test_cache[key] = cached
        elif self.stats is not None:
            self.stats.nested_test_cache_hits += 1  # type: ignore[attr-defined]
        return cached


# Sentinels selecting the _search mode / signalling an early-exit hit.
_ALL = object()
_ANY = object()
_FOUND = object()
# Their twins for the integer-id (_search_ids) mode, where a concrete
# target is an interned node id rather than a node object.
_COLLECT = object()
_ANY_ID = object()


def evaluate_nre_automaton(
    graph: GraphDatabase, expr: NRE
) -> frozenset[tuple[Node, Node]]:
    """Evaluate ``expr`` on ``graph`` via the product automaton.

    Returns the same relation as :func:`repro.graph.eval.evaluate_nre`; the
    two implementations share no code and serve as mutual oracles.
    """
    compiled = compile_nre(expr).compiled()
    runner = _Runner(graph)
    pairs: set[tuple[Node, Node]] = set()
    for source in graph.nodes():
        for target in runner.reachable(compiled, source):
            pairs.add((source, target))
    return frozenset(pairs)


def automaton_reachable(
    graph: GraphDatabase, expr: NRE, source: Node
) -> frozenset[Node]:
    """Single-source evaluation: ``{v | (source, v) ∈ ⟦expr⟧}`` via BFS.

    Unlike the set-algebraic evaluator this touches only the part of the
    product space reachable from ``source`` — the right tool for large
    graphs with selective queries.  Sources outside the graph have no
    answers (matching the reference evaluator's semantics, where even ε
    relates only nodes of ``V``).
    """
    return _Runner(graph).reachable(compile_nre(expr), source)


def automaton_holds(
    graph: GraphDatabase, expr: NRE, source: Node, target: Node
) -> bool:
    """Single-pair evaluation with early exit: ``(source, target) ∈ ⟦expr⟧``.

    >>> from repro.graph.nre import word
    >>> g = GraphDatabase(edges=[("u", "a", "v"), ("v", "a", "w")])
    >>> automaton_holds(g, word("a", "a"), "u", "w")
    True
    >>> automaton_holds(g, word("a", "a"), "v", "u")
    False
    """
    return _Runner(graph).holds(compile_nre(expr), source, target)
