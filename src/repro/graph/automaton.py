"""Product-automaton evaluation of NREs.

An NRE is compiled, Thompson-style, into a nondeterministic finite automaton
whose transitions are of four kinds:

* ``eps`` — spontaneous;
* ``fwd a`` — traverse a forward ``a``-edge of the graph;
* ``bwd a`` — traverse an ``a``-edge backwards;
* ``test A`` — a *nested test*: stay on the current node ``u`` provided some
  node is reachable from ``u`` in the sub-automaton ``A`` (this implements
  the ``[r]`` combinator of [5]).

Evaluation is a BFS over the product of the graph and the automaton, which is
the textbook PTIME algorithm for (nested) RPQs.  Nested tests are memoised
per (automaton, node).

This module is an independent implementation of the same semantics as
:mod:`repro.graph.eval`; the two are differential-tested against each other
in the property-based test suite.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable

from repro.graph.database import GraphDatabase
from repro.graph.nre import (
    NRE,
    Backward,
    Concat,
    Epsilon,
    Label,
    Nest,
    Star,
    Union,
)

Node = Hashable


@dataclass(frozen=True)
class Transition:
    """A single automaton transition ``source --kind/payload--> target``."""

    source: int
    kind: str  # "eps" | "fwd" | "bwd" | "test"
    payload: object  # label name for fwd/bwd, NREAutomaton for test, None for eps
    target: int


@dataclass
class NREAutomaton:
    """A Thompson-style NFA with one start and one accept state."""

    start: int = 0
    accept: int = 1
    state_count: int = 2
    transitions: list[Transition] = field(default_factory=list)
    _outgoing: dict[int, list[Transition]] | None = field(default=None, repr=False)

    def outgoing(self, state: int) -> list[Transition]:
        """Return the transitions leaving ``state`` (indexed lazily)."""
        if self._outgoing is None:
            index: dict[int, list[Transition]] = {}
            for transition in self.transitions:
                index.setdefault(transition.source, []).append(transition)
            self._outgoing = index
        return self._outgoing.get(state, [])


class _Builder:
    """Accumulates states and transitions during compilation."""

    def __init__(self) -> None:
        self.count = 0
        self.transitions: list[Transition] = []

    def fresh(self) -> int:
        state = self.count
        self.count += 1
        return state

    def add(self, source: int, kind: str, payload: object, target: int) -> None:
        self.transitions.append(Transition(source, kind, payload, target))


def _compile(expr: NRE, builder: _Builder) -> tuple[int, int]:
    """Compile ``expr`` to a fragment, returning its (start, accept) states."""
    start, accept = builder.fresh(), builder.fresh()
    if isinstance(expr, Epsilon):
        builder.add(start, "eps", None, accept)
    elif isinstance(expr, Label):
        builder.add(start, "fwd", expr.name, accept)
    elif isinstance(expr, Backward):
        builder.add(start, "bwd", expr.name, accept)
    elif isinstance(expr, Union):
        for part in (expr.left, expr.right):
            sub_start, sub_accept = _compile(part, builder)
            builder.add(start, "eps", None, sub_start)
            builder.add(sub_accept, "eps", None, accept)
    elif isinstance(expr, Concat):
        left_start, left_accept = _compile(expr.left, builder)
        right_start, right_accept = _compile(expr.right, builder)
        builder.add(start, "eps", None, left_start)
        builder.add(left_accept, "eps", None, right_start)
        builder.add(right_accept, "eps", None, accept)
    elif isinstance(expr, Star):
        sub_start, sub_accept = _compile(expr.inner, builder)
        builder.add(start, "eps", None, accept)
        builder.add(start, "eps", None, sub_start)
        builder.add(sub_accept, "eps", None, sub_start)
        builder.add(sub_accept, "eps", None, accept)
    elif isinstance(expr, Nest):
        nested = compile_nre(expr.inner)
        builder.add(start, "test", nested, accept)
    else:  # pragma: no cover - exhaustive over the AST
        raise TypeError(f"unknown NRE node {expr!r}")
    return start, accept


def compile_nre(expr: NRE) -> NREAutomaton:
    """Compile an NRE into an :class:`NREAutomaton`.

    Nested tests compile their bodies into separate sub-automata referenced
    by ``test`` transitions, so the result is a tree of automata mirroring
    the nesting structure of the expression.
    """
    builder = _Builder()
    start, accept = _compile(expr, builder)
    return NREAutomaton(
        start=start,
        accept=accept,
        state_count=builder.count,
        transitions=builder.transitions,
    )


class _Runner:
    """Evaluates automata over one fixed graph, memoising nested tests."""

    def __init__(self, graph: GraphDatabase):
        self.graph = graph
        self._test_cache: dict[tuple[int, Node], bool] = {}

    def reachable(self, automaton: NREAutomaton, source: Node) -> frozenset[Node]:
        """Return the nodes reachable from ``source`` through ``automaton``."""
        start_config = (source, automaton.start)
        seen: set[tuple[Node, int]] = {start_config}
        queue: deque[tuple[Node, int]] = deque([start_config])
        hits: set[Node] = set()
        while queue:
            node, state = queue.popleft()
            if state == automaton.accept:
                hits.add(node)
            for transition in automaton.outgoing(state):
                if transition.kind == "eps":
                    nexts: tuple[tuple[Node, int], ...] = ((node, transition.target),)
                elif transition.kind == "fwd":
                    nexts = tuple(
                        (succ, transition.target)
                        for succ in self.graph.successors(node, transition.payload)  # type: ignore[arg-type]
                    )
                elif transition.kind == "bwd":
                    nexts = tuple(
                        (pred, transition.target)
                        for pred in self.graph.predecessors(node, transition.payload)  # type: ignore[arg-type]
                    )
                else:  # "test"
                    nested: NREAutomaton = transition.payload  # type: ignore[assignment]
                    nexts = ((node, transition.target),) if self._test(nested, node) else ()
                for config in nexts:
                    if config not in seen:
                        seen.add(config)
                        queue.append(config)
        return frozenset(hits)

    def _test(self, nested: NREAutomaton, node: Node) -> bool:
        key = (id(nested), node)
        cached = self._test_cache.get(key)
        if cached is None:
            cached = bool(self.reachable(nested, node))
            self._test_cache[key] = cached
        return cached


def evaluate_nre_automaton(
    graph: GraphDatabase, expr: NRE
) -> frozenset[tuple[Node, Node]]:
    """Evaluate ``expr`` on ``graph`` via the product automaton.

    Returns the same relation as :func:`repro.graph.eval.evaluate_nre`; the
    two implementations share no code and serve as mutual oracles.
    """
    automaton = compile_nre(expr)
    runner = _Runner(graph)
    pairs: set[tuple[Node, Node]] = set()
    for source in graph.nodes():
        for target in runner.reachable(automaton, source):
            pairs.add((source, target))
    return frozenset(pairs)


def automaton_reachable(
    graph: GraphDatabase, expr: NRE, source: Node
) -> frozenset[Node]:
    """Single-source evaluation: ``{v | (source, v) ∈ ⟦expr⟧}`` via BFS.

    Unlike the set-algebraic evaluator this touches only the part of the
    product space reachable from ``source`` — the right tool for large
    graphs with selective queries.
    """
    return _Runner(graph).reachable(compile_nre(expr), source)
