"""Recursive set-algebraic evaluation of NREs.

``⟦r⟧_G`` is computed bottom-up as an explicit set of node pairs following
the semantics of [5] (see :mod:`repro.graph.nre`).  The computation is
polynomial: unions and compositions of binary relations, and a BFS-based
reflexive-transitive closure for Kleene stars.

This evaluator is deliberately simple and close to the definitions — it is
the library's *reference* semantics.  The automaton evaluator in
:mod:`repro.graph.automaton` is an independent implementation used for
differential testing and for single-source queries on larger graphs.
"""

from __future__ import annotations

from typing import Hashable

from repro.graph.database import GraphDatabase
from repro.graph.nre import (
    NRE,
    Backward,
    Concat,
    Epsilon,
    Label,
    Nest,
    Star,
    Union,
)

Node = Hashable
PairSet = frozenset[tuple[Node, Node]]


def _compose(left: PairSet, right: PairSet) -> PairSet:
    """Relational composition ``left ; right``."""
    by_source: dict[Node, set[Node]] = {}
    for u, v in right:
        by_source.setdefault(u, set()).add(v)
    result: set[tuple[Node, Node]] = set()
    for u, mid in left:
        for v in by_source.get(mid, ()):
            result.add((u, v))
    return frozenset(result)


def _closure(pairs: PairSet, nodes: frozenset[Node]) -> PairSet:
    """Reflexive-transitive closure of ``pairs`` over ``nodes`` (BFS per node)."""
    adjacency: dict[Node, set[Node]] = {}
    for u, v in pairs:
        adjacency.setdefault(u, set()).add(v)
    result: set[tuple[Node, Node]] = {(n, n) for n in nodes}
    for start in nodes:
        frontier = [start]
        seen = {start}
        while frontier:
            current = frontier.pop()
            for nxt in adjacency.get(current, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
                    result.add((start, nxt))
    return frozenset(result)


def evaluate_nre(
    graph: GraphDatabase,
    expr: NRE,
    _cache: dict[NRE, PairSet] | None = None,
) -> PairSet:
    """Return ``⟦expr⟧_G`` as a frozenset of node pairs.

    Repeated subexpressions are evaluated once thanks to an internal cache
    (NRE nodes are hashable values).

    >>> g = GraphDatabase(edges=[("u", "a", "v"), ("v", "a", "w")])
    >>> sorted(evaluate_nre(g, parse_nre("a . a")))  # doctest: +SKIP
    [('u', 'w')]
    """
    cache: dict[NRE, PairSet] = _cache if _cache is not None else {}

    def go(node: NRE) -> PairSet:
        cached = cache.get(node)
        if cached is not None:
            return cached
        if isinstance(node, Epsilon):
            result: PairSet = frozenset((n, n) for n in graph.nodes())
        elif isinstance(node, Label):
            result = graph.edges_with_label(node.name)
        elif isinstance(node, Backward):
            result = frozenset((v, u) for u, v in graph.edges_with_label(node.name))
        elif isinstance(node, Union):
            result = go(node.left) | go(node.right)
        elif isinstance(node, Concat):
            result = _compose(go(node.left), go(node.right))
        elif isinstance(node, Star):
            result = _closure(go(node.inner), graph.nodes())
        elif isinstance(node, Nest):
            sources = {u for u, _ in go(node.inner)}
            result = frozenset((u, u) for u in sources)
        else:  # pragma: no cover - exhaustive over the AST
            raise TypeError(f"unknown NRE node {node!r}")
        cache[node] = result
        return result

    return go(expr)


def nre_pairs(graph: GraphDatabase, expr: NRE) -> PairSet:
    """Alias of :func:`evaluate_nre` (the name used throughout the docs)."""
    return evaluate_nre(graph, expr)


def nre_reachable(graph: GraphDatabase, expr: NRE, source: Node) -> frozenset[Node]:
    """Return ``{v | (source, v) ∈ ⟦expr⟧_G}``."""
    return frozenset(v for u, v in evaluate_nre(graph, expr) if u == source)


def nre_holds(graph: GraphDatabase, expr: NRE, source: Node, target: Node) -> bool:
    """Return whether ``(source, target) ∈ ⟦expr⟧_G``."""
    return (source, target) in evaluate_nre(graph, expr)


# Re-exported here to keep the doctest in evaluate_nre self-contained.
from repro.graph.parser import parse_nre  # noqa: E402  (intentional tail import)

__all__ = ["evaluate_nre", "nre_pairs", "nre_reachable", "nre_holds", "parse_nre"]
