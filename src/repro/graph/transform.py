"""Graph transformations: quotients, subgraphs, unions, renamings.

Small algebra of operations on :class:`~repro.graph.database.GraphDatabase`
used across the library (the candidate search applies quotients, the SAT
encoder's completeness argument speaks about induced subgraphs) and by
downstream users manipulating solutions as values.

All operations are pure: they return new graphs and never mutate inputs.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping

from repro.errors import SchemaError
from repro.graph.database import GraphDatabase

Node = Hashable


def rename_nodes(
    graph: GraphDatabase, mapping: Mapping[Node, Node]
) -> GraphDatabase:
    """Return ``graph`` with nodes renamed by ``mapping`` (identity default).

    Non-injective mappings *quotient* the graph: edges between merged nodes
    collapse.  This is exactly the operation solutions undergo when nulls
    are identified.
    """
    result = GraphDatabase(alphabet=graph.alphabet)
    for node in graph.nodes():
        result.add_node(mapping.get(node, node))
    for edge in graph.edges():
        result.add_edge(
            mapping.get(edge.source, edge.source),
            edge.label,
            mapping.get(edge.target, edge.target),
        )
    return result


def induced_subgraph(graph: GraphDatabase, nodes: Iterable[Node]) -> GraphDatabase:
    """Return the subgraph induced by ``nodes`` (edges with both ends kept).

    The operation behind the SAT encoder's completeness argument: induced
    subgraphs preserve egd satisfaction (NRE matches in the subgraph are
    matches in the whole graph).
    """
    keep = set(nodes)
    unknown = keep - set(graph.nodes())
    if unknown:
        raise SchemaError(f"nodes not in graph: {sorted(map(repr, unknown))}")
    result = GraphDatabase(alphabet=graph.alphabet)
    for node in keep:
        result.add_node(node)
    for edge in graph.edges():
        if edge.source in keep and edge.target in keep:
            result.add_edge(edge.source, edge.label, edge.target)
    return result


def union(left: GraphDatabase, right: GraphDatabase) -> GraphDatabase:
    """Return the (node-sharing) union of two graphs.

    Nodes with equal ids are identified — use :func:`disjoint_union` for
    the coproduct.
    """
    result = GraphDatabase(alphabet=set(left.alphabet) | set(right.alphabet))
    for graph in (left, right):
        for node in graph.nodes():
            result.add_node(node)
        for edge in graph.edges():
            result.add_edge(edge.source, edge.label, edge.target)
    return result


def disjoint_union(
    left: GraphDatabase,
    right: GraphDatabase,
    tag_left: str = "L",
    tag_right: str = "R",
) -> GraphDatabase:
    """Return the disjoint union; nodes become ``(tag, original)`` pairs."""
    result = GraphDatabase(alphabet=set(left.alphabet) | set(right.alphabet))
    for tag, graph in ((tag_left, left), (tag_right, right)):
        for node in graph.nodes():
            result.add_node((tag, node))
        for edge in graph.edges():
            result.add_edge((tag, edge.source), edge.label, (tag, edge.target))
    return result


def filter_edges(
    graph: GraphDatabase, keep: Callable[[Node, str, Node], bool]
) -> GraphDatabase:
    """Return ``graph`` with only the edges satisfying ``keep`` (all nodes stay)."""
    result = GraphDatabase(alphabet=graph.alphabet)
    for node in graph.nodes():
        result.add_node(node)
    for edge in graph.edges():
        if keep(edge.source, edge.label, edge.target):
            result.add_edge(edge.source, edge.label, edge.target)
    return result


def reachable_subgraph(
    graph: GraphDatabase, sources: Iterable[Node], labels: Iterable[str] | None = None
) -> GraphDatabase:
    """Return the subgraph induced by nodes forward-reachable from ``sources``.

    ``labels`` optionally restricts which edge labels may be traversed;
    the returned graph is induced on the reached node set (so it may also
    contain non-traversed labels between reached nodes).
    """
    allowed = set(labels) if labels is not None else None
    frontier = [s for s in sources if s in graph.nodes()]
    reached: set[Node] = set(frontier)
    while frontier:
        current = frontier.pop()
        for lab in graph.alphabet:
            if allowed is not None and lab not in allowed:
                continue
            for nxt in graph.successors(current, lab):
                if nxt not in reached:
                    reached.add(nxt)
                    frontier.append(nxt)
    return induced_subgraph(graph, reached)
