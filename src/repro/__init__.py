"""repro — relational-to-graph data exchange with target constraints.

A complete implementation of the system described in

    Iovka Boneva, Angela Bonifati, Radu Ciucanu.
    *Graph Data Exchange with Target Constraints.*
    GraphQ @ EDBT/ICDT 2015, CEUR-WS Vol-1330, pp. 171–176.

The public API re-exported here covers the common workflow:

1. model the source (:class:`RelationalSchema`, :class:`RelationalInstance`)
   and the mappings (:func:`parse_st_tgd`, :func:`parse_egd`,
   :func:`parse_sameas`, :func:`parse_target_tgd`);
2. bundle them into a :class:`DataExchangeSetting`;
3. chase (:func:`chase_pattern`, :func:`chase_with_egds`,
   :func:`solve_with_sameas`), decide existence (:func:`decide_existence`),
   and answer queries (:func:`certain_answers_nre`, :func:`evaluate_nre`).

See ``examples/quickstart.py`` for the end-to-end tour and DESIGN.md for
the architecture.
"""

from repro.errors import (
    ReproError,
    SchemaError,
    ParseError,
    EvaluationError,
    ChaseFailure,
    BoundExceeded,
    NotSupportedError,
)
from repro.relational import (
    RelationSymbol,
    RelationalSchema,
    RelationalInstance,
    ConjunctiveQuery,
    evaluate_cq,
    parse_cq,
)
from repro.graph import (
    GraphDatabase,
    NRE,
    parse_nre,
    evaluate_nre,
    evaluate_nre_automaton,
    CNREQuery,
    CNREAtom,
    evaluate_cnre,
)
from repro.patterns import (
    GraphPattern,
    Null,
    find_homomorphism,
    has_homomorphism,
    in_rep,
    canonical_instantiation,
)
from repro.mappings import (
    SourceToTargetTgd,
    TargetEgd,
    TargetTgd,
    SameAsConstraint,
    SAME_AS_LABEL,
    parse_st_tgd,
    parse_egd,
    parse_target_tgd,
    parse_sameas,
)
from repro.chase import (
    ChaseResult,
    chase_pattern,
    chase_relational,
    chase_with_egds,
    solve_with_sameas,
    chase_target_tgds,
)
from repro.core import (
    DataExchangeSetting,
    is_solution,
    decide_existence,
    ExistenceStatus,
    certain_answers_nre,
    is_certain_answer,
    UniversalRepresentative,
    universal_representative,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "SchemaError",
    "ParseError",
    "EvaluationError",
    "ChaseFailure",
    "BoundExceeded",
    "NotSupportedError",
    "RelationSymbol",
    "RelationalSchema",
    "RelationalInstance",
    "ConjunctiveQuery",
    "evaluate_cq",
    "parse_cq",
    "GraphDatabase",
    "NRE",
    "parse_nre",
    "evaluate_nre",
    "evaluate_nre_automaton",
    "CNREQuery",
    "CNREAtom",
    "evaluate_cnre",
    "GraphPattern",
    "Null",
    "find_homomorphism",
    "has_homomorphism",
    "in_rep",
    "canonical_instantiation",
    "SourceToTargetTgd",
    "TargetEgd",
    "TargetTgd",
    "SameAsConstraint",
    "SAME_AS_LABEL",
    "parse_st_tgd",
    "parse_egd",
    "parse_target_tgd",
    "parse_sameas",
    "ChaseResult",
    "chase_pattern",
    "chase_relational",
    "chase_with_egds",
    "solve_with_sameas",
    "chase_target_tgds",
    "DataExchangeSetting",
    "is_solution",
    "decide_existence",
    "ExistenceStatus",
    "certain_answers_nre",
    "is_certain_answer",
    "UniversalRepresentative",
    "universal_representative",
    "__version__",
]
