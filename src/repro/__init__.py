"""repro — relational-to-graph data exchange with target constraints.

A complete implementation of the system described in

    Iovka Boneva, Angela Bonifati, Radu Ciucanu.
    *Graph Data Exchange with Target Constraints.*
    GraphQ @ EDBT/ICDT 2015, CEUR-WS Vol-1330, pp. 171–176.

The public API re-exported here covers the common workflow:

1. model the source (:class:`RelationalSchema`, :class:`RelationalInstance`)
   and the mappings (:func:`parse_st_tgd`, :func:`parse_egd`,
   :func:`parse_sameas`, :func:`parse_target_tgd`);
2. bundle them into a :class:`DataExchangeSetting`;
3. chase (:func:`chase_pattern`, :func:`chase_with_egds`,
   :func:`solve_with_sameas`), decide existence (:func:`decide_existence`),
   and answer queries (:func:`certain_answers_nre`, :func:`evaluate_nre`).

All chase variants share the indexed delta engine of :mod:`repro.engine`
(:class:`TriggerMatcher`): trigger matching is answered from hash indexes
maintained incrementally by :class:`GraphDatabase` and
:class:`RelationalInstance`, and fixpoint rounds only re-match the part of
the target changed since the previous round.

>>> import repro
>>> schema = repro.RelationalSchema()
>>> _ = schema.declare("Flight", 3)
>>> _ = schema.declare("Hotel", 2)
>>> instance = repro.RelationalInstance(schema, {
...     "Flight": [("01", "c1", "c2")], "Hotel": [("01", "hx")]})
>>> tgd = repro.parse_st_tgd(
...     "Flight(x1, x2, x3), Hotel(x1, x4) -> (x2, f, y), (y, h, x4)")
>>> result = repro.chase_pattern([tgd], instance, alphabet={"f", "h"})
>>> result.expect_pattern().edge_count()
2

See ``examples/quickstart.py`` for the end-to-end tour,
``README.md`` for the project overview, and ``docs/ARCHITECTURE.md`` for
the package-by-package map onto the paper.
"""

from repro.errors import (
    ReproError,
    SchemaError,
    ParseError,
    EvaluationError,
    ChaseFailure,
    BoundExceeded,
    NotSupportedError,
)
from repro.relational import (
    RelationSymbol,
    RelationalSchema,
    RelationalInstance,
    ConjunctiveQuery,
    evaluate_cq,
    parse_cq,
)
from repro.graph import (
    GraphDatabase,
    NRE,
    parse_nre,
    evaluate_nre,
    evaluate_nre_automaton,
    CNREQuery,
    CNREAtom,
    evaluate_cnre,
)
from repro.patterns import (
    GraphPattern,
    Null,
    find_homomorphism,
    has_homomorphism,
    in_rep,
    canonical_instantiation,
)
from repro.mappings import (
    SourceToTargetTgd,
    TargetEgd,
    TargetTgd,
    SameAsConstraint,
    SAME_AS_LABEL,
    parse_st_tgd,
    parse_egd,
    parse_target_tgd,
    parse_sameas,
)
from repro.chase import (
    ChaseResult,
    chase_pattern,
    chase_relational,
    chase_with_egds,
    solve_with_sameas,
    chase_target_tgds,
)
from repro.chase.result import ChaseStats
from repro.engine import (
    EvalStats,
    QueryEngine,
    ReferenceEngine,
    TriggerMatcher,
    default_engine,
    is_simple_query,
)
from repro.core import (
    DataExchangeSetting,
    is_solution,
    decide_existence,
    ExistenceStatus,
    certain_answers_nre,
    is_certain_answer,
    UniversalRepresentative,
    universal_representative,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "SchemaError",
    "ParseError",
    "EvaluationError",
    "ChaseFailure",
    "BoundExceeded",
    "NotSupportedError",
    "RelationSymbol",
    "RelationalSchema",
    "RelationalInstance",
    "ConjunctiveQuery",
    "evaluate_cq",
    "parse_cq",
    "GraphDatabase",
    "NRE",
    "parse_nre",
    "evaluate_nre",
    "evaluate_nre_automaton",
    "CNREQuery",
    "CNREAtom",
    "evaluate_cnre",
    "GraphPattern",
    "Null",
    "find_homomorphism",
    "has_homomorphism",
    "in_rep",
    "canonical_instantiation",
    "SourceToTargetTgd",
    "TargetEgd",
    "TargetTgd",
    "SameAsConstraint",
    "SAME_AS_LABEL",
    "parse_st_tgd",
    "parse_egd",
    "parse_target_tgd",
    "parse_sameas",
    "ChaseResult",
    "ChaseStats",
    "TriggerMatcher",
    "is_simple_query",
    "QueryEngine",
    "ReferenceEngine",
    "EvalStats",
    "default_engine",
    "chase_pattern",
    "chase_relational",
    "chase_with_egds",
    "solve_with_sameas",
    "chase_target_tgds",
    "DataExchangeSetting",
    "is_solution",
    "decide_existence",
    "ExistenceStatus",
    "certain_answers_nre",
    "is_certain_answer",
    "UniversalRepresentative",
    "universal_representative",
    "__version__",
]
