"""Unified telemetry: metrics registry, request tracing, introspection.

The instrumentation layer behind ``repro serve --metrics-port``,
the ``metrics``/``traces`` service operations, and the ``repro stats`` /
``repro trace`` CLI subcommands.  Three pillars:

* :mod:`repro.telemetry.registry` — process-wide counters, gauges, and
  fixed-bucket histograms in one dot-separated namespace, with JSON and
  Prometheus text-exposition export and delta shipping across the
  worker-pool boundary;
* :mod:`repro.telemetry.tracing` — ``span("phase", **attrs)`` timed span
  trees with contextvar nesting, JSON serialization over the process
  pool, server-side stitching, and slow-request retention rings;
* the service introspection plane wired through :mod:`repro.service`.

Everything here is standard-library only and free of imports from the
rest of :mod:`repro`, so every layer can instrument itself without
cycles.  Set ``REPRO_TELEMETRY=off`` to disable collection process-wide;
the instrumented paths then cost a single cached boolean check.
"""

from .registry import (
    ENV_VAR,
    Counter,
    Gauge,
    Histogram,
    Registry,
    enabled,
    enabled_override,
    fold_stats,
    format_value,
    get_registry,
    inc,
    observe,
    prometheus_name,
    set_enabled,
    set_gauge,
    stats_as_dict,
)
from .tracing import (
    MAX_CHILDREN,
    Span,
    TraceBuffer,
    current_span,
    slow_threshold,
    span,
    span_from_dict,
    stitch_request_trace,
)

__all__ = [
    "ENV_VAR",
    "Counter",
    "Gauge",
    "Histogram",
    "MAX_CHILDREN",
    "Registry",
    "Span",
    "TraceBuffer",
    "current_span",
    "enabled",
    "enabled_override",
    "fold_stats",
    "format_value",
    "get_registry",
    "inc",
    "observe",
    "prometheus_name",
    "set_enabled",
    "set_gauge",
    "slow_threshold",
    "span",
    "span_from_dict",
    "stats_as_dict",
    "stitch_request_trace",
]
